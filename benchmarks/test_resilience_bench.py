"""Resilience benchmarks: cost and outcomes of the fault-injection paths.

Benches the fault subsystem the same way the observability layer is
benched: a faulted Dyn-HP run against the clean baseline, recording both
the wall-clock cost of injection (failure scheduling, requeue storms,
delivery-retry backoff) and the headline recovery outcomes so
``bench-trend`` catches behavioural drift (e.g. a repair-path change that
silently doubles requeues).
"""

import pytest

from benchmarks.conftest import record_bench, register_report
from repro.experiments.configs import all_configurations
from repro.experiments.resilience import default_fault_model
from repro.experiments.runner import run_esp_configuration

_DYN_HP = next(c for c in all_configurations() if c.name == "Dyn-HP")


@pytest.mark.benchmark(group="resilience")
def test_faulted_dyn_hp_run(benchmark):
    """Dyn-HP under the default fault model (node MTBF + delivery drops)."""
    model = default_fault_model(fault_seed=2014)

    def run():
        return run_esp_configuration(_DYN_HP, seed=2014, fault_model=model)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    resilience = result.resilience
    assert resilience is not None
    assert resilience["node_failures"] > 0
    record_bench(
        "resilience",
        "faulted_run",
        wall_seconds=benchmark.stats.stats.mean,
        completed=result.metrics.completed_jobs,
        node_failures=resilience["node_failures"],
        jobs_requeued=resilience["jobs_requeued"],
        delivery_drops=resilience["delivery_drops"],
        lost_core_seconds=resilience["lost_core_seconds"],
    )
    register_report(
        "Resilience bench — Dyn-HP under default fault model",
        "\n".join(
            f"  {key:<24} {value}"
            for key, value in sorted(resilience.items())
            if isinstance(value, (int, float))
        ),
    )


@pytest.mark.benchmark(group="resilience")
def test_clean_baseline_run(benchmark):
    """The same configuration with no fault model, for cost comparison."""
    result = benchmark.pedantic(
        lambda: run_esp_configuration(_DYN_HP, seed=2014), rounds=3, iterations=1
    )
    assert result.metrics.completed_jobs == 230
    record_bench(
        "resilience",
        "clean_baseline",
        wall_seconds=benchmark.stats.stats.mean,
        completed=result.metrics.completed_jobs,
    )
