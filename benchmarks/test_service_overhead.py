"""Scheduler-service overhead: the asyncio front-end must stay cheap.

The service wraps every ESP run in an event loop, a consumer task and one
command round-trip per submission, then drains the engine in batches
instead of one monolithic ``engine.run``.  All of that is bookkeeping on
top of the exact same policy work — so a via-service run must stay within
2x of the direct run's wall time (in practice the overhead is a few
percent; the 2x bound keeps the gate robust on noisy CI runners).
"""

import timeit

import pytest

from benchmarks.conftest import record_bench, register_report
from repro.experiments.configs import all_configurations
from repro.experiments.runner import (
    run_esp_configuration,
    run_esp_configuration_via_service,
)

_DYN_HP = next(c for c in all_configurations() if c.name == "Dyn-HP")


def _run_direct():
    return run_esp_configuration(_DYN_HP, seed=2014)


def _run_via_service():
    return run_esp_configuration_via_service(_DYN_HP, seed=2014)


@pytest.mark.benchmark(group="service")
def test_direct_run(benchmark):
    result = benchmark.pedantic(_run_direct, rounds=3, iterations=1)
    assert result.metrics.completed_jobs == 230


@pytest.mark.benchmark(group="service")
def test_via_service_run(benchmark):
    result = benchmark.pedantic(_run_via_service, rounds=3, iterations=1)
    assert result.metrics.completed_jobs == 230


def test_service_overhead_bounded():
    direct = min(timeit.repeat(_run_direct, number=1, repeat=3))
    via = min(timeit.repeat(_run_via_service, number=1, repeat=3))
    ratio = via / direct
    record_bench(
        "service",
        "overhead",
        direct_s=direct,
        via_service_s=via,
        ratio=ratio,
    )
    register_report(
        "Scheduler-service overhead (Dyn-HP, 230 jobs)",
        "\n".join(
            [
                f"  direct BatchSystem run : {direct * 1e3:>9.1f} ms",
                f"  via SchedulerService   : {via * 1e3:>9.1f} ms",
                f"  ratio                  : {ratio:>9.2f}x (bound: 2.00x)",
            ]
        ),
    )
    assert ratio < 2.0, (
        f"service run took {via:.3f}s vs {direct:.3f}s direct "
        f"({ratio:.2f}x, bound 2.0x)"
    )
