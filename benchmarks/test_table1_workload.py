"""Table I — dynamic ESP workload generation.

Benchmarks the workload generator and prints the reproduced Table I (paper
values next to the model-derived core counts and DETs).
"""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.table1 import render_table1, table1_rows
from repro.workloads.esp import make_esp_workload


@pytest.mark.benchmark(group="table1")
def test_table1_workload_generation(benchmark):
    workload = benchmark(make_esp_workload, 120, dynamic=True, seed=2014)
    assert workload.total_jobs == 230
    assert workload.evolving_jobs == 69
    register_report("Table I — dynamic ESP job mix", render_table1(120))


@pytest.mark.benchmark(group="table1")
def test_table1_row_derivation(benchmark):
    rows = benchmark(table1_rows, 120)
    evolving = [r for r in rows if r["paper_det_s"] is not None]
    assert len(evolving) == 5
    for row in evolving:
        assert abs(row["model_det_s"] - row["paper_det_s"]) / row["paper_det_s"] < 0.02
