"""Baselines — the paper's approach vs SLURM-style and guaranteeing designs.

Quantifies the arguments of Sections II-B and V on the same dynamic ESP
workload: the guaranteeing approach wastes preallocated cores and inflates
rigid-job waits; the SLURM helper-job idiom satisfies few expansions in time.
"""

import pytest

from benchmarks.conftest import register_report
from repro.baselines.guaranteeing import run_guaranteeing_esp
from repro.baselines.slurm_style import run_slurm_esp
from repro.experiments.runner import run_esp_configuration_cached
from repro.metrics.report import render_table

_rows: dict[str, list] = {}
_EXPECTED = {"slurm", "guaranteeing"}


def _register_if_complete():
    if set(_rows) != _EXPECTED:
        return
    dyn_hp = run_esp_configuration_cached("Dyn-HP", seed=2014).metrics
    static = run_esp_configuration_cached("Static", seed=2014).metrics
    table = [
        ["Static", f"{static.workload_time_minutes:.1f}", 0, f"{static.mean_wait:.0f}", ""],
        [
            "Dyn-HP (paper)",
            f"{dyn_hp.workload_time_minutes:.1f}",
            dyn_hp.satisfied_dyn_jobs,
            f"{dyn_hp.mean_wait:.0f}",
            "",
        ],
        _rows["slurm"],
        _rows["guaranteeing"],
    ]
    register_report(
        "Baselines — approaches to evolving-job support (Sections II-B, V)",
        render_table(
            ["Approach", "Time[min]", "Satisfied", "Mean wait[s]", "Notes"], table
        ),
    )


@pytest.mark.benchmark(group="baselines")
def test_slurm_style_baseline(benchmark):
    metrics = benchmark.pedantic(run_slurm_esp, kwargs={"seed": 2014}, rounds=1, iterations=1)
    dyn_hp = run_esp_configuration_cached("Dyn-HP", seed=2014).metrics
    assert metrics.completed_jobs == 230
    # the static queue satisfies far fewer expansions in time
    assert metrics.satisfied_dyn_jobs < dyn_hp.satisfied_dyn_jobs
    _rows["slurm"] = [
        "SLURM-style",
        f"{metrics.workload_time_minutes:.1f}",
        metrics.satisfied_dyn_jobs,
        f"{metrics.mean_wait:.0f}",
        "helper jobs in static queue",
    ]
    _register_if_complete()


@pytest.mark.benchmark(group="baselines")
def test_guaranteeing_baseline(benchmark):
    result = benchmark.pedantic(run_guaranteeing_esp, kwargs={"seed": 2014}, rounds=1, iterations=1)
    dyn_hp = run_esp_configuration_cached("Dyn-HP", seed=2014).metrics
    assert result.metrics.completed_jobs == 230
    # preallocation hurts waits in a rigid-dominated workload
    assert result.metrics.mean_wait > dyn_hp.mean_wait
    assert result.wasted_reserved_core_seconds > 0
    _rows["guaranteeing"] = [
        "Guaranteeing",
        f"{result.metrics.workload_time_minutes:.1f}",
        69,
        f"{result.metrics.mean_wait:.0f}",
        f"{result.wasted_reserved_core_seconds / 3600:.0f} core-h reserved idle",
    ]
    _register_if_complete()
