"""Ablation — DFSDecay on a diurnal multi-day workload.

The paper's ESP run lasts ~4 hours, too short for ``DFSDecay`` to matter
(Dyn-500/600 use decay 0).  This ablation runs a 3-day diurnal workload
where the ledger rolls over ~72 interval boundaries.

Finding (reported in the summary): the carry-over *mechanism* engages —
with decay 0.9 tens of seconds of debt persist across dozens of intervals —
but at realistic cap/delay magnitudes it rarely flips a grant decision:
individual grants either inflict delays far above the cap (rejected with or
without debt) or far below it.  DFSDecay is a second-order knob; the cap
itself and the interval length are the first-order ones.  This matches the
paper's framing of decay as a refinement "to allow historical delays to be
considered" rather than a primary control.
"""

import pytest

from benchmarks.conftest import register_report
from repro.maui.config import DFSConfig, MauiConfig
from repro.metrics.report import render_table
from repro.system import BatchSystem
from repro.workloads.random_workload import make_diurnal_workload

DECAYS = [0.0, 0.2, 0.5, 0.9]
_rows: dict[float, list] = {}


def run_decay(decay: float) -> BatchSystem:
    config = MauiConfig(
        reservation_depth=5,
        reservation_delay_depth=5,
        dfs=DFSConfig.target_delay_for_all(120.0, interval=3600.0, decay=decay),
    )
    # ~80% offered load on 64 cores: contention every working day
    system = BatchSystem(8, 8, config)
    make_diurnal_workload(
        3, 64, jobs_per_day=350, evolving_share=0.35, seed=7
    ).submit_to(system)
    system.run(max_events=5_000_000)
    return system


@pytest.mark.benchmark(group="ablation-decay")
@pytest.mark.parametrize("decay", DECAYS)
def test_dfs_decay(benchmark, decay):
    system = benchmark.pedantic(run_decay, args=(decay,), rounds=1, iterations=1)
    m = system.metrics()
    stats = system.scheduler.stats
    assert all(j.is_finished for j in system.server.jobs.values())
    _rows[decay] = [
        f"{decay:.1f}",
        m.satisfied_dyn_jobs,
        stats["dyn_rejected_fairness"],
        f"{stats['total_delay_charged']:.0f}",
        f"{m.mean_wait:.0f}",
        f"{m.wait_fairness_index:.3f}",
    ]
    if len(_rows) == len(DECAYS):
        register_report(
            "Ablation — DFSDecay over a 3-day diurnal workload (cap 120s/h)",
            render_table(
                ["Decay", "Satisfied", "Fairness rejects", "Delay charged[s]",
                 "Mean wait[s]", "Wait fairness"],
                [_rows[d] for d in DECAYS],
            )
            + "\n  note: identical rows are the finding, not a bug — the"
            "\n  carried debt (instrumented: ~40s persists across dozens of"
            "\n  intervals at decay 0.9) never straddles a grant decision at"
            "\n  these cap/delay magnitudes; see the module docstring.",
        )
