"""Generality — the four configurations on a production-like random workload.

The paper cautions that its results "largely depend on the workload".  This
campaign replays the same four configurations on a Poisson-arrival,
log-uniform random mix (40 % evolving) instead of ESP, checking that the
qualitative story — dynamic allocation helps, fairness policies trade grants
for delay caps — survives a very different job population.
"""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.configs import ESPConfiguration, all_configurations
from repro.metrics.report import render_table
from repro.metrics.validate import validate_trace
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload

_rows: dict[str, list] = {}
_names = [c.name for c in all_configurations()]


def run_config(configuration: ESPConfiguration) -> BatchSystem:
    system = BatchSystem(15, 8, configuration.maui)
    make_random_workload(
        250,
        120,
        evolving_share=0.4 if configuration.dynamic_workload else 0.0,
        mean_interarrival=40.0,
        size_range=(1, 48),
        seed=77,
    ).submit_to(system)
    system.run(max_events=5_000_000)
    return system


@pytest.mark.benchmark(group="random-campaign")
@pytest.mark.parametrize("name", _names)
def test_random_campaign(benchmark, name):
    configuration = next(c for c in all_configurations() if c.name == name)
    system = benchmark.pedantic(run_config, args=(configuration,), rounds=1, iterations=1)
    assert validate_trace(system.trace, system.cluster) == []
    m = system.metrics()
    assert m.completed_jobs == 250
    _rows[name] = [
        name,
        f"{m.workload_time_minutes:.1f}",
        m.satisfied_dyn_jobs,
        f"{100 * m.utilization:.1f}",
        f"{m.mean_wait:.0f}",
        f"{m.wait_fairness_index:.3f}",
    ]
    if len(_rows) == len(_names):
        # the qualitative claims must carry over from ESP
        assert int(_rows["Dyn-HP"][2]) > 0
        assert _rows["Static"][2] == 0
        register_report(
            "Generality — four configurations on a random 250-job workload",
            render_table(
                ["Config", "Time[min]", "Satisfied", "Util[%]", "Mean wait[s]", "Wait fairness"],
                [_rows[n] for n in _names],
            )
            + "\n  note: Poisson arrivals, log-uniform sizes/runtimes, 40%"
            "\n  evolving jobs — a deliberately different population from ESP.",
        )
