"""Scaling — simulator cost and schedule quality vs machine size.

ESP is defined in machine fractions, so the same 230-job workload scales to
any core count.  This bench runs the Dyn-HP configuration on machines from
8x8 to 64x8 cores, reporting both simulator wall-clock cost (does the
availability-profile machinery stay tractable?) and schedule quality (ESP
efficiency: ideal work time over actual makespan).
"""

import pytest

from benchmarks.conftest import register_report
from repro.maui.config import MauiConfig
from repro.metrics.report import render_table
from repro.system import BatchSystem
from repro.workloads.esp import ESP_JOB_TYPES, esp_core_count, make_esp_workload

SIZES = [8, 15, 32, 64]  # nodes of 8 cores
_rows: dict[int, list] = {}


def run_at_scale(nodes: int) -> BatchSystem:
    system = BatchSystem(
        nodes, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
    )
    make_esp_workload(nodes * 8, dynamic=True, seed=2014).submit_to(system)
    system.run(max_events=5_000_000)
    return system


def ideal_work_seconds(total_cores: int) -> float:
    """Sum of cores x SET over the workload (the ESP 'ideal time' numerator)."""
    return sum(
        esp_core_count(t.fraction, total_cores) * t.static_execution_time * t.count
        for t in ESP_JOB_TYPES
    )


@pytest.mark.benchmark(group="scaling")
@pytest.mark.parametrize("nodes", SIZES)
def test_esp_at_machine_scale(benchmark, nodes):
    system = benchmark.pedantic(run_at_scale, args=(nodes,), rounds=1, iterations=1)
    m = system.metrics()
    assert m.completed_jobs == 230
    total_cores = nodes * 8
    efficiency = ideal_work_seconds(total_cores) / (total_cores * m.workload_time)
    _rows[nodes] = [
        f"{nodes}x8",
        f"{m.workload_time_minutes:.1f}",
        m.satisfied_dyn_jobs,
        f"{100 * m.utilization:.1f}",
        f"{100 * efficiency:.1f}",
        system.scheduler.stats["iterations"],
    ]
    if len(_rows) == len(SIZES):
        register_report(
            "Scaling — dynamic ESP (Dyn-HP) vs machine size",
            render_table(
                ["Machine", "Time[min]", "Satisfied", "Util[%]", "ESP efficiency[%]", "Iterations"],
                [_rows[n] for n in SIZES],
            )
            + "\n  note: the workload is defined in machine fractions, so job"
            "\n  sizes grow with the machine; the submission protocol (30s"
            "\n  spacing) increasingly dominates the makespan at larger scales.",
        )
