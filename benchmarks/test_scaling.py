"""Scaling — simulator cost and schedule quality vs machine size.

ESP is defined in machine fractions, so the same 230-job workload scales to
any core count.  This bench runs the Dyn-HP configuration on machines from
8x8 to 64x8 cores, reporting both simulator wall-clock cost (does the
availability-profile machinery stay tractable?) and schedule quality (ESP
efficiency: ideal work time over actual makespan).

Each scale is one :class:`~repro.exec.specs.ScalingRunSpec` through the
shared spec worker function, so the bench measures exactly what a parallel
campaign over machine sizes would execute per worker.
"""

import pytest

from benchmarks.conftest import record_bench, register_report
from repro.exec.specs import ScalingRunSpec, run_scaling_row
from repro.metrics.report import render_table
from repro.workloads.esp import ESP_JOB_TYPES, esp_core_count

SIZES = [8, 15, 32, 64]  # nodes of 8 cores
_rows: dict[int, list] = {}


def run_at_scale(nodes: int) -> dict:
    return run_scaling_row(ScalingRunSpec(nodes))


def ideal_work_seconds(total_cores: int) -> float:
    """Sum of cores x SET over the workload (the ESP 'ideal time' numerator)."""
    return sum(
        esp_core_count(t.fraction, total_cores) * t.static_execution_time * t.count
        for t in ESP_JOB_TYPES
    )


@pytest.mark.slow
@pytest.mark.benchmark(group="scaling")
@pytest.mark.parametrize("nodes", SIZES)
def test_esp_at_machine_scale(benchmark, nodes):
    row = benchmark.pedantic(run_at_scale, args=(nodes,), rounds=1, iterations=1)
    assert row["completed"] == 230
    total_cores = nodes * 8
    efficiency = ideal_work_seconds(total_cores) / (total_cores * row["workload_time"])
    record_bench(
        "scaling", f"esp_dyn_hp_{nodes}x8",
        wall_seconds=benchmark.stats.stats.mean,
        iterations=row["iterations"],
        utilization_pct=row["util_pct"],
    )
    _rows[nodes] = [
        f"{nodes}x8",
        f"{row['time_min']:.1f}",
        row["satisfied"],
        f"{row['util_pct']:.1f}",
        f"{100 * efficiency:.1f}",
        row["iterations"],
    ]
    if len(_rows) == len(SIZES):
        register_report(
            "Scaling — dynamic ESP (Dyn-HP) vs machine size",
            render_table(
                ["Machine", "Time[min]", "Satisfied", "Util[%]", "ESP efficiency[%]", "Iterations"],
                [_rows[n] for n in SIZES],
            )
            + "\n  note: the workload is defined in machine fractions, so job"
            "\n  sizes grow with the machine; the submission protocol (30s"
            "\n  spacing) increasingly dominates the makespan at larger scales.",
        )
