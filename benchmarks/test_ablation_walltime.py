"""Ablation — walltime over-request factor.

Section III-D notes that users request walltimes above the real runtime and
that delay accounting (which plans with walltimes) therefore *over*-estimates
true delays, recommending delay limits be configured "moderately higher than
intended".  This ablation quantifies that: the same Dyn-500 policy becomes
effectively stricter as the walltime factor grows.
"""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.configs import dynamic_target_config, ESPConfiguration
from repro.experiments.runner import run_esp_configuration
from repro.metrics.report import render_table

FACTORS = [1.0, 1.25, 1.5, 2.0]
_rows: dict[float, list] = {}


@pytest.mark.benchmark(group="ablation-walltime")
@pytest.mark.parametrize("factor", FACTORS)
def test_walltime_factor(benchmark, factor):
    config = ESPConfiguration(
        name=f"Dyn-500/wt{factor}", maui=dynamic_target_config(500.0), dynamic_workload=True
    )
    result = benchmark.pedantic(
        run_esp_configuration,
        args=(config,),
        kwargs={"walltime_factor": factor},
        rounds=1,
        iterations=1,
    )
    m = result.metrics
    assert m.completed_jobs == 230
    _rows[factor] = [
        f"{factor:.2f}",
        m.satisfied_dyn_jobs,
        result.scheduler_stats["dyn_rejected_fairness"],
        f"{result.scheduler_stats['total_delay_charged']:.0f}",
        f"{m.workload_time_minutes:.1f}",
    ]
    if len(_rows) == len(FACTORS):
        register_report(
            "Ablation — walltime over-request factor under Dyn-500",
            render_table(
                ["Walltime factor", "Satisfied", "Fairness rejects", "Delay charged[s]", "Time[min]"],
                [_rows[f] for f in FACTORS],
            )
            + "\n  note: longer walltimes inflate hypothetical reservations and"
            "\n  measured delays — the same cap rejects more requests"
            "\n  (the paper's advice: configure limits moderately higher).",
        )
