"""Fig. 10 — waiting times: Static vs Dyn-HP vs Dyn-500."""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.fig10 import render_fig10, run_fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10_wait_comparison(benchmark):
    results, rows = benchmark.pedantic(run_fig10, kwargs={"seed": 2014}, rounds=1, iterations=1)
    assert len(rows) == 230

    def spread(name):
        waits = [r[name] for r in rows if r[name] is not None and r["Static"] is not None]
        base = [r["Static"] for r in rows if r[name] is not None and r["Static"] is not None]
        return max(abs(w - s) for w, s in zip(waits, base))

    # Dyn-500's waits hug the static curve more tightly than Dyn-HP's
    assert spread("Dyn-500") <= spread("Dyn-HP")
    register_report("Fig. 10 — waiting times: Static vs Dyn-HP vs Dyn-500", render_fig10(2014))
