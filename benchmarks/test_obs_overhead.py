"""Telemetry overhead: the disabled hot path must stay within 5 %.

The tentpole claim of the observability layer is that it costs (nearly)
nothing when off: every hook site reduces to one ``self._obs is not None``
attribute check.  A true pre-instrumentation baseline no longer exists to
measure against, so the bound is established from first principles:

1. count how many hook executions one ESP run performs (the enabled run's
   own counters and spans record this);
2. measure the wall cost of a single attribute-is-None check;
3. assert  hooks x per-check cost  <  5 % of the measured disabled-run
   wall time — i.e. even charging every hook at full price, the disabled
   path sits comfortably inside the 5 % envelope.

A pytest-benchmark comparison of disabled vs enabled runs rides along for
the curious (enabled adds counters, histograms, sampling and spans).
"""

import timeit

import pytest

from benchmarks.conftest import record_bench, register_report
from repro.experiments.configs import all_configurations
from repro.experiments.runner import run_esp_configuration
from repro.obs import Telemetry
from repro.sim.events import EventKind

_DYN_HP = next(c for c in all_configurations() if c.name == "Dyn-HP")


def _run(telemetry=None):
    return run_esp_configuration(_DYN_HP, seed=2014, telemetry=telemetry)


def _per_check_cost_seconds() -> float:
    """Wall cost of one ``self._obs is not None`` check (the disabled hook)."""

    class Host:
        __slots__ = ("_obs",)

        def __init__(self):
            self._obs = None

    host = Host()
    number = 1_000_000
    total = min(
        timeit.repeat(
            "if host._obs is not None:\n    pass",
            globals={"host": host},
            number=number,
            repeat=3,
        )
    )
    return total / number


def _count_hook_executions() -> int:
    """Hook executions in one ESP run, counted by an enabled run.

    Server hooks fire once per lifecycle event (mirrored in the counters),
    cluster hooks once per claim/release, scheduler hooks once per
    iteration and per dynamic request (recorded as spans).  Each site is
    counted generously: the real disabled path runs *at most* this many
    checks.
    """
    telemetry = Telemetry(sample_interval=None)
    result = _run(telemetry=telemetry)
    registry = telemetry.registry
    server_events = sum(
        registry.value(name)
        for name in (
            "repro_jobs_submitted_total",
            "repro_jobs_started_total",
            "repro_jobs_completed_total",
            "repro_jobs_aborted_total",
            "repro_jobs_preempted_total",
            "repro_dyn_requests_total",
            "repro_dyn_grants_total",
            "repro_dyn_rejects_total",
        )
    )
    # each server event site also refreshes three depth gauges; charge 4x
    server_checks = 4 * int(server_events)
    # claims/releases: one per start/end/grant/release; charge 4 per job
    # event as a generous over-estimate
    cluster_checks = 4 * int(server_events)
    sched_checks = int(
        registry.value("repro_sched_iterations_total")
        + registry.get("repro_dyn_handle_seconds").count
    )
    return 2 * (server_checks + cluster_checks + sched_checks)


@pytest.mark.benchmark(group="obs-overhead")
def test_disabled_run(benchmark):
    result = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert result.metrics.completed_jobs == 230


@pytest.mark.benchmark(group="obs-overhead")
def test_enabled_run(benchmark):
    result = benchmark.pedantic(
        lambda: _run(telemetry=Telemetry()), rounds=3, iterations=1
    )
    assert result.metrics.completed_jobs == 230


def test_disabled_overhead_within_five_percent():
    hooks = _count_hook_executions()
    per_check = _per_check_cost_seconds()
    start = timeit.default_timer()
    _run()
    disabled_runtime = timeit.default_timer() - start

    overhead = hooks * per_check
    budget = 0.05 * disabled_runtime
    register_report(
        "Telemetry overhead — disabled-path bound (5 % budget)",
        "\n".join(
            [
                f"  hook executions per ESP run : {hooks:>12,d}",
                f"  cost per is-None check      : {per_check * 1e9:>12.1f} ns",
                f"  worst-case disabled overhead: {overhead * 1e3:>12.3f} ms",
                f"  disabled run wall time      : {disabled_runtime * 1e3:>12.1f} ms",
                f"  5% budget                   : {budget * 1e3:>12.1f} ms",
                f"  headroom                    : {budget / overhead:>12.1f}x",
            ]
        ),
    )
    assert overhead < budget, (
        f"{hooks} hook checks x {per_check * 1e9:.1f} ns = "
        f"{overhead * 1e3:.3f} ms exceeds 5% of the "
        f"{disabled_runtime * 1e3:.1f} ms disabled run"
    )


# ----------------------------------------------------------------------
# decision-ledger overhead (same contract, separate budget accounting)
# ----------------------------------------------------------------------
def _count_ledger_hook_executions() -> int:
    """Ledger hook sites executed by one ESP run with the ledger *off*.

    The ledger adds, on the disabled path: the per-queued-job hold gate in
    ``_eligible_static``, a handful of iteration-level ``is not None``
    checks around classification, a per-start and two per-reservation
    checks in ``_start_static``, and one check in each of the dynamic
    grant/deny/defer funnels.  A ledger-enabled run supplies the event
    counts; every site is charged generously.
    """
    telemetry = Telemetry(sample_interval=None, decision_ledger=True)
    result = _run(telemetry=telemetry)
    stats = result.scheduler_stats
    queued_gate_checks = sum(
        e.payload["queued"]
        for e in result.trace
        if e.kind is EventKind.SCHED_ITERATION
    )
    iteration_checks = 6 * stats["iterations"]
    start_checks = stats["jobs_started"] + stats["jobs_backfilled"]
    reservation_checks = 2 * stats["reservations_created"]
    dyn_checks = 4 * (stats["dyn_granted"] + stats["dyn_rejected"])
    return int(
        queued_gate_checks
        + iteration_checks
        + start_checks
        + reservation_checks
        + dyn_checks
    )


@pytest.mark.benchmark(group="ledger")
def test_ledger_enabled_run(benchmark):
    result = benchmark.pedantic(
        lambda: _run(telemetry=Telemetry(decision_ledger=True)),
        rounds=3,
        iterations=1,
    )
    assert result.metrics.completed_jobs == 230
    record_bench(
        "ledger",
        "enabled_run",
        decisions=len(result.telemetry.ledger),
        grants=len(result.telemetry.ledger.grants()),
    )


def test_ledger_disabled_overhead_within_five_percent():
    hooks = _count_ledger_hook_executions()
    per_check = _per_check_cost_seconds()
    start = timeit.default_timer()
    _run()
    disabled_runtime = timeit.default_timer() - start

    overhead = hooks * per_check
    budget = 0.05 * disabled_runtime
    record_bench(
        "ledger",
        "disabled_bound",
        hook_checks=hooks,
        per_check_ns=per_check * 1e9,
        overhead_ms=overhead * 1e3,
        budget_ms=budget * 1e3,
        headroom=budget / overhead,
    )
    register_report(
        "Decision-ledger overhead — disabled-path bound (5 % budget)",
        "\n".join(
            [
                f"  ledger hook checks per run  : {hooks:>12,d}",
                f"  cost per is-None check      : {per_check * 1e9:>12.1f} ns",
                f"  worst-case disabled overhead: {overhead * 1e3:>12.3f} ms",
                f"  disabled run wall time      : {disabled_runtime * 1e3:>12.1f} ms",
                f"  5% budget                   : {budget * 1e3:>12.1f} ms",
                f"  headroom                    : {budget / overhead:>12.1f}x",
            ]
        ),
    )
    assert overhead < budget, (
        f"{hooks} ledger hook checks x {per_check * 1e9:.1f} ns = "
        f"{overhead * 1e3:.3f} ms exceeds 5% of the "
        f"{disabled_runtime * 1e3:.1f} ms disabled run"
    )


# ----------------------------------------------------------------------
# phase-profiler + windows overhead (same contract, profiler absent)
# ----------------------------------------------------------------------
def test_profiler_absent_overhead_within_five_percent():
    """Profiler and windows off: every hook site is one is-None check.

    A profiling-enabled run counts the begin/end pairs the instrumentation
    would execute; each pair corresponds to at most two disabled-path
    checks (the ``prof is None`` gate at the begin site and, where the end
    sits in a separate branch, one more).  Charged at 4x per pair to stay
    generous, plus one windows check per trace-recorded lifecycle event
    (the fold/queue-depth hooks on the server).
    """
    telemetry = Telemetry(sample_interval=None, profiling=True, windows=600.0)
    result = _run(telemetry=telemetry)
    phase_pairs = telemetry.profiler.total_phase_count()
    hooks = 4 * phase_pairs + 2 * result.trace.total_recorded
    per_check = _per_check_cost_seconds()
    start = timeit.default_timer()
    _run()
    disabled_runtime = timeit.default_timer() - start

    overhead = hooks * per_check
    budget = 0.05 * disabled_runtime
    record_bench(
        "perf",
        "profiler_absent_bound",
        hook_checks=hooks,
        phase_pairs=phase_pairs,
        per_check_ns=per_check * 1e9,
        overhead_ms=overhead * 1e3,
        budget_ms=budget * 1e3,
        headroom=budget / overhead,
    )
    register_report(
        "Phase-profiler overhead — profiler-absent bound (5 % budget)",
        "\n".join(
            [
                f"  profiler hook checks per run: {hooks:>12,d}",
                f"  (from {phase_pairs:,d} begin/end pairs when enabled)",
                f"  cost per is-None check      : {per_check * 1e9:>12.1f} ns",
                f"  worst-case absent overhead  : {overhead * 1e3:>12.3f} ms",
                f"  disabled run wall time      : {disabled_runtime * 1e3:>12.1f} ms",
                f"  5% budget                   : {budget * 1e3:>12.1f} ms",
                f"  headroom                    : {budget / overhead:>12.1f}x",
            ]
        ),
    )
    assert overhead < budget, (
        f"{hooks} profiler hook checks x {per_check * 1e9:.1f} ns = "
        f"{overhead * 1e3:.3f} ms exceeds 5% of the "
        f"{disabled_runtime * 1e3:.1f} ms disabled run"
    )


# ----------------------------------------------------------------------
# fault-injection overhead (same contract, injector absent)
# ----------------------------------------------------------------------
def test_faults_absent_overhead_within_five_percent():
    """With no injector attached, the fault layer is one ``self._faults is
    not None`` check per dynamic grant — nothing else touches the hot path.
    """
    telemetry = Telemetry(sample_interval=None)
    _run(telemetry=telemetry)
    hooks = int(telemetry.registry.value("repro_dyn_grants_total"))
    per_check = _per_check_cost_seconds()
    start = timeit.default_timer()
    _run()
    disabled_runtime = timeit.default_timer() - start

    overhead = hooks * per_check
    budget = 0.05 * disabled_runtime
    register_report(
        "Fault-injection overhead — injector-absent bound (5 % budget)",
        "\n".join(
            [
                f"  fault hook checks per run   : {hooks:>12,d}",
                f"  cost per is-None check      : {per_check * 1e9:>12.1f} ns",
                f"  worst-case absent overhead  : {overhead * 1e3:>12.3f} ms",
                f"  disabled run wall time      : {disabled_runtime * 1e3:>12.1f} ms",
                f"  5% budget                   : {budget * 1e3:>12.1f} ms",
                f"  headroom                    : {budget / overhead:>12.1f}x",
            ]
        ),
    )
    assert overhead < budget, (
        f"{hooks} fault hook checks x {per_check * 1e9:.1f} ns = "
        f"{overhead * 1e3:.3f} ms exceeds 5% of the "
        f"{disabled_runtime * 1e3:.1f} ms disabled run"
    )


# ----------------------------------------------------------------------
# fairness-observatory overhead (same contract, observatory absent)
# ----------------------------------------------------------------------
def test_fairness_absent_overhead_within_five_percent():
    """Observatory off: the scheduler's statistics pass costs one
    ``self._fair`` read per call plus one ``fair is not None`` check per
    charged usage segment and per tracker roll.  An enabled run counts
    both (accruals and samples are exactly the segment/roll executions);
    every site is charged at 2x to stay generous.
    """
    telemetry = Telemetry(sample_interval=None, fairness=True, windows=600.0)
    result = _run(telemetry=telemetry)
    fair = telemetry.fairness
    iterations = int(telemetry.registry.value("repro_sched_iterations_total"))
    hooks = 2 * (2 * iterations + fair.accruals)
    per_check = _per_check_cost_seconds()
    start = timeit.default_timer()
    _run()
    disabled_runtime = timeit.default_timer() - start

    overhead = hooks * per_check
    budget = 0.05 * disabled_runtime
    record_bench(
        "perf",
        "fairness_absent_bound",
        hook_checks=hooks,
        accruals=fair.accruals,
        per_check_ns=per_check * 1e9,
        overhead_ms=overhead * 1e3,
        budget_ms=budget * 1e3,
        headroom=budget / overhead,
    )
    register_report(
        "Fairness-observatory overhead — absent bound (5 % budget)",
        "\n".join(
            [
                f"  fairness hook checks per run: {hooks:>12,d}",
                f"  (from {fair.accruals:,d} charged segments when enabled)",
                f"  cost per is-None check      : {per_check * 1e9:>12.1f} ns",
                f"  worst-case absent overhead  : {overhead * 1e3:>12.3f} ms",
                f"  disabled run wall time      : {disabled_runtime * 1e3:>12.1f} ms",
                f"  5% budget                   : {budget * 1e3:>12.1f} ms",
                f"  headroom                    : {budget / overhead:>12.1f}x",
            ]
        ),
    )
    assert overhead < budget, (
        f"{hooks} fairness hook checks x {per_check * 1e9:.1f} ns = "
        f"{overhead * 1e3:.3f} ms exceeds 5% of the "
        f"{disabled_runtime * 1e3:.1f} ms disabled run"
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_fairness_slo_enabled_run(benchmark):
    """Enabled-path cost of the full fairness + SLO stack, for the trend
    snapshot: observatory sampling, grouped windows, objective evaluation."""

    def run():
        return _run(
            telemetry=Telemetry(
                fairness=True,
                windows=600.0,
                slo=["p99_wait < 4h", "jain >= 0.6", "share_error < 0.15"],
            )
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.metrics.completed_jobs == 230
    telemetry = result.telemetry
    start = timeit.default_timer()
    run()
    enabled_runtime = timeit.default_timer() - start
    start = timeit.default_timer()
    _run()
    disabled_runtime = timeit.default_timer() - start
    record_bench(
        "perf",
        "fairness_observatory_overhead",
        enabled_ms=enabled_runtime * 1e3,
        disabled_ms=disabled_runtime * 1e3,
        overhead_pct=100.0 * (enabled_runtime - disabled_runtime)
        / disabled_runtime,
        samples=len(telemetry.fairness.samples),
        accounts=len(telemetry.fairness.principals),
        slo_breaches=len(telemetry.slo.breaches),
    )
