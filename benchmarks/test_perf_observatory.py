"""Performance-observatory benchmarks: self-profile tree and bounded memory.

Two artifacts for the bench snapshot: the phase profiler's own view of
where a Dyn-HP run spends its wall-clock (the *self-profile tree*, embedded
verbatim in ``BENCH_*.json`` so ``bench-trend`` can watch phase shares
drift across PRs), and the bounded-memory contract of the windowed
aggregation path — a 100k-job synthetic replay must hold O(windows)
frames, never O(jobs).
"""

import pytest

from benchmarks.conftest import record_bench, register_report
from repro.experiments.configs import all_configurations
from repro.experiments.runner import run_esp_configuration
from repro.maui.config import MauiConfig
from repro.obs import Telemetry
from repro.obs.console import render_phase_tree
from repro.obs.windows import WindowedMetrics
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload

_DYN_HP = next(c for c in all_configurations() if c.name == "Dyn-HP")


@pytest.mark.benchmark(group="perf")
def test_profiled_run_phase_tree(benchmark):
    """One profiled Dyn-HP run; the phase tree goes into the snapshot."""

    def run():
        telemetry = Telemetry(sample_interval=None, profiling=True, windows=600.0)
        run_esp_configuration(_DYN_HP, seed=2014, telemetry=telemetry)
        return telemetry

    telemetry = benchmark.pedantic(run, rounds=3, iterations=1)
    prof = telemetry.profiler
    assert prof.depth == 0
    coverage = prof.child_coverage(("engine_dispatch", "sched_iteration"))
    assert coverage >= 0.9  # acceptance: phases tile the iteration within 10%
    record_bench(
        "perf",
        "phase_profile",
        wall_seconds=benchmark.stats.stats.mean,
        phases_recorded=prof.total_phase_count(),
        sched_child_coverage=coverage,
        tree=prof.tree(),
    )
    register_report(
        "Phase profile — Dyn-HP ESP run (where iterations spend wall-clock)",
        render_phase_tree(prof.tree()),
    )


@pytest.mark.benchmark(group="perf")
def test_windowed_fold_throughput_100k(benchmark):
    """Fold a 100k-job synthetic stream; frames stay O(active windows)."""
    jobs = 100_000
    interarrival, runtime, width = 30.0, 600.0, 3600.0

    class _Fake:
        __slots__ = ("job_id", "submit_time", "start_time", "end_time",
                     "state", "is_evolving", "dyn_granted")

        class _State:
            value = "completed"

        def __init__(self, submit):
            self.job_id = "synthetic"
            self.submit_time = submit
            self.start_time = submit + 30.0
            self.end_time = submit + 30.0 + runtime
            self.state = self._State()
            self.is_evolving = False
            self.dyn_granted = 0

    def fold_all():
        w = WindowedMetrics(width, total_cores=512)
        for i in range(jobs):
            w.fold_job(_Fake(i * interarrival))
        return w

    w = benchmark.pedantic(fold_all, rounds=3, iterations=1)
    assert w.jobs_finished == jobs
    span_windows = int(jobs * interarrival / width) + 2
    assert len(w.frames) <= span_windows  # bounded: O(windows), not O(jobs)
    record_bench(
        "perf",
        "windowed_fold_100k",
        wall_seconds=benchmark.stats.stats.mean,
        jobs=jobs,
        jobs_per_second=jobs / benchmark.stats.stats.mean,
        frames_materialised=len(w.frames),
        frames_bound=span_windows,
    )


def test_fold_and_discard_bounds_server_index():
    """A fold-and-discard replay keeps the server's job index near-empty."""
    telemetry = Telemetry(
        sample_interval=None, windows=3600.0, fold_and_discard=True
    )
    system = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
    num_jobs = 2_000
    make_random_workload(
        num_jobs, system.cluster.total_cores, seed=9, mean_interarrival=20.0
    ).submit_to(system)
    system.run(max_events=5_000_000)
    server = system.server
    assert server.jobs_discarded > 0
    assert telemetry.windows.jobs_finished == server.jobs_discarded + len(
        [j for j in server.jobs.values() if j.end_time is not None]
    )
    record_bench(
        "perf",
        "fold_and_discard",
        jobs_submitted=num_jobs,
        jobs_discarded=server.jobs_discarded,
        jobs_retained=len(server.jobs),
        frames_materialised=len(telemetry.windows.frames),
    )
    # discarded jobs dominate: the index holds only the undrained tail
    assert len(server.jobs) < num_jobs / 4
