"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's tables/figures and registers
the rendered artifact here; the terminal summary prints them all, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures both
the timings and the reproduced results.

Benchmarks additionally record machine-readable numbers via
:func:`record_bench`; at session end they are written to the repo-root
snapshot file (see ``docs/PERFORMANCE.md`` for how to read it).  The
filename comes from the ``BENCH_SNAPSHOT`` environment variable (default
``BENCH_PR9.json``), so each PR's CI can keep its own snapshot without
editing this file.  ``repro-batchsim bench-trend`` diffs two snapshots
(the CI perf-regression gate).  The snapshot always carries ``cpu_count`` —
wall-clock comparisons (serial vs parallel campaigns in particular) are
meaningless without it.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

_REPORTS: list[tuple[str, str]] = []
_BENCH: dict[str, dict[str, dict]] = {}

#: repo-root snapshot file for this PR's performance numbers; override the
#: filename with the BENCH_SNAPSHOT environment variable
BENCH_SNAPSHOT = Path(__file__).resolve().parent.parent / os.environ.get(
    "BENCH_SNAPSHOT", "BENCH_PR9.json"
)


def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports installed CPUs, but CI runners and cgroup
    containers routinely pin the process to a subset; the scheduling
    affinity mask is what bounds parallel speedup.  Falls back to
    ``os.cpu_count()`` on platforms without ``sched_getaffinity``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def register_report(title: str, text: str) -> None:
    """Register a rendered artifact for the end-of-run summary (deduped)."""
    if all(existing_title != title for existing_title, _ in _REPORTS):
        _REPORTS.append((title, text))


def record_bench(group: str, name: str, **values) -> None:
    """Record one benchmark measurement for the ``BENCH_SNAPSHOT`` file.

    ``group``/``name`` mirror the pytest-benchmark group and test; ``values``
    are plain JSON-serialisable numbers (seconds, counts, ratios).  Repeat
    calls with the same name overwrite — the snapshot keeps the last run.
    """
    _BENCH.setdefault(group, {})[name] = values


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH:
        return
    payload = {
        "schema": "repro-bench/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": usable_cpu_count(),
        "cpu_count_installed": os.cpu_count(),
        "groups": _BENCH,
    }
    BENCH_SNAPSHOT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def pytest_terminal_summary(terminalreporter):
    if _BENCH:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"bench snapshot written to {BENCH_SNAPSHOT}")
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
