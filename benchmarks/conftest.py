"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's tables/figures and registers
the rendered artifact here; the terminal summary prints them all, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures both
the timings and the reproduced results.
"""

from __future__ import annotations

_REPORTS: list[tuple[str, str]] = []


def register_report(title: str, text: str) -> None:
    """Register a rendered artifact for the end-of-run summary (deduped)."""
    if all(existing_title != title for existing_title, _ in _REPORTS):
        _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
