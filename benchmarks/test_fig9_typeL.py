"""Fig. 9 — waiting times of type-L jobs under all four configurations."""

import statistics

import pytest

from benchmarks.conftest import register_report
from repro.experiments.fig9 import render_fig9, run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_type_l_waits(benchmark):
    results, rows = benchmark.pedantic(run_fig9, kwargs={"seed": 2014}, rounds=1, iterations=1)
    assert len(rows) == 36
    means = {
        name: statistics.mean(r[name] for r in rows)
        for name in ("Static", "Dyn-HP", "Dyn-500", "Dyn-600")
    }
    # the DFS policies pull type-L waits back toward (or below) static
    assert means["Dyn-500"] <= means["Dyn-HP"] * 1.05
    register_report("Fig. 9 — type L waiting times (all configurations)", render_fig9(2014))
