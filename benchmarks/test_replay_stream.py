"""Streaming 100k-job trace replay — the sharding proof at scale.

A seeded synthetic SWF trace (~0.7 offered load on a 32-node, 256-core
machine) is *streamed* through :func:`repro.workloads.from_swf` — the
chunked file-reading path, not a pre-materialised string — converted 5 %
evolving via :func:`repro.workloads.evolving_ify`, and replayed through
the full batch system at 1, 2 and 4 scheduler shards with bounded
observability (tumbling telemetry windows with ``fold_and_discard``, a
ring-bounded trace), so memory stays flat across 100k jobs.

Each replay records wall-clock, engine events/s, and the scheduler-only
per-iteration cost (the class method is wrapped with a perf counter) into
the ``replay`` bench group.  The headline claim: at 2+ shards the
per-iteration scheduler cost stays under the 330 µs single-matrix
deep-queue baseline of BENCH_PR7.  Wall-clock numbers carry the usual
``cpu_count`` affinity annotations — they are meaningless without them.
"""

import io
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import record_bench, usable_cpu_count
from repro.maui.config import MauiConfig
from repro.maui.scheduler import MauiScheduler
from repro.obs import Telemetry
from repro.system import BatchSystem
from repro.workloads import evolving_ify, from_swf

NUM_JOBS = 100_000
NUM_NODES = 32
CORES_PER_NODE = 8
SEED = 2014


def _synthetic_swf(num_jobs: int, seed: int, *, load: float = 0.7) -> str:
    """A seeded SWF trace at the target offered load.

    Log-uniform sizes (1–64 cores) and runtimes (5 min – 2 h), exponential
    arrivals with the rate chosen so mean offered work equals ``load`` of
    the machine — the shape of production archive traces, deterministic in
    ``seed``.
    """
    rng = np.random.default_rng(seed)
    sizes = np.exp(rng.uniform(np.log(1), np.log(64), num_jobs)).round().astype(int)
    sizes = np.clip(sizes, 1, 64)
    runtimes = (
        np.exp(rng.uniform(np.log(300), np.log(7200), num_jobs)).round().astype(int)
    )
    cores = NUM_NODES * CORES_PER_NODE
    rate = load * cores / (float(sizes.mean()) * float(runtimes.mean()))
    arrivals = np.cumsum(rng.exponential(1.0 / rate, num_jobs)).round().astype(int)
    users = rng.integers(1, 33, num_jobs)
    lines = [
        f"{i + 1} {arrivals[i]} -1 {runtimes[i]} {sizes[i]} -1 -1 "
        f"{sizes[i]} {int(runtimes[i] * 1.2)} -1 1 {users[i]} {users[i]} "
        "-1 -1 -1 -1 -1"
        for i in range(num_jobs)
    ]
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="module")
def replay_workload():
    text = _synthetic_swf(NUM_JOBS, SEED)
    workload = from_swf(io.StringIO(text), chunk_size=1 << 14)
    assert len(workload) == NUM_JOBS
    return evolving_ify(workload, 0.05, seed=7)


@pytest.mark.slow
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_swf_replay_streaming(replay_workload, shards):
    config = MauiConfig(
        reservation_depth=5, reservation_delay_depth=5, scheduler_shards=shards
    )
    telemetry = Telemetry(
        sample_interval=None, windows=3600.0, fold_and_discard=True
    )

    sched_state = {"calls": 0, "seconds": 0.0}
    original = MauiScheduler.iteration

    def timed(self, *args, **kwargs):
        t0 = time.perf_counter()
        try:
            return original(self, *args, **kwargs)
        finally:
            sched_state["calls"] += 1
            sched_state["seconds"] += time.perf_counter() - t0

    MauiScheduler.iteration = timed
    try:
        system = BatchSystem(
            NUM_NODES,
            CORES_PER_NODE,
            config,
            telemetry=telemetry,
            trace_maxlen=10_000,
        )
        replay_workload.submit_to(system)
        t0 = time.perf_counter()
        events = system.run(max_events=100_000_000)
        wall = time.perf_counter() - t0
    finally:
        MauiScheduler.iteration = original

    # fold_and_discard drops Job objects as they complete (that is the
    # bounded-memory point) — totals come from the streaming aggregates
    windows = telemetry.windows
    assert windows.jobs_completed == NUM_JOBS
    assert windows.satisfied_dyn_jobs > 0
    stats = system.scheduler.stats
    iterations = stats["iterations"]
    per_iteration = sched_state["seconds"] / max(1, sched_state["calls"])
    # the acceptance bar: sharded planning beats the 330 µs single-matrix
    # deep-queue iteration of BENCH_PR7
    if shards >= 2:
        assert per_iteration < 330e-6
    record_bench(
        "replay",
        f"swf_replay_{NUM_JOBS // 1000}k_jobs_shards{shards}",
        wall_seconds=wall,
        events=events,
        events_per_second=events / wall,
        iterations=iterations,
        sched_seconds=sched_state["seconds"],
        sched_iteration_seconds=per_iteration,
        shard_merges=stats["shard_merges"],
        shard_passes_skipped=stats["shard_passes_skipped"],
        satisfied_dyn_jobs=windows.satisfied_dyn_jobs,
        shards=shards,
        cpu_count=usable_cpu_count(),
        cpu_count_installed=os.cpu_count(),
    )


@pytest.mark.slow
def test_swf_replay_fairness_slo(replay_workload):
    """Fairness + SLO at 100k jobs under fold-and-discard memory bounds.

    The observatory must produce per-account share series and grouped
    wait/stretch distributions while holding O(accounts + max_points)
    state — no per-job retention — and the SLO engine must evaluate every
    materialised window.
    """
    telemetry = Telemetry(
        sample_interval=None,
        windows=3600.0,
        fold_and_discard=True,
        fairness=True,
        slo=["p99_wait < 4h", "jain >= 0.5", "share_error < 0.2"],
    )
    system = BatchSystem(
        NUM_NODES,
        CORES_PER_NODE,
        MauiConfig(
            reservation_depth=5, reservation_delay_depth=5, scheduler_shards=2
        ),
        telemetry=telemetry,
        trace_maxlen=10_000,
    )
    replay_workload.submit_to(system)
    t0 = time.perf_counter()
    events = system.run(max_events=100_000_000)
    wall = time.perf_counter() - t0

    windows = telemetry.windows
    assert windows.jobs_completed == NUM_JOBS
    fair = telemetry.fairness
    # per-account series exist for every SWF user, at bounded length
    assert len(fair.principals) == 32
    assert fair.samples and len(fair.samples) < fair.max_points
    assert set(fair.latest["shares"]) == set(fair.principals)
    # the group dimension folded every job without retaining any
    groups = windows.groups
    assert sum(g.jobs for g in groups.values()) == NUM_JOBS
    engine = telemetry.slo
    evaluated = len(engine._evaluated)
    assert evaluated == len(windows.closed) + len(windows._open)
    record_bench(
        "replay",
        f"swf_replay_{NUM_JOBS // 1000}k_jobs_fairness_slo",
        wall_seconds=wall,
        events=events,
        events_per_second=events / wall,
        fairness_samples=len(fair.samples),
        fairness_decimations=fair.decimations,
        accounts=len(fair.principals),
        windows_evaluated=evaluated,
        slo_breaches=len(engine.breaches),
        jain=fair.latest["jain"],
        cpu_count=usable_cpu_count(),
        cpu_count_installed=os.cpu_count(),
    )
