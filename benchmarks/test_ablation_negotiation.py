"""Ablation — negotiation protocol vs the paper's fixed retry.

The paper's evolving jobs retry once at 25 % of SET and then give up; its
outlook proposes a negotiation mechanism "where the application can specify
a timeout for obtaining resources and where the batch system can indicate
the time of availability".  This ablation runs the dynamic ESP workload with
both protocols: negotiated requests wait out short resource droughts instead
of sampling the queue at two fixed instants.
"""

import pytest

from benchmarks.conftest import register_report
from repro.maui.config import MauiConfig
from repro.metrics.report import render_table
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload

VARIANTS = [
    ("retry@25% (paper)", None),
    ("negotiate 120s", 120.0),
    ("negotiate 300s", 300.0),
    ("negotiate 600s", 600.0),
]
_rows: dict[str, list] = {}


def run_variant(timeout):
    system = BatchSystem(
        15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
    )
    make_esp_workload(
        120, dynamic=True, seed=2014, negotiation_timeout=timeout
    ).submit_to(system)
    system.run(max_events=5_000_000)
    return system


@pytest.mark.benchmark(group="ablation-negotiation")
@pytest.mark.parametrize("label,timeout", VARIANTS, ids=[v[0] for v in VARIANTS])
def test_negotiation_variant(benchmark, label, timeout):
    system = benchmark.pedantic(run_variant, args=(timeout,), rounds=1, iterations=1)
    m = system.metrics()
    assert m.completed_jobs == 230
    _rows[label] = [
        label,
        m.satisfied_dyn_jobs,
        f"{m.workload_time_minutes:.1f}",
        f"{100 * m.utilization:.1f}",
        f"{m.mean_turnaround:.0f}",
    ]
    if len(_rows) == len(VARIANTS):
        register_report(
            "Ablation — negotiation protocol vs fixed retry (Section III-C outlook)",
            render_table(
                ["Protocol", "Satisfied", "Time[min]", "Util[%]", "Mean turnaround[s]"],
                [_rows[label] for label, _ in VARIANTS],
            )
            + "\n  note: a negotiated request is granted the moment resources"
            "\n  free up inside its window, instead of probing the queue at"
            "\n  two fixed fractions of the static execution time.",
        )
