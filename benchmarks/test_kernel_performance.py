"""Simulator kernel micro-benchmarks.

Not a paper artifact — these guard the performance of the data structures
everything else sits on (the "measure before optimising" discipline): event
throughput of the engine, availability-profile queries at realistic
breakpoint counts, and the full-iteration cost of the scheduler on a deep
queue.
"""

import pytest

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import AvailabilityProfile
from repro.maui.config import MauiConfig
from repro.sim.engine import Engine
from repro.system import BatchSystem
from repro.apps.synthetic import FixedRuntimeApp
from repro.jobs.job import Job


@pytest.mark.benchmark(group="kernel")
def test_engine_event_throughput(benchmark):
    """Schedule + dispatch 10k events."""

    def run_events():
        engine = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            engine.at(float(i % 100), tick)
        engine.run()
        return count

    assert benchmark(run_events) == 10_000


@pytest.mark.benchmark(group="kernel")
def test_profile_earliest_fit_under_load(benchmark):
    """earliest_fit over a profile with ~200 breakpoints on 15 nodes."""
    nodes = list(range(15))
    base = AvailabilityProfile(nodes, {i: 8 for i in nodes}, 0.0, {i: 8 for i in nodes})
    for k in range(100):
        node = k % 15
        start = float(k * 13 % 997)
        base.add_claim(start, start + 50.0, Allocation({node: 4}))

    def query():
        prof = base.copy()
        return prof.earliest_fit(ResourceRequest(cores=60), 120.0)

    t, alloc = benchmark(query)
    assert alloc.total_cores == 60


@pytest.mark.benchmark(group="kernel")
def test_scheduler_iteration_deep_queue(benchmark):
    """One full iteration with 60 queued jobs and a loaded machine."""

    def setup():
        system = BatchSystem(
            15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
        )
        # fill the machine
        for i in range(15):
            system.submit(
                Job(request=ResourceRequest(cores=8), walltime=5000.0, user=f"r{i%4}"),
                FixedRuntimeApp(5000.0),
            )
        # deep queue of blocked jobs
        for i in range(60):
            system.submit(
                Job(request=ResourceRequest(cores=32), walltime=600.0, user=f"q{i%6}"),
                FixedRuntimeApp(600.0),
            )
        system.run(until=0.0)
        return (system,), {}

    def iterate(system):
        system.scheduler.iteration()

    benchmark.pedantic(iterate, setup=setup, rounds=10, iterations=1)
