"""Simulator kernel micro-benchmarks.

Not a paper artifact — these guard the performance of the data structures
everything else sits on (the "measure before optimising" discipline): event
throughput of the engine (with and without cancellation churn),
availability-profile queries at realistic breakpoint counts, and the
full-iteration cost of the scheduler on a deep queue with the profile
cache on and off, and the event-driven activation's skip rate on a
timer-driven system.  Each test records its headline number into
the bench snapshot via :func:`benchmarks.conftest.record_bench`.
"""

import pytest

from benchmarks.conftest import record_bench
from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import AvailabilityProfile
from repro.maui.config import MauiConfig
from repro.sim.engine import Engine
from repro.system import BatchSystem
from repro.apps.synthetic import FixedRuntimeApp
from repro.jobs.job import Job


@pytest.mark.benchmark(group="kernel")
def test_engine_event_throughput(benchmark):
    """Schedule + dispatch 10k events."""

    def run_events():
        engine = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            engine.at(float(i % 100), tick)
        engine.run()
        return count

    assert benchmark(run_events) == 10_000
    record_bench(
        "kernel", "engine_event_throughput",
        wall_seconds=benchmark.stats.stats.mean,
        events=10_000,
        events_per_second=10_000 / benchmark.stats.stats.mean,
    )


@pytest.mark.benchmark(group="kernel")
def test_engine_cancel_churn(benchmark):
    """Schedule/cancel/replace 10k events — the walltime-limit pattern.

    Every processed event cancels a pending "limit" and schedules a new
    one, exactly what job completions do to their walltime enforcement
    events.  Tombstone compaction keeps the heap bounded; this bench
    guards the amortised cost of that lazy purge.
    """

    def churn():
        engine = Engine()
        pending = []

        def tick():
            if pending:
                pending.pop(0).cancel()
            pending.append(engine.at(engine.now + 1000.0, lambda: None))

        for i in range(10_000):
            engine.at(float(i), tick)
        engine.run(until=10_000.0)
        return engine.heap_size

    heap_size = benchmark(churn)
    assert heap_size < 10_000  # compaction actually ran
    record_bench(
        "kernel", "engine_cancel_churn",
        wall_seconds=benchmark.stats.stats.mean,
        events=10_000,
        final_heap_size=heap_size,
    )


@pytest.mark.benchmark(group="kernel")
def test_profile_earliest_fit_under_load(benchmark):
    """earliest_fit over a profile with ~200 breakpoints on 15 nodes."""
    nodes = list(range(15))
    base = AvailabilityProfile(nodes, {i: 8 for i in nodes}, 0.0, {i: 8 for i in nodes})
    for k in range(100):
        node = k % 15
        start = float(k * 13 % 997)
        base.add_claim(start, start + 50.0, Allocation({node: 4}))

    def query():
        prof = base.copy()
        return prof.earliest_fit(ResourceRequest(cores=60), 120.0)

    t, alloc = benchmark(query)
    assert alloc.total_cores == 60
    record_bench(
        "kernel", "profile_earliest_fit",
        wall_seconds=benchmark.stats.stats.mean,
        breakpoints=200,
    )


def _loaded_system(shards: int | None = None) -> BatchSystem:
    config = MauiConfig(reservation_depth=5, reservation_delay_depth=5)
    if shards is not None:
        config = MauiConfig(
            reservation_depth=5, reservation_delay_depth=5, scheduler_shards=shards
        )
    system = BatchSystem(15, 8, config)
    # fill the machine
    for i in range(15):
        system.submit(
            Job(request=ResourceRequest(cores=8), walltime=5000.0, user=f"r{i%4}"),
            FixedRuntimeApp(5000.0),
        )
    # deep queue of blocked jobs
    for i in range(60):
        system.submit(
            Job(request=ResourceRequest(cores=32), walltime=600.0, user=f"q{i%6}"),
            FixedRuntimeApp(600.0),
        )
    system.run(until=0.0)
    return system


@pytest.mark.benchmark(group="kernel")
@pytest.mark.parametrize("cache", [True, False], ids=["cache-on", "cache-off"])
def test_scheduler_iteration_deep_queue(benchmark, cache):
    """One full iteration with 60 queued jobs and a loaded machine."""

    def setup():
        system = _loaded_system()
        system.scheduler.profile_cache_enabled = cache
        return (system,), {}

    def iterate(system):
        system.scheduler.iteration()

    benchmark.pedantic(iterate, setup=setup, rounds=50, warmup_rounds=2, iterations=1)
    record_bench(
        "kernel",
        f"scheduler_iteration_deep_queue_{'cache_on' if cache else 'cache_off'}",
        wall_seconds=benchmark.stats.stats.mean,
        queued_jobs=60,
    )


@pytest.mark.benchmark(group="kernel")
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_scheduler_iteration_deep_queue_sharded(benchmark, shards):
    """The deep-queue iteration against shard-sized profile matrices.

    Same stimulus as :func:`test_scheduler_iteration_deep_queue` (cache
    on), but the static pass runs per shard: planning and backfill scans
    touch matrices of ~15/N nodes instead of 15, and quiescent shards are
    skipped outright on echo wake-ups.  The headline sharding number —
    compare against the single-matrix ``scheduler_iteration_deep_queue_
    cache_on`` baseline (330 µs in BENCH_PR7).
    """

    def setup():
        return (_loaded_system(shards=shards),), {}

    def iterate(system):
        system.scheduler.iteration()

    benchmark.pedantic(iterate, setup=setup, rounds=50, warmup_rounds=2, iterations=1)
    record_bench(
        "kernel",
        f"scheduler_iteration_deep_queue_shards{shards}",
        wall_seconds=benchmark.stats.stats.mean,
        queued_jobs=60,
        shards=shards,
    )


@pytest.mark.benchmark(group="kernel")
def test_scheduler_iterations_skipped(benchmark):
    """Timer-driven run: quiescent wake-ups skipped by event-driven activation.

    A 1-second timer on a workload whose state changes every ~500s is the
    worst case the skip logic was built for: nearly every tick finds the
    fingerprint unchanged and must cost O(1) instead of a full planning
    pass.  Records the achieved skip ratio alongside the wall clock.
    """

    def run_timer_system():
        system = BatchSystem(4, 8, MauiConfig(timer_interval=1.0))
        for i in range(8):
            system.submit(
                Job(request=ResourceRequest(cores=8), walltime=600.0, user=f"u{i%3}"),
                FixedRuntimeApp(500.0 + 10.0 * i),
            )
        system.run(until=5_000.0)
        return dict(system.scheduler.stats)

    stats = benchmark(run_timer_system)
    assert stats["iterations_skipped"] > 0
    assert stats["iterations"] + stats["iterations_skipped"] >= 5_000
    record_bench(
        "kernel", "scheduler_iterations_skipped",
        wall_seconds=benchmark.stats.stats.mean,
        iterations=stats["iterations"],
        iterations_skipped=stats["iterations_skipped"],
        skip_ratio=stats["iterations_skipped"]
        / (stats["iterations"] + stats["iterations_skipped"]),
    )


@pytest.mark.benchmark(group="kernel")
def test_profile_build_cached_vs_fresh(benchmark):
    """_build_profile hit rate: repeated calls within one settled state."""
    system = _loaded_system()
    scheduler = system.scheduler
    partitions = None

    def build():
        return scheduler._build_profile(partitions)

    build()  # warm the cache entry
    hits_before = scheduler.stats["profile_cache_hits"]
    benchmark(build)
    assert scheduler.stats["profile_cache_hits"] > hits_before
    record_bench(
        "kernel", "profile_build_cached",
        wall_seconds=benchmark.stats.stats.mean,
    )


@pytest.mark.benchmark(group="kernel")
@pytest.mark.parametrize("mode", ["calendar", "heap"])
def test_engine_dispatch_mode(benchmark, mode):
    """Forced calendar vs forced heap on the dense 10k-event stimulus.

    The adaptive engine picks between these two structures at runtime;
    this pair pins each one's cost on the same workload so a regression
    in either (or in the batched same-timestamp drain specifically) shows
    up even when the auto mode happens to mask it.
    """

    def run_events():
        engine = Engine(queue=mode)
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            engine.at(float(i % 100), tick)
        engine.run()
        assert engine.queue_mode == mode
        return count

    assert benchmark(run_events) == 10_000
    record_bench(
        "kernel", f"engine_dispatch_{mode}",
        wall_seconds=benchmark.stats.stats.mean,
        events=10_000,
        events_per_second=10_000 / benchmark.stats.stats.mean,
    )


@pytest.mark.benchmark(group="kernel")
@pytest.mark.parametrize(
    "incremental", [True, False], ids=["incremental", "scratch"]
)
def test_profile_maintenance(benchmark, incremental):
    """Availability-profile refresh: incremental advance vs scratch rebuild.

    With incremental maintenance on, a refresh advances the previous
    profile to the current time and applies the active-job footprint
    delta; with it off, every refresh replays all running jobs into a
    fresh profile.  The cache is cleared before each call so the
    maintenance path itself is measured, not the cache hit.
    """
    system = _loaded_system()
    scheduler = system.scheduler
    scheduler.profile_incremental_enabled = incremental
    if not incremental:
        scheduler._profile_bases.clear()
    scheduler._build_profile(None)  # seeds the incremental base
    advances_before = scheduler.stats["profile_advances"]

    def refresh():
        scheduler._profile_cache.clear()
        return scheduler._build_profile(None)

    benchmark(refresh)
    if incremental:
        assert scheduler.stats["profile_advances"] > advances_before
        assert scheduler.stats["profile_advance_fallbacks"] == 0
    else:
        assert scheduler.stats["profile_advances"] == advances_before
    record_bench(
        "kernel",
        f"profile_maintenance_{'incremental' if incremental else 'scratch'}",
        wall_seconds=benchmark.stats.stats.mean,
        active_jobs=15,
    )
