"""Ablation — resource sources for dynamic requests (paper Section II-B).

The paper lists four ways to serve a dynamic request: idle resources, a
dedicated partition, stealing from malleable jobs, preempting low-priority
jobs.  This ablation compares idle-only (the paper's evaluated setting)
against preemption-enabled and dedicated-partition variants on the dynamic
ESP workload.
"""

import pytest

from benchmarks.conftest import register_report
from repro.cluster.machine import Cluster
from repro.maui.config import MauiConfig
from repro.metrics.report import render_table
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload

VARIANTS = ["idle-only", "preemption", "partition"]
_rows: dict[str, list] = {}


def run_variant(variant: str):
    if variant == "partition":
        cluster = Cluster.homogeneous(15, 8, dynamic_partition_nodes=1)
        config = MauiConfig(
            reservation_depth=5, reservation_delay_depth=5, use_dynamic_partition=True
        )
        system = BatchSystem(config=config, cluster=cluster)
    else:
        config = MauiConfig(
            reservation_depth=5,
            reservation_delay_depth=5,
            preemption_for_dynamic=(variant == "preemption"),
        )
        system = BatchSystem(15, 8, config)
    make_esp_workload(120, dynamic=True, seed=2014).submit_to(system)
    system.run(max_events=5_000_000)
    return system


@pytest.mark.benchmark(group="ablation-sources")
@pytest.mark.parametrize("variant", VARIANTS)
def test_resource_source_variant(benchmark, variant):
    system = benchmark.pedantic(run_variant, args=(variant,), rounds=1, iterations=1)
    m = system.metrics()
    stats = system.scheduler.stats
    # Z jobs need the full machine: under the partition variant they can
    # never run (the fence excludes static jobs), so completion differs
    if variant == "partition":
        assert m.completed_jobs == 228
    else:
        assert m.completed_jobs == 230
    _rows[variant] = [
        variant,
        m.satisfied_dyn_jobs,
        stats["preemptions"],
        f"{m.workload_time_minutes:.1f}",
        f"{100 * m.utilization:.1f}",
    ]
    if len(_rows) == len(VARIANTS):
        register_report(
            "Ablation — resource sources for dynamic requests (Section II-B)",
            render_table(
                ["Variant", "Satisfied", "Preemptions", "Time[min]", "Util[%]"],
                [_rows[v] for v in VARIANTS],
            )
            + "\n  note: the partition variant fences one node from static jobs;"
            "\n  full-machine Z jobs can then never start (they stay queued),"
            "\n  illustrating the paper's argument against static fencing.",
        )
