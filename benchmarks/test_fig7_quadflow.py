"""Fig. 7 — Quadflow per-phase execution times (static 16/32, dynamic 16→32)."""

import pytest

from benchmarks.conftest import register_report
from repro.apps.quadflow import CYLINDER, FLAT_PLATE
from repro.experiments.fig7 import render_fig7, run_fig7, run_quadflow_case


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("case", [FLAT_PLATE, CYLINDER], ids=lambda c: c.name)
def test_fig7_dynamic_run(benchmark, case):
    run = benchmark(run_quadflow_case, case, dynamic=True, start_nodes=2)
    static16 = run_quadflow_case(case, dynamic=False, start_nodes=2)
    saving = (static16.total - run.total) / static16.total
    expected = {"FlatPlate": 0.17, "Cylinder": 0.333}[case.name]
    assert saving == pytest.approx(expected, abs=0.01)
    benchmark.extra_info["saving_pct"] = round(100 * saving, 1)


@pytest.mark.benchmark(group="fig7")
def test_fig7_all_bars(benchmark):
    runs = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    assert len(runs) == 6
    # paper: identical time to the final adaptation on 16 vs 32 cores
    for case_name in ("FlatPlate", "Cylinder"):
        s16 = next(r for r in runs if r.case == case_name and r.label == "static-16")
        s32 = next(r for r in runs if r.case == case_name and r.label == "static-32")
        assert sum(s16.phase_times[:-1]) == pytest.approx(sum(s32.phase_times[:-1]))
    register_report("Fig. 7 — Quadflow execution times by adaptation phase", render_fig7(runs))
