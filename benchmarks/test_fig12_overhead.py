"""Fig. 12 — overhead of dynamic allocation of 1-10 nodes.

This is the one experiment whose *measured quantity is wall-clock time*, so
pytest-benchmark is the measurement instrument itself: each benchmark times
the scheduler's dynamic-request path (allocation search + profile build +
delay measurement + fairness check + grant) on a freshly prepared scenario.
"""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.fig12 import measure_overhead, render_fig12, setup_overhead_scenario
from repro.metrics.report import render_table


@pytest.mark.benchmark(group="fig12-empty")
@pytest.mark.parametrize("nodes", [1, 2, 4, 6, 8, 10])
def test_fig12_overhead_empty(benchmark, nodes):
    def setup():
        probe = setup_overhead_scenario(loaded=False)
        return (probe,), {}

    def request(probe):
        return probe.request(nodes)

    benchmark.pedantic(request, setup=setup, rounds=10, iterations=1)


@pytest.mark.benchmark(group="fig12-loaded")
@pytest.mark.parametrize("nodes", [1, 2, 4, 6, 8, 10])
def test_fig12_overhead_loaded(benchmark, nodes):
    def setup():
        probe = setup_overhead_scenario(loaded=True)
        return (probe,), {}

    def request(probe):
        return probe.request(nodes)

    benchmark.pedantic(request, setup=setup, rounds=10, iterations=1)


@pytest.mark.benchmark(group="fig12")
def test_fig12_shape(benchmark):
    def curves():
        rows = []
        for nodes in range(1, 11):
            empty = min(measure_overhead(nodes, loaded=False) for _ in range(3))
            loaded = min(measure_overhead(nodes, loaded=True) for _ in range(3))
            rows.append({"nodes": nodes, "empty_ms": empty * 1e3, "loaded_ms": loaded * 1e3})
        return rows

    rows = benchmark.pedantic(curves, rounds=1, iterations=1)
    # paper shape: sub-second everywhere; delay measurement makes the loaded
    # case consistently more expensive
    assert all(r["empty_ms"] < 1000 and r["loaded_ms"] < 1000 for r in rows)
    assert sum(r["loaded_ms"] for r in rows) > sum(r["empty_ms"] for r in rows)
    register_report("Fig. 12 — dynamic allocation overhead (wall-clock)", render_fig12(rows))
