"""Fig. 11 — waiting times: Static vs Dyn-HP vs Dyn-600."""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.fig11 import render_fig11, run_fig11
from repro.experiments.runner import run_esp_configuration_cached


@pytest.mark.benchmark(group="fig11")
def test_fig11_wait_comparison(benchmark):
    results, rows = benchmark.pedantic(run_fig11, kwargs={"seed": 2014}, rounds=1, iterations=1)
    assert len(rows) == 230
    # the moderate policy recovers most of Dyn-HP's system performance …
    hp = run_esp_configuration_cached("Dyn-HP", seed=2014).metrics
    dyn600 = run_esp_configuration_cached("Dyn-600", seed=2014).metrics
    static = run_esp_configuration_cached("Static", seed=2014).metrics
    assert dyn600.workload_time < static.workload_time
    gap_to_hp = dyn600.workload_time - hp.workload_time
    gap_static_hp = static.workload_time - hp.workload_time
    assert gap_to_hp <= 0.6 * gap_static_hp
    register_report("Fig. 11 — waiting times: Static vs Dyn-HP vs Dyn-600", render_fig11(2014))
