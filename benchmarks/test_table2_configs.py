"""Table II — the four evaluation configurations over the dynamic ESP workload.

One benchmark per configuration (full 230-job simulation each); the summary
prints the reproduced Table II next to the paper's reference values and
asserts the qualitative orderings the paper reports.
"""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.configs import all_configurations
from repro.experiments.runner import run_esp_configuration
from repro.experiments.table2 import render_table2, run_table2

CONFIGS = {c.name: c for c in all_configurations()}


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("name", list(CONFIGS))
def test_table2_configuration(benchmark, name):
    result = benchmark.pedantic(
        run_esp_configuration, args=(CONFIGS[name],), rounds=3, iterations=1
    )
    m = result.metrics
    assert m.completed_jobs == 230
    ref = CONFIGS[name].paper_reference
    # shape check per row: utilization within a few points of the paper
    assert abs(100 * m.utilization - ref["util_pct"]) < 8.0
    benchmark.extra_info.update(
        time_min=round(m.workload_time_minutes, 2),
        satisfied=m.satisfied_dyn_jobs,
        util_pct=round(100 * m.utilization, 2),
    )


@pytest.mark.benchmark(group="table2")
def test_table2_full_campaign(benchmark):
    results = benchmark.pedantic(run_table2, kwargs={"seed": 2014}, rounds=1, iterations=1)
    by_name = {r.name: r.metrics for r in results}
    # the paper's qualitative orderings
    assert by_name["Dyn-HP"].workload_time < by_name["Static"].workload_time
    assert by_name["Static"].utilization < by_name["Dyn-500"].utilization
    assert by_name["Dyn-500"].utilization <= by_name["Dyn-600"].utilization
    assert by_name["Dyn-600"].utilization <= by_name["Dyn-HP"].utilization
    assert by_name["Dyn-HP"].satisfied_dyn_jobs == 43  # paper: 43/69
    register_report(
        "Table II — performance comparison of the evaluation configurations",
        render_table2(results),
    )
