"""Ablation — static priority policies under the dynamic workload.

The paper runs ESP with FIFO-ish priorities (its focus is the *dynamic*
fairness layer); Maui's factor model offers more.  This ablation replays the
dynamic ESP workload under different priority weightings and reports system
metrics plus the per-user wait-fairness index — showing how the static
priority layer and the paper's dynamic layer compose.
"""

import pytest

from benchmarks.conftest import register_report
from repro.maui.config import MauiConfig, PriorityWeightsConfig
from repro.metrics.report import render_table
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload

POLICIES = {
    "FIFO (paper)": PriorityWeightsConfig(queue_time=1.0),
    "XFactor": PriorityWeightsConfig(queue_time=0.0, expansion_factor=100.0),
    "Fairshare": PriorityWeightsConfig(queue_time=1.0, fairshare=5000.0),
    "Wide-first": PriorityWeightsConfig(queue_time=1.0, service=100.0),
}
_rows: dict[str, list] = {}


def run_policy(name: str) -> BatchSystem:
    system = BatchSystem(
        15,
        8,
        MauiConfig(
            reservation_depth=5, reservation_delay_depth=5, weights=POLICIES[name]
        ),
    )
    make_esp_workload(120, dynamic=True, seed=2014).submit_to(system)
    system.run(max_events=5_000_000)
    return system


@pytest.mark.benchmark(group="ablation-priority")
@pytest.mark.parametrize("name", list(POLICIES))
def test_priority_policy(benchmark, name):
    system = benchmark.pedantic(run_policy, args=(name,), rounds=1, iterations=1)
    m = system.metrics()
    assert m.completed_jobs == 230
    _rows[name] = [
        name,
        f"{m.workload_time_minutes:.1f}",
        m.satisfied_dyn_jobs,
        f"{100 * m.utilization:.1f}",
        f"{m.mean_wait:.0f}",
        f"{m.wait_fairness_index:.3f}",
    ]
    if len(_rows) == len(POLICIES):
        register_report(
            "Ablation — static priority policies under the dynamic ESP workload",
            render_table(
                ["Policy", "Time[min]", "Satisfied", "Util[%]", "Mean wait[s]", "Wait fairness (Jain)"],
                [_rows[n] for n in POLICIES],
            ),
        )
