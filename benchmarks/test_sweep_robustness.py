"""Robustness sweep — Table II over many workload orders.

The paper reports a single run per configuration; the exact ESP submission
order is unpublished.  This bench quantifies which qualitative claims are
robust to the order draw and which are single-run artefacts.
"""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.sweep import render_sweep, run_seed_sweep

SEEDS = [1, 2, 3, 7, 42, 99, 1234, 2014]


@pytest.mark.benchmark(group="sweep")
def test_seed_sweep_robustness(benchmark):
    result = benchmark.pedantic(
        run_seed_sweep, kwargs={"seeds": SEEDS}, rounds=1, iterations=1
    )
    # the headline claim must be order-robust: dynamic beats static on
    # utilization in the overwhelming majority of orders
    frac = result.ordering_holds("util_pct", "Dyn-HP", "Static", larger_is_better=True)
    assert frac >= 0.75
    # and satisfied dynamic jobs are always zero for Static, positive otherwise
    assert all(s["satisfied"] == 0 for s in result.samples["Static"])
    assert all(s["satisfied"] > 0 for s in result.samples["Dyn-HP"])
    register_report(
        "Robustness — Table II across workload orders", render_sweep(result)
    )
