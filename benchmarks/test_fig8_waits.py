"""Fig. 8 — per-job waiting times: Static vs Dynamic-HP."""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.fig8 import CONFIGS, render_fig8, run_fig8


@pytest.mark.benchmark(group="fig8")
def test_fig8_wait_comparison(benchmark):
    results, rows = benchmark.pedantic(run_fig8, kwargs={"seed": 2014}, rounds=1, iterations=1)
    assert len(rows) == 230
    delayed = [
        r for r in rows
        if r["Static"] is not None and r["Dyn-HP"] is not None
        and r["Dyn-HP"] > r["Static"] + 1.0
    ]
    improved = [
        r for r in rows
        if r["Static"] is not None and r["Dyn-HP"] is not None
        and r["Dyn-HP"] < r["Static"] - 1.0
    ]
    # the paper's signature shape: a contiguous band of mid-submission jobs
    # waits longer under Dyn-HP while the majority improves
    assert len(delayed) > 10
    assert len(improved) > len(delayed)
    hp, static = (next(r for r in results if r.name == n) for n in ("Dyn-HP", "Static"))
    assert hp.metrics.mean_wait < static.metrics.mean_wait
    register_report("Fig. 8 — waiting times: Static vs Dyn-HP", render_fig8(2014))
