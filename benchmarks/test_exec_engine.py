"""Exec engine — sweep wall-clock, serial vs process-parallel.

Runs a reduced seed sweep (one configuration slice of the grid per seed)
both in-process and through a 2-worker process pool, recording honest wall
clocks into the bench snapshot.  There is deliberately no speedup
assertion: on a single-CPU container the pool *cannot* win (it pays fork +
pickle overhead for zero extra parallelism), and the snapshot's
``cpu_count`` field — the affinity-mask count, not the installed count —
is what makes the two numbers comparable across machines.  Determinism —
the part that must hold everywhere — is asserted here and, exhaustively,
in ``tests/test_exec_determinism.py``.
"""

import pytest

from benchmarks.conftest import record_bench, usable_cpu_count
from repro.experiments.sweep import run_seed_sweep

SEEDS = [1, 2014]


@pytest.mark.slow
@pytest.mark.benchmark(group="exec")
@pytest.mark.parametrize("workers", [1, 2], ids=["serial", "2-workers"])
def test_sweep_wall_clock(benchmark, workers):
    result = benchmark.pedantic(
        run_seed_sweep, args=(SEEDS,), kwargs={"workers": workers},
        rounds=1, iterations=1,
    )
    assert sorted(result.samples) == ["Dyn-500", "Dyn-600", "Dyn-HP", "Static"]
    assert all(len(rows) == len(SEEDS) for rows in result.samples.values())
    usable = usable_cpu_count()
    values = dict(
        wall_seconds=benchmark.stats.stats.mean,
        runs=4 * len(SEEDS),
        workers=workers,
        usable_cpus=usable,
    )
    if workers > usable:
        # make the snapshot self-explanatory: this row measured pool
        # overhead, not parallel speedup
        values["note"] = (
            f"only {usable} usable CPU(s): {workers} workers cannot "
            "run concurrently, wall clock includes fork+pickle overhead"
        )
    record_bench("exec", f"seed_sweep_workers_{workers}", **values)
