"""Ablation — ReservationDelayDepth (the paper's new scheduler knob).

The depth controls how many StartLater jobs have their delays measured per
dynamic request: deeper means better-informed fairness decisions at a higher
per-request cost (the trade Fig. 5 and Section III-C discuss).
"""

import pytest

from benchmarks.conftest import register_report
from repro.experiments.configs import ESPConfiguration
from repro.experiments.runner import run_esp_configuration
from repro.maui.config import DFSConfig, MauiConfig
from repro.metrics.report import render_table

DEPTHS = [1, 3, 5, 10]
_rows: dict[int, list] = {}


def config_with_depth(depth: int) -> ESPConfiguration:
    # reservation_depth is held at 1 so plan_depth == reservation_delay_depth:
    # the ablation isolates the delay-measurement knob from backfill policy
    return ESPConfiguration(
        name=f"Dyn-500/depth{depth}",
        maui=MauiConfig(
            reservation_depth=1,
            reservation_delay_depth=depth,
            dfs=DFSConfig.target_delay_for_all(500.0),
        ),
        dynamic_workload=True,
    )


@pytest.mark.benchmark(group="ablation-depth")
@pytest.mark.parametrize("depth", DEPTHS)
def test_reservation_delay_depth(benchmark, depth):
    result = benchmark.pedantic(
        run_esp_configuration, args=(config_with_depth(depth),), rounds=1, iterations=1
    )
    m = result.metrics
    assert m.completed_jobs == 230
    _rows[depth] = [
        depth,
        m.satisfied_dyn_jobs,
        result.scheduler_stats["dyn_rejected_fairness"],
        f"{m.workload_time_minutes:.1f}",
        f"{100 * m.utilization:.1f}",
        f"{1e3 * result.scheduler_stats['dyn_handle_seconds'] / max(1, result.scheduler_stats['dyn_granted'] + result.scheduler_stats['dyn_rejected']):.2f}",
    ]
    if len(_rows) == len(DEPTHS):
        register_report(
            "Ablation — ReservationDelayDepth under Dyn-500",
            render_table(
                ["Depth", "Satisfied", "Fairness rejects", "Time[min]", "Util[%]", "ms/request"],
                [_rows[d] for d in DEPTHS],
            ),
        )
