"""Observability layer: live metrics, span tracing, streaming trace pipeline.

The paper's whole evaluation is observations of scheduler behaviour; this
package makes those observations *live* instead of post-mortem:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  histograms updated by the server, scheduler and cluster as they work;
* :class:`~repro.obs.sampler.PeriodicSampler` — sim-time-driven time series
  (utilization, queue depth, DFS ledger levels);
* :class:`~repro.obs.tracing.SpanTracer` — wall-clock profiling of
  scheduler iterations and dynamic-request servicing (live Fig. 12 data);
* :mod:`~repro.obs.exporters` — JSONL trace streaming and the Prometheus
  text exposition format;
* :class:`~repro.obs.telemetry.Telemetry` — the facade bundling the above,
  passed to :class:`~repro.system.BatchSystem`.

See ``docs/OBSERVABILITY.md`` for the instrument catalogue and formats.
"""

from repro.obs.exporters import (
    JsonlTraceWriter,
    export_jsonl,
    iter_jsonl,
    read_jsonl,
    to_prometheus_text,
)
from repro.obs.ledger import Decision, DecisionKind, DecisionLedger
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sampler import PeriodicSampler
from repro.obs.telemetry import DEFAULT_SAMPLE_INTERVAL, Telemetry
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "Counter",
    "Decision",
    "DecisionKind",
    "DecisionLedger",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicSampler",
    "Span",
    "SpanTracer",
    "Telemetry",
    "DEFAULT_SAMPLE_INTERVAL",
    "JsonlTraceWriter",
    "export_jsonl",
    "iter_jsonl",
    "read_jsonl",
    "to_prometheus_text",
]
