"""Observability layer: live metrics, span tracing, streaming trace pipeline.

The paper's whole evaluation is observations of scheduler behaviour; this
package makes those observations *live* instead of post-mortem:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  histograms updated by the server, scheduler and cluster as they work;
* :class:`~repro.obs.sampler.PeriodicSampler` — sim-time-driven time series
  (utilization, queue depth, DFS ledger levels);
* :class:`~repro.obs.tracing.SpanTracer` — wall-clock profiling of
  scheduler iterations and dynamic-request servicing (live Fig. 12 data);
* :class:`~repro.obs.perf.PhaseProfiler` — phase-level breakdown of
  *where inside* an iteration the wall-clock goes
  (``Telemetry(profiling=True)``);
* :class:`~repro.obs.windows.WindowedMetrics` — bounded-memory streaming
  aggregates over time windows with P² percentile sketches
  (``Telemetry(windows=...)``);
* :mod:`~repro.obs.clock` — the single wall-clock shim every instrument
  reads, freezable in tests;
* :mod:`~repro.obs.exporters` — JSONL trace streaming and the Prometheus
  text exposition format;
* :class:`~repro.obs.telemetry.Telemetry` — the facade bundling the above,
  passed to :class:`~repro.system.BatchSystem`.

See ``docs/OBSERVABILITY.md`` for the instrument catalogue and formats.
"""

from repro.obs.exporters import (
    JsonlTraceWriter,
    export_jsonl,
    iter_jsonl,
    read_jsonl,
    to_prometheus_text,
)
from repro.obs.ledger import Decision, DecisionKind, DecisionLedger
from repro.obs.perf import PhaseProfiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sampler import PeriodicSampler
from repro.obs.telemetry import DEFAULT_SAMPLE_INTERVAL, Telemetry
from repro.obs.tracing import Span, SpanTracer
from repro.obs.windows import P2Quantile, WindowedMetrics

__all__ = [
    "Counter",
    "Decision",
    "DecisionKind",
    "DecisionLedger",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "PeriodicSampler",
    "PhaseProfiler",
    "Span",
    "SpanTracer",
    "Telemetry",
    "WindowedMetrics",
    "DEFAULT_SAMPLE_INTERVAL",
    "JsonlTraceWriter",
    "export_jsonl",
    "iter_jsonl",
    "read_jsonl",
    "to_prometheus_text",
]
