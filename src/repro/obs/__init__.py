"""Observability layer: live metrics, span tracing, streaming trace pipeline.

The paper's whole evaluation is observations of scheduler behaviour; this
package makes those observations *live* instead of post-mortem:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  histograms updated by the server, scheduler and cluster as they work;
* :class:`~repro.obs.sampler.PeriodicSampler` — sim-time-driven time series
  (utilization, queue depth, DFS ledger levels);
* :class:`~repro.obs.tracing.SpanTracer` — wall-clock profiling of
  scheduler iterations and dynamic-request servicing (live Fig. 12 data);
* :class:`~repro.obs.perf.PhaseProfiler` — phase-level breakdown of
  *where inside* an iteration the wall-clock goes
  (``Telemetry(profiling=True)``);
* :class:`~repro.obs.windows.WindowedMetrics` — bounded-memory streaming
  aggregates over time windows with P² percentile sketches
  (``Telemetry(windows=...)``);
* :class:`~repro.obs.fairness.FairnessObservatory` — per-account share
  trajectories, Jain's index and share-error tracking fed by the
  scheduler's fairshare accounting (``Telemetry(fairness=True)``);
* :class:`~repro.obs.slo.SLOEngine` — declarative per-run objectives
  (``p99_wait < 4h``, ``jain >= 0.9``) evaluated as window frames close,
  breaching into the trace and decision ledger (``Telemetry(slo=[...])``);
* :mod:`~repro.obs.clock` — the single wall-clock shim every instrument
  reads, freezable in tests;
* :mod:`~repro.obs.exporters` — JSONL trace streaming and the Prometheus
  text exposition format;
* :class:`~repro.obs.telemetry.Telemetry` — the facade bundling the above,
  passed to :class:`~repro.system.BatchSystem`.

See ``docs/OBSERVABILITY.md`` for the instrument catalogue and formats.
"""

from repro.obs.exporters import (
    JsonlTraceWriter,
    export_jsonl,
    iter_jsonl,
    read_jsonl,
    to_prometheus_text,
)
from repro.obs.fairness import FairnessObservatory, jain_index, principal_of
from repro.obs.ledger import Decision, DecisionKind, DecisionLedger
from repro.obs.perf import PhaseProfiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sampler import PeriodicSampler
from repro.obs.slo import SLObjective, SLOEngine, parse_slo
from repro.obs.telemetry import DEFAULT_SAMPLE_INTERVAL, Telemetry
from repro.obs.tracing import Span, SpanTracer
from repro.obs.windows import GroupStats, P2Quantile, WindowedMetrics

__all__ = [
    "Counter",
    "Decision",
    "DecisionKind",
    "DecisionLedger",
    "FairnessObservatory",
    "Gauge",
    "GroupStats",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "PeriodicSampler",
    "PhaseProfiler",
    "SLOEngine",
    "SLObjective",
    "Span",
    "SpanTracer",
    "Telemetry",
    "WindowedMetrics",
    "jain_index",
    "parse_slo",
    "principal_of",
    "DEFAULT_SAMPLE_INTERVAL",
    "JsonlTraceWriter",
    "export_jsonl",
    "iter_jsonl",
    "read_jsonl",
    "to_prometheus_text",
]
