"""One wall-clock shim for every observability timing site.

Historically each instrument called ``time.perf_counter_ns`` directly
(tracing, the scheduler's iteration timer, the exec-engine progress ETA),
which made wall-clock-dependent behaviour impossible to pin down in tests.
All of them now read through :func:`perf_ns`, and tests can freeze or
script the clock deterministically:

>>> from repro.obs import clock
>>> manual = clock.ManualClock()
>>> clock.set_clock(manual)
>>> clock.perf_ns()
0
>>> manual.advance(2_500)
>>> clock.perf_ns()
2500
>>> clock.reset_clock()

The shim is wall-clock only — *simulation* time stays the engine's
``now`` and is never routed through here.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["perf_ns", "monotonic_s", "set_clock", "reset_clock", "ManualClock"]

_DEFAULT: Callable[[], int] = time.perf_counter_ns

#: the active clock; module-global so the hot-path read is one dict lookup
_clock: Callable[[], int] = _DEFAULT


def perf_ns() -> int:
    """Current wall time in nanoseconds (monotonic; freezable in tests)."""
    return _clock()


def monotonic_s() -> float:
    """Current wall time in seconds, derived from the same clock.

    Derived rather than a second independent source so that freezing the
    clock freezes *all* wall-time observers at once.
    """
    return _clock() / 1e9


def set_clock(fn: Callable[[], int]) -> None:
    """Replace the wall clock (tests only).  ``fn`` returns nanoseconds."""
    global _clock
    if not callable(fn):
        raise TypeError(f"clock must be callable: {fn!r}")
    _clock = fn


def reset_clock() -> None:
    """Restore the real ``time.perf_counter_ns`` clock."""
    global _clock
    _clock = _DEFAULT


class ManualClock:
    """A hand-cranked clock for deterministic timing tests.

    Calling it returns the current reading; :meth:`advance` moves it
    forward.  Install with :func:`set_clock`, remove with
    :func:`reset_clock` (use a try/finally or fixture — the shim is
    process-global).
    """

    __slots__ = ("now_ns",)

    def __init__(self, start_ns: int = 0) -> None:
        self.now_ns = int(start_ns)

    def __call__(self) -> int:
        return self.now_ns

    def advance(self, ns: int) -> None:
        """Move the clock forward by ``ns`` nanoseconds."""
        if ns < 0:
            raise ValueError(f"clock cannot run backwards: {ns}")
        self.now_ns += int(ns)

    def __repr__(self) -> str:
        return f"<ManualClock {self.now_ns}ns>"
