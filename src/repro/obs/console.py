"""Terminal renderers for live-style telemetry views.

Used by the ``repro.cli trace`` / ``timeline`` / ``metrics`` / ``ledger`` /
``why`` subcommands: an event tail (the last N trace events), a unicode
sparkline over a sampled time series (utilization timeline), a
per-principal DFS ledger table, and the decision-ledger views (verdict
tail/summary, per-job wait attribution, causal chains).  Pure functions
over telemetry data — no I/O, golden-output-testable.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.sim.events import TraceEvent, TraceLog

__all__ = [
    "render_event_tail",
    "sparkline",
    "render_series_sparkline",
    "render_ledger_table",
    "render_decision_summary",
    "render_decision_tail",
    "render_attribution",
    "render_causal_chain",
    "render_phase_tree",
    "render_window_table",
    "render_window_percentiles",
    "render_fairness_table",
    "render_group_table",
    "render_slo_summary",
    "render_breach_tail",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_event_tail(trace: TraceLog, n: int = 20) -> str:
    """The newest ``n`` events, one per line, with drop accounting."""
    lines: list[str] = []
    shown: Sequence[TraceEvent] = trace.tail(n)
    hidden = trace.total_recorded - len(shown)
    if hidden > 0:
        dropped_note = f", {trace.dropped} dropped by ring buffer" if trace.dropped else ""
        lines.append(f"... {hidden} earlier events not shown{dropped_note} ...")
    for event in shown:
        payload = ", ".join(f"{k}={v}" for k, v in sorted(event.payload.items()))
        lines.append(f"t={event.time:>12.2f}  {event.kind.value:<24} {payload}")
    if not shown:
        lines.append("(no events recorded)")
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, lo: float | None = None, hi: float | None = None) -> str:
    """Map values onto ▁..█; empty input renders as an empty string."""
    if not len(values):
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    chars = []
    for v in values:
        if span <= 0:
            idx = 0
        else:
            idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1) + 0.5)
        chars.append(_SPARK_CHARS[max(0, min(idx, len(_SPARK_CHARS) - 1))])
    return "".join(chars)


def _downsample(values: Sequence[float], width: int) -> list[float]:
    """Bucket-mean downsampling to at most ``width`` points."""
    if len(values) <= width:
        return list(values)
    out = []
    for i in range(width):
        start = i * len(values) // width
        end = max(start + 1, (i + 1) * len(values) // width)
        bucket = values[start:end]
        out.append(sum(bucket) / len(bucket))
    return out


def render_series_sparkline(
    name: str,
    series: Sequence[tuple[float, float]],
    *,
    width: int = 72,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """A labelled sparkline over a sampled ``(time, value)`` series."""
    if not series:
        return f"{name}: (no samples)"
    values = [v for _, v in series]
    shown = _downsample(values, width)
    t0, t1 = series[0][0], series[-1][0]
    vlo = min(values) if lo is None else lo
    vhi = max(values) if hi is None else hi
    return (
        f"{name}  t=[{t0:.0f}s .. {t1:.0f}s]  "
        f"min={min(values):.2f} max={max(values):.2f} last={values[-1]:.2f}\n"
        f"  [{sparkline(shown, lo=vlo, hi=vhi)}]"
    )


def _decision_line(decision: Mapping) -> str:
    """One decision as a fixed-prefix line; payload keys in sorted order."""
    payload = decision.get("payload", {})
    parts = []
    for key in sorted(payload):
        value = payload[key]
        if key in ("victims", "would_delay"):
            value = f"[{len(value)}]"
        elif isinstance(value, float):
            value = f"{value:.1f}"
        parts.append(f"{key}={value}")
    return (
        f"#{decision['seq']:<5} t={decision['t']:>10.1f}  "
        f"{decision['kind']:<18} {decision['job_id'] or '-':<12} "
        + " ".join(parts)
    )


def render_decision_summary(ledger) -> str:
    """Decision counts per kind plus the grant/delay totals."""
    counts = ledger.summary()
    lines = [f"decision ledger: {len(ledger)} decisions"]
    for kind in sorted(counts):
        lines.append(f"  {kind:<20} {counts[kind]:>6}")
    grants = ledger.grants()
    if grants:
        total = sum(d.payload.get("total_delay", 0.0) for d in grants)
        displaced = sum(len(d.payload.get("displaced_rigid", [])) for d in grants)
        lines.append(
            f"  {len(grants)} grants inflicted {total:.1f}s of planned delay "
            f"on {displaced} rigid-job placements"
        )
    return "\n".join(lines)


def render_decision_tail(ledger, n: int = 20) -> str:
    """The newest ``n`` decisions, one per line."""
    decisions = list(ledger)[-n:]
    hidden = len(ledger) - len(decisions)
    lines = [f"... {hidden} earlier decisions not shown ..."] if hidden else []
    for decision in decisions:
        lines.append(_decision_line(decision.to_dict()))
    if not decisions:
        lines.append("(no decisions recorded)")
    return "\n".join(lines)


def render_attribution(attribution: Mapping | None) -> str:
    """A job's wait decomposition as an indented component table.

    The component seconds (including every per-grant ``dyn_inflicted``
    charge) sum exactly to the displayed wait — that invariant is the whole
    point of the attribution engine, so the renderer shows the sum check.
    """
    if attribution is None:
        return "(no wait attribution recorded for this job)"
    lines = [
        f"{attribution['job_id']}: submitted t={attribution['submitted']:.1f}"
        + (
            f", started t={attribution['started']:.1f}"
            if attribution["started"] is not None
            else ", still queued"
        )
        + f", wait {attribution['wait']:.1f}s"
    ]
    components = attribution["components"]
    dyn = attribution["dyn_inflicted"]
    for name in sorted(components):
        lines.append(f"  {name:<24} {components[name]:>12.1f}s")
    for grant_id in dyn:
        label = f"dyn_inflicted[{grant_id}]"
        lines.append(f"  {label:<24} {dyn[grant_id]:>12.1f}s")
    total = sum(components.values()) + sum(dyn.values())
    lines.append(f"  {'= total':<24} {total:>12.1f}s")
    return "\n".join(lines)


def render_causal_chain(chain: Sequence[Mapping]) -> str:
    """Every decision causally involving a job, in decision order."""
    if not chain:
        return "(no decisions involve this job)"
    return "\n".join(_decision_line(d) for d in chain)


def _phase_tree_lines(
    tree: Mapping[str, Mapping],
    lines: list[str],
    depth: int,
    parent_total: float | None,
) -> None:
    order = sorted(tree, key=lambda k: -tree[k]["total_ms"])
    for name in order:
        node = tree[name]
        share = (
            f" {node['total_ms'] / parent_total:>5.1%}"
            if parent_total
            else "      "
        )
        label = "  " * depth + name
        lines.append(
            f"  {label:<34} {node['count']:>8} {node['total_ms']:>12.3f} "
            f"{node['self_ms']:>12.3f}{share}"
        )
        if node["children"]:
            _phase_tree_lines(node["children"], lines, depth + 1, node["total_ms"])


def render_phase_tree(tree: Mapping[str, Mapping]) -> str:
    """The profiler's nested phase tree as an indented fixed-width table.

    One row per phase path: call count, inclusive wall time, self time
    (inclusive minus profiled children) and the share of the parent's
    inclusive time.  Children are sorted by inclusive time, so the hot path
    reads top-to-bottom.
    """
    lines = [
        f"  {'phase':<34} {'count':>8} {'total[ms]':>12} {'self[ms]':>12} share"
    ]
    if not tree:
        lines.append("  (no phases recorded)")
        return "\n".join(lines)
    _phase_tree_lines(dict(tree), lines, 0, None)
    return "\n".join(lines)


def _pct_cols(stat: Mapping) -> list[str]:
    cols = []
    for key in ("mean", "p50", "p90", "p99"):
        value = stat.get(key)
        cols.append("-" if value is None else f"{value:.1f}")
    return cols


def render_window_table(
    windows: Sequence[Mapping],
    *,
    title: str = "windowed aggregates",
) -> str:
    """One row per window: jobs, utilization, wait and slowdown stats."""
    lines = [
        title,
        f"  {'window':>6} {'t0':>10} {'t1':>10} {'jobs':>5} {'util':>6} "
        f"{'wait mean':>10} {'p90':>8} {'bsld mean':>10} {'p90':>8} {'depth':>6}",
    ]
    if not windows:
        lines.append("  (no windows materialised)")
        return "\n".join(lines)
    for w in windows:
        util = w.get("utilization")
        wait, bsld = w.get("wait", {}), w.get("bounded_slowdown", {})
        depth = w.get("queue_depth", {})
        lines.append(
            f"  {w['index']:>6} {w['start']:>10.0f} {w['end']:>10.0f} "
            f"{w['finished']:>5} "
            f"{('-' if util is None else f'{util:.1%}'):>6} "
            f"{(_pct_cols(wait)[0]):>10} {(_pct_cols(wait)[2]):>8} "
            f"{(_pct_cols(bsld)[0]):>10} {(_pct_cols(bsld)[2]):>8} "
            f"{depth.get('max', 0):>6}"
        )
    return "\n".join(lines)


def render_window_percentiles(totals: Mapping) -> str:
    """Whole-run percentile rows from a windows dump's ``totals`` record."""
    lines = [
        "whole-run streaming aggregates (P² sketches):",
        f"  {'metric':<18} {'mean':>10} {'p50':>10} {'p90':>10} {'p99':>10}",
    ]
    for key, label in (("wait", "wait[s]"), ("bounded_slowdown", "bounded slowdown")):
        stat = totals.get(key, {})
        mean, p50, p90, p99 = _pct_cols(stat)
        lines.append(f"  {label:<18} {mean:>10} {p50:>10} {p90:>10} {p99:>10}")
    util = totals.get("utilization")
    if util is not None:
        lines.append(f"  {'utilization':<18} {util:>10.1%}")
    lines.append(
        f"  jobs finished {totals.get('jobs_finished', 0)}, "
        f"completed {totals.get('jobs_completed', 0)}, "
        f"satisfied dyn {totals.get('satisfied_dyn_jobs', 0)}"
    )
    return "\n".join(lines)


def render_fairness_table(
    rows: Sequence[Mapping],
    *,
    title: str = "fairness observatory (per-account shares)",
) -> str:
    """Per-account rows: jobs, used core-seconds, share target vs actual."""
    lines = [
        title,
        f"  {'account':<16} {'jobs':>6} {'core-sec':>12} {'share':>8} "
        f"{'target':>8} {'error':>8} {'mean wait':>10} {'stretch':>8}",
    ]
    if not rows:
        lines.append("  (no usage accrued)")
        return "\n".join(lines)
    for row in rows:
        share = row.get("share")
        target = row.get("target")
        error = row.get("share_error")
        wait = row.get("mean_wait")
        stretch = row.get("mean_stretch")
        lines.append(
            f"  {row['account']:<16} {row.get('jobs', '-'):>6} "
            f"{row['core_seconds']:>12.0f} "
            f"{('-' if share is None else f'{share:.3f}'):>8} "
            f"{('-' if target is None else f'{target:.3f}'):>8} "
            f"{('-' if error is None else f'{error:.3f}'):>8} "
            f"{('-' if wait is None else f'{wait:.1f}'):>10} "
            f"{('-' if stretch is None else f'{stretch:.2f}'):>8}"
        )
    return "\n".join(lines)


def render_group_table(
    groups: Sequence[Mapping],
    *,
    title: str = "per-account distributions (P² sketches)",
) -> str:
    """One row per group: wait/slowdown/stretch means and percentiles."""
    lines = [
        title,
        f"  {'account':<16} {'jobs':>6} {'wait mean':>10} {'p99':>9} "
        f"{'bsld mean':>10} {'p99':>8} {'stretch mean':>13} {'p99':>8}",
    ]
    if not groups:
        lines.append("  (no jobs folded)")
        return "\n".join(lines)
    for g in groups:
        wait, bsld = g.get("wait", {}), g.get("bounded_slowdown", {})
        stretch = g.get("stretch", {})

        def col(stat, key, fmt="{:.1f}"):
            value = stat.get(key)
            return "-" if value is None else fmt.format(value)

        lines.append(
            f"  {g['key']:<16} {g['jobs']:>6} "
            f"{col(wait, 'mean'):>10} {col(wait, 'p99'):>9} "
            f"{col(bsld, 'mean', '{:.2f}'):>10} {col(bsld, 'p99', '{:.2f}'):>8} "
            f"{col(stretch, 'mean', '{:.2f}'):>13} {col(stretch, 'p99', '{:.2f}'):>8}"
        )
    return "\n".join(lines)


def render_slo_summary(summary: Sequence[Mapping]) -> str:
    """Per-objective verdict table (declared order)."""
    lines = [
        "SLO objectives:",
        f"  {'objective':<28} {'evals':>6} {'breaches':>9} {'worst':>12} verdict",
    ]
    if not summary:
        lines.append("  (no objectives declared)")
        return "\n".join(lines)
    for row in summary:
        worst = row.get("worst_value")
        lines.append(
            f"  {row['objective']:<28} {row['evaluations']:>6} "
            f"{row['breaches']:>9} "
            f"{('-' if worst is None else f'{worst:.2f}'):>12} "
            f"{'OK' if row['ok'] else 'BREACHED'}"
        )
    return "\n".join(lines)


def render_breach_tail(breaches: Sequence[Mapping], n: int = 20) -> str:
    """The newest ``n`` SLO breaches, one per line."""
    shown = list(breaches)[-n:]
    hidden = len(breaches) - len(shown)
    lines = [f"... {hidden} earlier breaches not shown ..."] if hidden else []
    for b in shown:
        subject = b.get("job_id") or b.get("job_user") or "-"
        lines.append(
            f"#{b['seq']:<4} window {b['window']:>4} "
            f"[{b['start']:>9.0f},{b['end']:>9.0f})  "
            f"{b['objective']:<26} value={b['value']:.2f} {subject}"
        )
    if not shown:
        lines.append("(no breaches recorded)")
    return "\n".join(lines)


def render_ledger_table(
    snapshot: Mapping[tuple[str, str], float] | Iterable[tuple[tuple[str, str], float]],
    *,
    title: str = "DFS ledger (cumulative delay charged this interval)",
) -> str:
    """Per-principal DFS delay ledger as a fixed-width table."""
    rows = sorted(dict(snapshot).items())
    lines = [title, f"  {'kind':<8} {'principal':<16} {'delay[s]':>12}"]
    if not rows:
        lines.append("  (no delay charged)")
        return "\n".join(lines)
    for (kind, name), delay in rows:
        lines.append(f"  {kind:<8} {name:<16} {delay:>12.1f}")
    return "\n".join(lines)
