"""Terminal renderers for live-style telemetry views.

Used by the ``repro.cli trace`` / ``timeline`` / ``metrics`` subcommands:
an event tail (the last N trace events), a unicode sparkline over a sampled
time series (utilization timeline), and a per-principal DFS ledger table.
Pure functions over telemetry data — no I/O, golden-output-testable.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.sim.events import TraceEvent, TraceLog

__all__ = [
    "render_event_tail",
    "sparkline",
    "render_series_sparkline",
    "render_ledger_table",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def render_event_tail(trace: TraceLog, n: int = 20) -> str:
    """The newest ``n`` events, one per line, with drop accounting."""
    lines: list[str] = []
    shown: Sequence[TraceEvent] = trace.tail(n)
    hidden = trace.total_recorded - len(shown)
    if hidden > 0:
        dropped_note = f", {trace.dropped} dropped by ring buffer" if trace.dropped else ""
        lines.append(f"... {hidden} earlier events not shown{dropped_note} ...")
    for event in shown:
        payload = ", ".join(f"{k}={v}" for k, v in sorted(event.payload.items()))
        lines.append(f"t={event.time:>12.2f}  {event.kind.value:<24} {payload}")
    if not shown:
        lines.append("(no events recorded)")
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, lo: float | None = None, hi: float | None = None) -> str:
    """Map values onto ▁..█; empty input renders as an empty string."""
    if not len(values):
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    chars = []
    for v in values:
        if span <= 0:
            idx = 0
        else:
            idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1) + 0.5)
        chars.append(_SPARK_CHARS[max(0, min(idx, len(_SPARK_CHARS) - 1))])
    return "".join(chars)


def _downsample(values: Sequence[float], width: int) -> list[float]:
    """Bucket-mean downsampling to at most ``width`` points."""
    if len(values) <= width:
        return list(values)
    out = []
    for i in range(width):
        start = i * len(values) // width
        end = max(start + 1, (i + 1) * len(values) // width)
        bucket = values[start:end]
        out.append(sum(bucket) / len(bucket))
    return out


def render_series_sparkline(
    name: str,
    series: Sequence[tuple[float, float]],
    *,
    width: int = 72,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """A labelled sparkline over a sampled ``(time, value)`` series."""
    if not series:
        return f"{name}: (no samples)"
    values = [v for _, v in series]
    shown = _downsample(values, width)
    t0, t1 = series[0][0], series[-1][0]
    vlo = min(values) if lo is None else lo
    vhi = max(values) if hi is None else hi
    return (
        f"{name}  t=[{t0:.0f}s .. {t1:.0f}s]  "
        f"min={min(values):.2f} max={max(values):.2f} last={values[-1]:.2f}\n"
        f"  [{sparkline(shown, lo=vlo, hi=vhi)}]"
    )


def render_ledger_table(
    snapshot: Mapping[tuple[str, str], float] | Iterable[tuple[tuple[str, str], float]],
    *,
    title: str = "DFS ledger (cumulative delay charged this interval)",
) -> str:
    """Per-principal DFS delay ledger as a fixed-width table."""
    rows = sorted(dict(snapshot).items())
    lines = [title, f"  {'kind':<8} {'principal':<16} {'delay[s]':>12}"]
    if not rows:
        lines.append("  (no delay charged)")
        return "\n".join(lines)
    for (kind, name), delay in rows:
        lines.append(f"  {kind:<8} {name:<16} {delay:>12.1f}")
    return "\n".join(lines)
