"""Causal decision ledger with per-job delay attribution.

The paper's headline claim is that DFS policies *bound the delay evolving
grants inflict on queued rigid jobs* (Figs. 8-11).  Aggregate waits cannot
show that causally — this module records a structured, append-only
:class:`Decision` for every scheduler verdict (static start, backfill
placement, reservation create/slide, dynamic grant/deny, throttle
rejection, preemption, walltime-extension verdict), each carrying causal
references: blocking job ids, the DFS policy consulted, and a fingerprint
of the availability-profile state ``(server state version, cluster
version, sim time)`` the verdict was computed against.

On top of the decisions sits a **delay-attribution engine**.  While the
ledger is attached, every scheduler pass classifies each queued job into a
wait cause; the per-job :class:`_WaitTimeline` accumulates the time spent
under each cause, so the segments tile ``[submit, start)`` exactly by
construction.  Grant-time delay measurements (``maui/delay.py``) are
recorded as per-grant charges; :meth:`DecisionLedger.attribution` reports
them verbatim as ``dyn_inflicted[grant_id]`` and carves the charged total
out of the time-based components in a fixed order, adding a signed
``plan_drift`` correction when the realized schedule beat the grant-time
plan — the components therefore sum *exactly* to the measured wait, and
the per-grant totals reconcile with what ``measure_delays`` reported when
the grant was made.

Contract (same as the rest of ``repro.obs``): off by default —
``Telemetry(decision_ledger=True)`` opts in, every scheduler hook site is
a single ``self._ledger is not None`` check, and the disabled path stays
inside the benchmarked 5 % overhead budget
(``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.sim.events import EventKind, TraceEvent, TraceLog

__all__ = [
    "Decision",
    "DecisionKind",
    "DecisionLedger",
    "load_ledger_jsonl",
    "ATTRIBUTION_EPSILON",
]

#: attribution exactness tolerance (matches the DFS fairness epsilon)
ATTRIBUTION_EPSILON = 1e-9

#: wait-cause buckets the dyn-inflicted total is carved out of, in order:
#: plain queueing first, then reservation waits, then policy blocks — hold
#: and dependency time is never attributable to a dynamic grant
_CARVE_ORDER = ("queued_behind", "reservation_held", "backfill_blocked", "throttled")


class DecisionKind(enum.Enum):
    """Taxonomy of scheduler verdicts the ledger records."""

    STATIC_START = "static_start"
    BACKFILL_START = "backfill_start"
    RESERVATION_CREATE = "reservation_create"
    RESERVATION_SLIDE = "reservation_slide"
    DYN_GRANT = "dyn_grant"
    DYN_DENY = "dyn_deny"
    DYN_DEFER = "dyn_defer"
    EXTENSION_GRANT = "extension_grant"
    EXTENSION_DENY = "extension_deny"
    THROTTLE_REJECT = "throttle_reject"
    PREEMPTION = "preemption"
    NODE_FAILURE_REQUEUE = "node_failure_requeue"
    SLO_BREACH = "slo_breach"


@dataclass(frozen=True, slots=True)
class Decision:
    """One scheduler verdict: what was decided, about whom, and why.

    ``payload`` is a plain JSON-serialisable dict so the ledger exports
    through the existing JSONL pipeline unchanged.
    """

    seq: int
    time: float
    kind: DecisionKind
    job_id: str | None
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.time,
            "kind": self.kind.value,
            "job_id": self.job_id,
            "payload": self.payload,
        }

    def __repr__(self) -> str:
        return f"<Decision #{self.seq} {self.kind.value} {self.job_id} @{self.time:.1f}>"


class _WaitTimeline:
    """Per-job wait accounting: contiguous cause-labelled segments.

    ``advance(now, cause)`` charges ``[last_time, now)`` to the *previous*
    cause and switches to the new one; ``close`` charges the final segment
    at start.  Preemption folds the lost run into a ``requeued`` segment
    and reopens, so after the final start the segments still telescope to
    ``final_start - submit`` exactly.
    """

    __slots__ = ("submitted", "segments", "last_time", "cause", "started_at", "open")

    def __init__(self, submitted: float) -> None:
        self.submitted = submitted
        self.segments: dict[str, float] = {}
        self.last_time = submitted
        self.cause = "queued_behind"
        self.started_at: float | None = None
        self.open = True

    def _charge(self, upto: float) -> None:
        dt = upto - self.last_time
        if dt > 0:
            self.segments[self.cause] = self.segments.get(self.cause, 0.0) + dt
        self.last_time = upto

    def advance(self, now: float, cause: str) -> None:
        if not self.open:
            return
        self._charge(now)
        self.cause = cause

    def close(self, now: float) -> None:
        if self.open:
            self._charge(now)
            self.open = False
        self.started_at = now

    def reopen(self, now: float, cause: str = "requeued") -> None:
        """Preempted at ``now``: count the lost run as requeue-flavoured wait.

        ``cause`` names *why* the job was requeued — the generic
        ``requeued`` for scheduler-initiated preemptions, or
        ``node_failure_requeued`` when a NODE_FAIL event took the job's
        allocation down.  Either way the segment telescopes into the same
        reconciliation sum.
        """
        if self.started_at is not None:
            dt = now - self.started_at
            if dt > 0:
                self.segments[cause] = self.segments.get(cause, 0.0) + dt
        self.last_time = now
        self.cause = "queued_behind"
        self.started_at = None
        self.open = True


class DecisionLedger:
    """Append-only decision log + per-job wait attribution.

    Created by ``Telemetry(decision_ledger=True)``; ``BatchSystem`` calls
    :meth:`attach_trace` so wait timelines follow the job lifecycle events
    (submit/start/preempt — including server-initiated preemptions that
    never pass through the scheduler) and every decision is mirrored as an
    :class:`~repro.sim.events.EventKind` ``DECISION`` trace event, which
    makes the existing JSONL exporters carry the ledger for free.
    """

    def __init__(self, *, registry=None) -> None:
        self._decisions: list[Decision] = []
        self._timelines: dict[str, _WaitTimeline] = {}
        #: per-job list of (grant_id, delay) charges from grant-time measurement
        self._charges: dict[str, list[tuple[str, float]]] = {}
        #: per-grant total delay as measured when the grant was made
        self._grant_totals: dict[str, float] = {}
        #: decisions causally referencing a job (as subject or as victim)
        self._chain: dict[str, list[Decision]] = {}
        self._reservations: dict[str, float] = {}
        self._throttle_state: dict[str, str] = {}
        self._trace: TraceLog | None = None
        #: most recent NODE_FAIL still owed PREEMPT correlations:
        #: (time, node, job ids not yet seen preempting).  The server
        #: records NODE_FAIL *before* the per-job PREEMPT events, all at
        #: the same timestamp, so subscription order correlates them.
        self._node_fail: tuple[float, Any, set[str]] | None = None
        self._registry = registry
        self._kind_counters: dict[DecisionKind, Any] = {}
        self._inflicted_counter = None
        self._closed_counter = None
        if registry is not None:
            self._inflicted_counter = registry.counter(
                "repro_ledger_dyn_inflicted_seconds_total",
                "Delay inflicted on planned queued jobs by dynamic grants [s]",
            )
            self._closed_counter = registry.counter(
                "repro_ledger_waits_closed_total",
                "Wait timelines closed (jobs started with full attribution)",
            )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_trace(self, trace: TraceLog) -> None:
        """Subscribe to the trace for lifecycle events and decision mirroring."""
        if self._trace is trace:
            return
        self._trace = trace
        trace.subscribe(self._on_trace_event)

    def _on_trace_event(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind is EventKind.JOB_SUBMIT:
            self._timelines[event.payload["job_id"]] = _WaitTimeline(event.time)
        elif kind is EventKind.JOB_START or kind is EventKind.BACKFILL_START:
            timeline = self._timelines.get(event.payload["job_id"])
            if timeline is not None:
                timeline.close(event.time)
                if self._closed_counter is not None:
                    self._closed_counter.inc()
        elif kind is EventKind.NODE_FAIL:
            affected = event.payload.get("affected") or []
            if affected:
                self._node_fail = (
                    event.time,
                    event.payload.get("node"),
                    set(affected),
                )
        elif kind is EventKind.PREEMPT:
            job_id = event.payload["job_id"]
            cause = "requeued"
            pending = self._node_fail
            if (
                pending is not None
                and pending[0] == event.time
                and job_id in pending[2]
            ):
                # this preemption is the failure fan-out, not a scheduler
                # decision: attribute the renewed wait to the NODE_FAIL
                cause = "node_failure_requeued"
                pending[2].discard(job_id)
                if not pending[2]:
                    self._node_fail = None
            timeline = self._timelines.get(job_id)
            if timeline is not None:
                if cause == "node_failure_requeued":
                    lost = (
                        event.time - timeline.started_at
                        if timeline.started_at is not None
                        else 0.0
                    )
                    self._record(
                        DecisionKind.NODE_FAILURE_REQUEUE,
                        event.time,
                        job_id,
                        {"node": pending[1], "lost_seconds": lost},
                    )
                timeline.reopen(event.time, cause=cause)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(
        self, kind: DecisionKind, time: float, job_id: str | None, payload: dict
    ) -> Decision:
        decision = Decision(len(self._decisions) + 1, time, kind, job_id, payload)
        self._decisions.append(decision)
        if job_id is not None:
            self._chain.setdefault(job_id, []).append(decision)
        if self._registry is not None:
            counter = self._kind_counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    "repro_ledger_decisions_total",
                    "Scheduler verdicts recorded in the decision ledger",
                    labels={"kind": kind.value},
                )
                self._kind_counters[kind] = counter
            counter.inc()
        if self._trace is not None:
            self._trace.record(
                time,
                EventKind.DECISION,
                decision=kind.value,
                seq=decision.seq,
                job_id=job_id,
                **payload,
            )
        return decision

    def observe_queue(
        self, now: float, classification: dict[str, tuple[str, str | None]]
    ) -> None:
        """One scheduler pass classified every still-queued job.

        Advances each job's wait timeline to ``now`` under its new cause and
        records a ``throttle_reject`` decision on each throttle *transition*
        (first block, or the binding limit changing) rather than once per
        iteration.
        """
        for job_id, (cause, detail) in classification.items():
            timeline = self._timelines.get(job_id)
            if timeline is None:
                # ledger attached mid-run: open at first sight (attribution
                # then covers [first observation, start) only)
                timeline = self._timelines[job_id] = _WaitTimeline(now)
            timeline.advance(now, cause)
            if cause == "throttled":
                limit = detail or "throttled"
                if self._throttle_state.get(job_id) != limit:
                    self._throttle_state[job_id] = limit
                    self._record(
                        DecisionKind.THROTTLE_REJECT, now, job_id, {"limit": limit}
                    )
            elif job_id in self._throttle_state:
                del self._throttle_state[job_id]

    def note_start(
        self,
        job,
        now: float,
        *,
        backfilled: bool,
        molded: bool,
        cores: int,
        fingerprint: tuple,
        jumped: list[str] | None = None,
        hole_until: float | None = None,
        shard: int | None = None,
    ) -> None:
        """A queued job starts — by priority order or as backfill."""
        self._reservations.pop(job.job_id, None)
        self._throttle_state.pop(job.job_id, None)
        payload: dict[str, Any] = {
            "user": job.user,
            "cores": cores,
            "wait": now - (job.submit_time if job.submit_time is not None else now),
            "molded": molded,
            "profile_fingerprint": list(fingerprint),
        }
        if shard is not None:
            # which scheduler shard planned the start (multi-shard runs
            # only; single-shard payloads stay byte-identical to legacy)
            payload["shard"] = shard
        if backfilled:
            # the hole: which higher-priority jobs were jumped, and until
            # when the backfilled job provably stays out of their way
            payload["jumped"] = list(jumped or [])
            payload["hole_until"] = hole_until
        self._record(
            DecisionKind.BACKFILL_START if backfilled else DecisionKind.STATIC_START,
            now,
            job.job_id,
            payload,
        )

    def note_reservation(
        self,
        job,
        now: float,
        start: float,
        cores: int,
        waiting_on: list[str],
        fingerprint: tuple,
        shard: int | None = None,
    ) -> None:
        """A blocked job received a reservation; dedup create vs slide."""
        previous = self._reservations.get(job.job_id)
        self._reservations[job.job_id] = start
        if previous is not None and abs(previous - start) <= ATTRIBUTION_EPSILON:
            return
        payload: dict[str, Any] = {
            "user": job.user,
            "start": start,
            "cores": cores,
            "waiting_on": waiting_on,
            "profile_fingerprint": list(fingerprint),
        }
        if shard is not None:
            payload["shard"] = shard
        if previous is None:
            self._record(DecisionKind.RESERVATION_CREATE, now, job.job_id, payload)
        else:
            payload["previous_start"] = previous
            payload["slide"] = start - previous
            self._record(DecisionKind.RESERVATION_SLIDE, now, job.job_id, payload)

    def note_dyn_grant(
        self,
        dreq,
        now: float,
        *,
        cores: int,
        victims,
        charged: float,
        policy: str,
        reason: str,
        fingerprint: tuple,
        preempted: list[str] | None = None,
        extension: float | None = None,
    ) -> str:
        """A dynamic (or walltime-extension) request was granted.

        Records the grant decision with the rigid jobs it displaces and
        charges each victim's measured delay under a fresh ``grant_id`` —
        the unit :meth:`attribution` later reports ``dyn_inflicted`` by.
        """
        from repro.jobs.job import JobFlexibility

        grant_id = f"grant.{len(self._grant_totals) + 1}"
        delayed = [v for v in victims if v.delay > ATTRIBUTION_EPSILON]
        total_delay = sum(v.delay for v in delayed)
        payload: dict[str, Any] = {
            "grant_id": grant_id,
            "user": dreq.job.user,
            "cores": cores,
            "policy": policy,
            "reason": reason,
            "charged": charged,
            "total_delay": total_delay,
            "victims": [
                {
                    "job_id": v.job.job_id,
                    "user": v.job.user,
                    "delay": v.delay,
                    "rigid": v.job.flexibility is JobFlexibility.RIGID,
                    "planned_start": v.planned_start,
                    "delayed_start": v.delayed_start,
                }
                for v in delayed
            ],
            "displaced_rigid": [
                v.job.job_id
                for v in delayed
                if v.job.flexibility is JobFlexibility.RIGID
            ],
            "profile_fingerprint": list(fingerprint),
        }
        if preempted:
            payload["preempted"] = list(preempted)
        if extension is not None:
            payload["walltime_extension"] = extension
        kind = DecisionKind.EXTENSION_GRANT if extension is not None else DecisionKind.DYN_GRANT
        decision = self._record(kind, now, dreq.job.job_id, payload)
        self._grant_totals[grant_id] = total_delay
        for victim in delayed:
            self._charges.setdefault(victim.job.job_id, []).append(
                (grant_id, victim.delay)
            )
            self._chain.setdefault(victim.job.job_id, []).append(decision)
        if self._inflicted_counter is not None and total_delay > 0:
            self._inflicted_counter.inc(total_delay)
        return grant_id

    def note_dyn_deny(
        self,
        dreq,
        now: float,
        *,
        reason: str,
        deny_kind: str,
        victims,
        policy: str,
        fingerprint: tuple,
    ) -> None:
        """A dynamic (or extension) request was rejected."""
        delayed = [v for v in victims if v.delay > ATTRIBUTION_EPSILON]
        payload: dict[str, Any] = {
            "user": dreq.job.user,
            "reason": reason,
            "deny_kind": deny_kind,
            "policy": policy,
            "would_delay": [
                {"job_id": v.job.job_id, "delay": v.delay} for v in delayed
            ],
            "profile_fingerprint": list(fingerprint),
        }
        kind = (
            DecisionKind.EXTENSION_DENY
            if dreq.is_extension
            else DecisionKind.DYN_DENY
        )
        self._record(kind, now, dreq.job.job_id, payload)

    def note_dyn_defer(self, dreq, now: float, *, estimate: float) -> None:
        """A negotiated request was deferred with an availability estimate."""
        self._record(
            DecisionKind.DYN_DEFER,
            now,
            dreq.job.job_id,
            {"user": dreq.job.user, "estimate": estimate, "deadline": dreq.deadline},
        )

    def note_slo_breach(
        self, now: float, job_id: str | None, payload: dict
    ) -> Decision:
        """A declared SLO failed for a closed window (repro.obs.slo).

        ``job_id`` anchors the breach causally — the window's worst-wait
        job for latency objectives, None for fairness-level ones — so
        ``causal_chain``/``why`` can explain a breach the same way they
        explain a wait.
        """
        return self._record(DecisionKind.SLO_BREACH, now, job_id, payload)

    def note_preemption(self, victim, displaced_by, now: float, cores: int) -> None:
        """A backfilled job is preempted to serve a dynamic request."""
        self._record(
            DecisionKind.PREEMPTION,
            now,
            victim.job_id,
            {
                "user": victim.user,
                "cores": cores,
                "displaced_by": displaced_by.job_id,
                "displaced_by_user": displaced_by.user,
            },
        )

    # ------------------------------------------------------------------
    # attribution & causal chains
    # ------------------------------------------------------------------
    def attribution(self, job_id: str, upto: float | None = None) -> dict | None:
        """Decompose a job's wait into named components summing to the wait.

        Components: the timeline buckets (``queued_behind``,
        ``reservation_held``, ``backfill_blocked``, ``throttled``, holds,
        ``dependency_held``, ``requeued``, ``node_failure_requeued``)
        with the dyn-inflicted total
        carved out in ``_CARVE_ORDER``, plus ``dyn_inflicted[grant_id]``
        entries echoing the grant-time measurements, plus a signed
        ``plan_drift`` correction when the measured plan delay exceeds the
        carveable realized wait.  ``sum(components) + sum(dyn_inflicted)``
        equals the measured wait exactly (up to float associativity,
        well inside 1e-9).  Returns None for unknown jobs; for still-queued
        jobs pass ``upto=now`` to attribute the wait so far.
        """
        timeline = self._timelines.get(job_id)
        if timeline is None:
            return None
        segments = dict(timeline.segments)
        if timeline.open:
            if upto is None:
                return None  # job never started and no horizon given
            extra = upto - timeline.last_time
            if extra > 0:
                segments[timeline.cause] = segments.get(timeline.cause, 0.0) + extra
        dyn: dict[str, float] = {}
        for grant_id, delay in self._charges.get(job_id, ()):
            dyn[grant_id] = dyn.get(grant_id, 0.0) + delay
        inflicted = sum(dyn.values())
        remaining = inflicted
        for bucket in _CARVE_ORDER:
            if remaining <= 0:
                break
            take = min(segments.get(bucket, 0.0), remaining)
            if take > 0:
                segments[bucket] -= take
                remaining -= take
        components = {name: value for name, value in segments.items() if value != 0.0}
        if remaining > 0:
            # the realized schedule beat the grant-time plan: the measured
            # plan delay exceeds the job's attributable wait, so a signed
            # correction keeps the components summing to the real wait
            components["plan_drift"] = -remaining
        wait = sum(components.values()) + inflicted
        return {
            "job_id": job_id,
            "submitted": timeline.submitted,
            "started": timeline.started_at,
            "wait": wait,
            "components": components,
            "dyn_inflicted": dyn,
        }

    def causal_chain(self, job_id: str) -> list[dict]:
        """Every decision causally involving the job, in decision order.

        Includes verdicts *about* the job (its start, its reservations,
        throttle blocks, its preemption) and dynamic grants that listed the
        job as a delay victim.
        """
        return [d.to_dict() for d in self._chain.get(job_id, [])]

    def decisions_for(self, job_id: str) -> list[Decision]:
        """Decisions whose subject is the job (victim links excluded)."""
        return [d for d in self._chain.get(job_id, []) if d.job_id == job_id]

    # ------------------------------------------------------------------
    # queries & export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._decisions)

    def of_kind(self, kind: DecisionKind) -> list[Decision]:
        return [d for d in self._decisions if d.kind is kind]

    def grants(self) -> list[Decision]:
        """All grant decisions (resource and walltime-extension)."""
        return [
            d
            for d in self._decisions
            if d.kind in (DecisionKind.DYN_GRANT, DecisionKind.EXTENSION_GRANT)
        ]

    def grant_total(self, grant_id: str) -> float:
        """Total delay measured for a grant when it was made."""
        return self._grant_totals[grant_id]

    def summary(self) -> dict[str, int]:
        """Decision counts per kind (only kinds that occurred)."""
        counts: dict[str, int] = {}
        for decision in self._decisions:
            counts[decision.kind.value] = counts.get(decision.kind.value, 0) + 1
        return counts

    def most_delayed_job(self) -> str | None:
        """The job with the largest dyn-inflicted total; falls back to the
        worst closed wait when no grant ever delayed anyone."""
        best_id, best_delay = None, 0.0
        for job_id, charges in self._charges.items():
            total = sum(delay for _, delay in charges)
            if total > best_delay:
                best_id, best_delay = job_id, total
        if best_id is not None:
            return best_id
        best_wait = -1.0
        for job_id, timeline in self._timelines.items():
            if timeline.started_at is None:
                continue
            wait = timeline.started_at - timeline.submitted
            if wait > best_wait:
                best_id, best_wait = job_id, wait
        return best_id

    def export_jsonl(self, path: str | Path) -> int:
        """One JSON object per decision; returns the decision count."""
        path = Path(path)
        with path.open("w") as fh:
            for decision in self._decisions:
                fh.write(json.dumps(decision.to_dict()) + "\n")
        return len(self._decisions)

    def __repr__(self) -> str:
        return (
            f"<DecisionLedger {len(self._decisions)} decisions, "
            f"{len(self._grant_totals)} grants, {len(self._timelines)} timelines>"
        )


def load_ledger_jsonl(source: str | Path) -> DecisionLedger:
    """Rebuild a ledger from its :meth:`DecisionLedger.export_jsonl` dump.

    Decisions, causal chains (subject *and* victim links) and the
    per-grant delay charges are all reconstructed, so ``summary()``,
    ``causal_chain()``, ``grants()`` and ``most_delayed_job()`` work
    offline exactly as they do live.  Wait *timelines* are not in the
    dump — they follow the lifecycle trace — so :meth:`attribution`
    returns None for every job; pair the ledger with its trace export
    when attribution is needed.

    Raises :class:`ValueError` (with the offending line number) on a
    malformed row, and whatever ``open`` raises on an unreadable path.
    """
    path = Path(source)
    ledger = DecisionLedger()
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                decision = Decision(
                    seq=int(row["seq"]),
                    time=float(row["t"]),
                    kind=DecisionKind(row["kind"]),
                    job_id=row.get("job_id"),
                    payload=dict(row.get("payload") or {}),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed ledger row ({exc})") from exc
            ledger._decisions.append(decision)
            if decision.job_id is not None:
                ledger._chain.setdefault(decision.job_id, []).append(decision)
            if decision.kind in (DecisionKind.DYN_GRANT, DecisionKind.EXTENSION_GRANT):
                grant_id = decision.payload.get("grant_id")
                if grant_id is not None:
                    ledger._grant_totals[grant_id] = float(
                        decision.payload.get("total_delay", 0.0)
                    )
                    for victim in decision.payload.get("victims", ()):
                        victim_id = victim.get("job_id")
                        if victim_id is None:
                            continue
                        ledger._charges.setdefault(victim_id, []).append(
                            (grant_id, float(victim.get("delay", 0.0)))
                        )
                        if victim_id != decision.job_id:
                            ledger._chain.setdefault(victim_id, []).append(decision)
    return ledger
