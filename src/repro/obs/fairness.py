"""Fairness observatory: per-account share trajectories and Jain's index.

The paper's headline claim is *fair* scheduling, yet the rest of
``repro.obs`` measures speed and causality only.  This module closes that
gap by sampling the fairshare state the scheduler already maintains
incrementally (:class:`repro.maui.priority.FairshareTracker`) into
per-account share-usage time series, and deriving from them:

* **Jain's fairness index** over target-normalized shares,
  ``J = (sum x)^2 / (n * sum x^2)`` with ``x_p = share_p / target_p`` —
  1.0 means every account sits exactly on its target share;
* **max share error**: the worst ``|actual share - target share|``
  across accounts at each sample;
* exact (undecayed) per-account **used core-seconds**, accrued from the
  same usage segments the scheduler charges into the fairshare tracker.

Jobs are keyed by :func:`principal_of`: the job's account unless it is
the ``"default"`` placeholder, else its user — the standard
fairshare-tree defaulting, which makes the observatory meaningful on
workloads that never set accounts (ESP's ``user01``..``user10``, SWF's
``swf_userNNN``) without touching them.

Memory is bounded: the sample series decimates itself (drop every other
point, double the stride) once it reaches ``max_points``, so a 100k-job
replay holds O(accounts + max_points) fairness state — the same
fold-and-discard contract as :mod:`repro.obs.windows`.

Contract (same as the rest of ``repro.obs``): off by default —
``Telemetry(fairness=True)`` opts in, the scheduler hook sites are a
single ``self._fair is not None`` check, and an instrumented run is
bit-identical to a disabled one on ``(submit, start, end, state)``.
"""

from __future__ import annotations

import json
from typing import IO

__all__ = ["FairnessObservatory", "principal_of", "jain_index"]

#: default sim-seconds between share samples (gated on the scheduler's
#: statistics updates, so actual spacing is at least this)
DEFAULT_SAMPLE_INTERVAL = 300.0


def principal_of(job) -> str:
    """The fairness principal a job charges: account, else user.

    ``Job.account`` defaults to the ``"default"`` placeholder; standard
    fairshare-tree semantics fall back to the user in that case, so
    existing workloads group per-user without modification.
    """
    account = job.account
    if account and account != "default":
        return account
    return job.user


def jain_index(values) -> float:
    """Jain's fairness index of a sequence; 1.0 when empty or all zero."""
    total = 0.0
    square = 0.0
    n = 0
    for x in values:
        total += x
        square += x * x
        n += 1
    if n == 0 or square == 0.0:
        return 1.0
    return (total * total) / (n * square)


class FairnessObservatory:
    """Per-account share tracking fed by the scheduler's fairshare hook.

    The scheduler calls :meth:`accrue` for every usage segment it charges
    into the fairshare tracker (exact core-seconds, no decay) and
    :meth:`sample` after each tracker roll; sampling is gated by
    ``sample_interval`` in sim-time so hot statistics updates stay cheap.
    """

    def __init__(
        self,
        *,
        registry=None,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        max_points: int = 2048,
        share_targets: dict[str, float] | None = None,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError(f"sample interval must be positive: {sample_interval}")
        if max_points < 2:
            raise ValueError(f"max_points must be at least 2: {max_points}")
        self.sample_interval = float(sample_interval)
        self.max_points = int(max_points)
        #: explicit share weights per principal (normalized over the
        #: principals actually seen); unnamed principals weigh 1.0
        self.share_targets = dict(share_targets) if share_targets else {}
        #: user -> principal mapping learned from accrued jobs
        self._principals: dict[str, str] = {}
        #: exact per-principal core-seconds (no decay — the audit number)
        self.core_seconds: dict[str, float] = {}
        self.accruals = 0
        #: share samples: {"t", "jain", "max_share_error", "shares"} dicts
        #: in sim-time order, self-decimating at ``max_points``
        self.samples: list[dict] = []
        self.decimations = 0
        self._next_sample = 0.0
        self._tracker = None
        self._windows = None
        self.latest: dict | None = None
        self._registry = registry
        self._jain_gauge = None
        self._error_gauge = None
        self._samples_counter = None
        if registry is not None:
            self._jain_gauge = registry.gauge(
                "repro_fairness_jain_index",
                "Jain's fairness index over target-normalized account shares",
            )
            self._error_gauge = registry.gauge(
                "repro_fairness_max_share_error",
                "Worst |actual - target| share across accounts",
            )
            self._samples_counter = registry.counter(
                "repro_fairness_samples_total", "Fairness share samples taken"
            )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_windows(self, windows) -> None:
        """Adopt a grouped WindowedMetrics for per-account job statistics."""
        self._windows = windows

    # ------------------------------------------------------------------
    # scheduler feed
    # ------------------------------------------------------------------
    def accrue(self, job, core_seconds: float) -> None:
        """A usage segment was charged into the fairshare tracker."""
        principal = self._principals.get(job.user)
        if principal is None:
            principal = self._principals[job.user] = principal_of(job)
        self.core_seconds[principal] = (
            self.core_seconds.get(principal, 0.0) + core_seconds
        )
        self.accruals += 1

    def targets(self) -> dict[str, float]:
        """Normalized target share per principal seen so far."""
        principals = sorted(set(self._principals.values()))
        if not principals:
            return {}
        weights = {p: float(self.share_targets.get(p, 1.0)) for p in principals}
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("share targets must have positive total weight")
        return {p: w / total for p, w in weights.items()}

    def compute(self, tracker) -> dict[str, float] | None:
        """Decayed usage share per principal from the fairshare tracker."""
        if not self._principals:
            return None
        usage: dict[str, float] = {}
        for user in sorted(self._principals):
            principal = self._principals[user]
            usage[principal] = usage.get(principal, 0.0) + tracker.usage(user)
        total = sum(usage.values())
        if total > 0:
            return {p: usage[p] / total for p in sorted(usage)}
        return {p: 0.0 for p in sorted(usage)}

    def sample(self, now: float, tracker, *, force: bool = False) -> bool:
        """Take a share sample at sim-time ``now`` (interval-gated)."""
        self._tracker = tracker
        if not force and now < self._next_sample:
            return False
        shares = self.compute(tracker)
        if shares is None:
            return False
        self._next_sample = now + self.sample_interval
        targets = self.targets()
        jain = jain_index(
            shares[p] / targets[p] for p in shares if targets[p] > 0
        )
        max_error = max(abs(shares[p] - targets[p]) for p in shares)
        self.latest = {
            "t": now,
            "jain": jain,
            "max_share_error": max_error,
            "shares": shares,
        }
        self.samples.append(self.latest)
        if len(self.samples) >= self.max_points:
            # fold-and-discard: halve the series, double the stride —
            # deterministic in sim time, memory stays O(max_points)
            del self.samples[1::2]
            self.sample_interval *= 2.0
            self.decimations += 1
        if self._registry is not None:
            self._jain_gauge.set(jain)
            self._error_gauge.set(max_error)
            self._samples_counter.inc()
            for principal in shares:
                self._registry.gauge(
                    "repro_fairness_share",
                    "Account share of decayed fairshare usage",
                    labels={"account": principal},
                ).set(shares[principal])
                self._registry.gauge(
                    "repro_fairness_share_target",
                    "Normalized target share for the account",
                    labels={"account": principal},
                ).set(targets[principal])
        return True

    def finalize(self, now: float) -> None:
        """Force a final sample at run end (no-op before any accrual)."""
        if self._tracker is not None:
            self.sample(now, self._tracker, force=True)

    # ------------------------------------------------------------------
    # queries & export
    # ------------------------------------------------------------------
    @property
    def principals(self) -> list[str]:
        """All principals seen, sorted."""
        return sorted(set(self._principals.values()))

    def account_rows(self) -> list[dict]:
        """Per-account summary rows (the `metrics` CLI table).

        Merges exact core-seconds and the latest share/target with the
        grouped window statistics when a grouped
        :class:`~repro.obs.windows.WindowedMetrics` is attached.
        """
        targets = self.targets()
        shares = (self.latest or {}).get("shares", {})
        groups = self._windows.groups if self._windows is not None else {}
        rows = []
        for principal in self.principals:
            row = {
                "account": principal,
                "core_seconds": self.core_seconds.get(principal, 0.0),
                "share": shares.get(principal),
                "target": targets.get(principal),
            }
            if row["share"] is not None and row["target"] is not None:
                row["share_error"] = abs(row["share"] - row["target"])
            group = groups.get(principal)
            if group is not None:
                row["jobs"] = group.jobs
                row["completed"] = group.completed
                row["mean_wait"] = group.wait.mean
                row["mean_stretch"] = group.stretch.mean
            rows.append(row)
        return rows

    def summary(self) -> dict:
        """Whole-run fairness summary (from the latest sample)."""
        latest = self.latest or {}
        return {
            "accounts": len(self.principals),
            "accruals": self.accruals,
            "samples": len(self.samples),
            "decimations": self.decimations,
            "jain": latest.get("jain"),
            "max_share_error": latest.get("max_share_error"),
            "total_core_seconds": sum(self.core_seconds.values()),
        }

    def export_jsonl(self, fp: IO[str]) -> int:
        """Dump meta + summary + per-account rows + share samples."""
        lines = [
            {
                "kind": "meta",
                "schema": "repro-fairness/1",
                "sample_interval": self.sample_interval,
                "max_points": self.max_points,
                "targets": {
                    k: self.share_targets[k] for k in sorted(self.share_targets)
                },
            },
            {"kind": "summary", **self.summary()},
        ]
        lines.extend({"kind": "account", **row} for row in self.account_rows())
        lines.extend({"kind": "sample", **sample} for sample in self.samples)
        for line in lines:
            fp.write(json.dumps(line, separators=(",", ":")) + "\n")
        return len(lines)

    def __repr__(self) -> str:
        return (
            f"<FairnessObservatory accounts={len(self.principals)} "
            f"samples={len(self.samples)} accruals={self.accruals}>"
        )
