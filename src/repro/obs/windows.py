"""Streaming windowed metrics: bounded-memory aggregation of long replays.

Every aggregator in :mod:`repro.metrics` retains one :class:`JobRecord`
per job, so memory grows linearly with trace length — fine for the 230-job
ESP workload, fatal for million-job archive replays (ROADMAP item 1).
This module folds each *completed* job into running aggregates at the
moment it finishes and never looks at it again:

* **tumbling or sliding windows** over simulation time for utilization,
  waiting time, bounded slowdown and queue depth (``stride == width``
  gives tumbling windows; ``stride < width`` overlapping sliding ones);
* **P² streaming quantile sketches** (Jain & Chlamtac, CACM 1985) for
  percentiles without retaining samples — five markers per quantile;
* whole-run running totals designed to agree with the retained-job
  :class:`~repro.metrics.collector.WorkloadMetrics` to 1e-9 on workloads
  where every job completes (verified on Table II in the test suite).

With ``Server.attach_windows(..., fold_and_discard=True)`` the server
additionally drops each folded job from its ``jobs`` index once the
scheduler has accrued its final fairshare segment, so a replay holds
O(windows) memory instead of O(jobs).
"""

from __future__ import annotations

import json
import math
from typing import IO, Callable

__all__ = ["P2Quantile", "StreamingStat", "WindowFrame", "GroupStats",
           "WindowedMetrics", "read_windows_jsonl"]


class P2Quantile:
    """P² single-quantile estimator: O(1) memory, no retained samples.

    Maintains five markers whose heights approximate the ``p`` quantile;
    below five observations the exact value is interpolated from the
    buffered samples, so small streams are exact.
    """

    __slots__ = ("p", "_buf", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {p}")
        self.p = float(p)
        self._buf: list[float] | None = []
        self._q: list[float] = []
        self._n: list[float] = []
        self._np: list[float] = []
        self._dn: list[float] = []

    @property
    def count(self) -> int:
        if self._buf is not None:
            return len(self._buf)
        return int(self._n[4]) + 1

    def observe(self, x: float) -> None:
        x = float(x)
        buf = self._buf
        if buf is not None:
            buf.append(x)
            if len(buf) == 5:
                buf.sort()
                p = self.p
                self._q = buf
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
                self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
                self._buf = None
            return
        q, n, np_, dn = self._q, self._n, self._np, self._dn
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            if x > q[4]:
                q[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 5):
                if x < q[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            np_[i] += dn[i]
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if d >= 0.0 else -1.0
                candidate = self._parabolic(i, sign)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any observation)."""
        if self._buf is not None:
            buf = sorted(self._buf)
            if not buf:
                return math.nan
            if len(buf) == 1:
                return buf[0]
            h = (len(buf) - 1) * self.p
            lo = int(h)
            hi = min(lo + 1, len(buf) - 1)
            return buf[lo] + (h - lo) * (buf[hi] - buf[lo])
        return self._q[2]

    def __repr__(self) -> str:
        return f"<P2Quantile p={self.p} n={self.count} value={self.value:.4g}>"


class StreamingStat:
    """Running count/sum/min/max — the retained-list replacement."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {"count": self.count, "mean": self.mean,
                "min": self.min, "max": self.max}


class WindowFrame:
    """Aggregates for one time window ``[start, end)``."""

    __slots__ = (
        "index", "start", "end", "finished", "completed",
        "wait", "slowdown", "wait_sketches", "slowdown_sketches",
        "busy_core_seconds", "depth_integral", "depth_max",
        "worst_wait", "worst_wait_job", "worst_wait_user", "worst_wait_submit",
    )

    def __init__(self, index: int, start: float, end: float,
                 quantiles: tuple[float, ...]) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.finished = 0
        self.completed = 0
        self.wait = StreamingStat()
        self.slowdown = StreamingStat()
        self.wait_sketches = {q: P2Quantile(q) for q in quantiles}
        self.slowdown_sketches = {q: P2Quantile(q) for q in quantiles}
        self.busy_core_seconds = 0.0
        self.depth_integral = 0.0
        self.depth_max = 0
        #: the job whose wait dominated this window — the causal subject
        #: SLO breach decisions anchor to (``repro.obs.slo``).  The id is
        #: the in-run ledger key; user + submit are the process-stable
        #: identity deterministic exports use (job ids come from a
        #: process-global counter, so they vary with worker layout)
        self.worst_wait = -math.inf
        self.worst_wait_job: str | None = None
        self.worst_wait_user: str | None = None
        self.worst_wait_submit: float | None = None

    def to_dict(self, total_cores: int | None) -> dict:
        width = self.end - self.start
        out = {
            "kind": "window",
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "finished": self.finished,
            "completed": self.completed,
            "wait": self.wait.as_dict(),
            "bounded_slowdown": self.slowdown.as_dict(),
            "busy_core_seconds": self.busy_core_seconds,
            "queue_depth": {
                "time_mean": self.depth_integral / width if width else 0.0,
                "max": self.depth_max,
            },
        }
        out["wait"].update(_sketch_values(self.wait_sketches))
        out["bounded_slowdown"].update(_sketch_values(self.slowdown_sketches))
        if total_cores:
            out["utilization"] = self.busy_core_seconds / (total_cores * width)
        return out


def _sketch_values(sketches: dict[float, P2Quantile]) -> dict[str, float]:
    out = {}
    for q, sketch in sketches.items():
        v = sketch.value
        out[f"p{round(q * 100):02d}"] = None if math.isnan(v) else v
    return out


class GroupStats:
    """Whole-run per-group (account) aggregates: the fairness dimension.

    One instance per group key (account, falling back to user — see
    :func:`repro.obs.fairness.principal_of`), holding streaming wait,
    bounded-slowdown and stretch statistics with P² percentile sketches.
    Memory is O(groups), never O(jobs) — the fold-and-discard contract
    extends to the group dimension unchanged.
    """

    __slots__ = ("key", "jobs", "completed", "wait", "slowdown", "stretch",
                 "wait_sketches", "slowdown_sketches", "stretch_sketches")

    def __init__(self, key: str, quantiles: tuple[float, ...]) -> None:
        self.key = key
        self.jobs = 0
        self.completed = 0
        self.wait = StreamingStat()
        self.slowdown = StreamingStat()
        self.stretch = StreamingStat()
        self.wait_sketches = {q: P2Quantile(q) for q in quantiles}
        self.slowdown_sketches = {q: P2Quantile(q) for q in quantiles}
        self.stretch_sketches = {q: P2Quantile(q) for q in quantiles}

    def fold(self, wait: float, slowdown: float, stretch: float,
             completed: bool) -> None:
        self.jobs += 1
        if completed:
            self.completed += 1
        self.wait.add(wait)
        self.slowdown.add(slowdown)
        self.stretch.add(stretch)
        for sketch in self.wait_sketches.values():
            sketch.observe(wait)
        for sketch in self.slowdown_sketches.values():
            sketch.observe(slowdown)
        for sketch in self.stretch_sketches.values():
            sketch.observe(stretch)

    def to_dict(self) -> dict:
        out = {
            "kind": "group",
            "key": self.key,
            "jobs": self.jobs,
            "completed": self.completed,
            "wait": self.wait.as_dict(),
            "bounded_slowdown": self.slowdown.as_dict(),
            "stretch": self.stretch.as_dict(),
        }
        out["wait"].update(_sketch_values(self.wait_sketches))
        out["bounded_slowdown"].update(_sketch_values(self.slowdown_sketches))
        out["stretch"].update(_sketch_values(self.stretch_sketches))
        return out


class WindowedMetrics:
    """Folds completed jobs and resource telemetry into time windows.

    Tumbling by default; pass ``stride < width`` for sliding windows (a
    point then lands in ``ceil(width / stride)`` overlapping windows).
    Windows with no activity are never materialised, so memory is
    proportional to *active* windows, and closed windows are plain
    aggregate frames — no job objects are retained anywhere.
    """

    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

    def __init__(
        self,
        width: float,
        *,
        stride: float | None = None,
        total_cores: int | None = None,
        slowdown_tau: float = 10.0,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        group_by: str | Callable | None = None,
    ) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        stride = width if stride is None else float(stride)
        if not 0 < stride <= width:
            raise ValueError(f"stride must be in (0, width]: {stride}")
        self.width = float(width)
        self.stride = stride
        self.total_cores = total_cores
        self.slowdown_tau = float(slowdown_tau)
        self.quantiles = tuple(sorted(set(float(q) for q in quantiles)))
        #: the group-by-account dimension: a job attribute name or a
        #: callable ``job -> key``; None keeps folding ungrouped
        self._group_key: Callable | None = None
        if group_by is not None:
            self.set_group_by(group_by)
        self.groups: dict[str, GroupStats] = {}
        #: called with each :class:`WindowFrame` as it closes (sorted by
        #: window index) — the SLO engine's evaluation hook
        self.on_frame_close: Callable | None = None
        #: open frames keyed by window index (window k spans
        #: ``[k*stride, k*stride + width)``)
        self._open: dict[int, WindowFrame] = {}
        self.closed: list[WindowFrame] = []
        self._frontier = 0.0
        # whole-run totals -------------------------------------------------
        self.jobs_finished = 0
        self.jobs_completed = 0
        self.evolving_jobs = 0
        self.satisfied_dyn_jobs = 0
        self.first_submit = math.inf
        self.last_end = -math.inf
        self.wait = StreamingStat()
        self.slowdown = StreamingStat()
        self.turnaround = StreamingStat()
        self.wait_sketches = {q: P2Quantile(q) for q in self.quantiles}
        self.slowdown_sketches = {q: P2Quantile(q) for q in self.quantiles}
        # busy-core integral (mirrors Telemetry's, fed from the same hook)
        self._busy_t = 0.0
        self._busy_val = 0
        self.busy_core_seconds = 0.0
        # queue-depth integral
        self._depth_t = 0.0
        self._depth_val = 0
        self.depth_integral = 0.0
        self.depth_max = 0

    def set_capacity(self, total_cores: int) -> None:
        """Installed cores, needed for utilization (wired at attach)."""
        self.total_cores = int(total_cores)

    def set_group_by(self, group_by: str | Callable) -> None:
        """Enable the per-group fold dimension (attribute name or callable)."""
        if callable(group_by):
            self._group_key = group_by
        else:
            attr = str(group_by)
            self._group_key = lambda job: getattr(job, attr)

    @property
    def grouped(self) -> bool:
        return self._group_key is not None

    # ------------------------------------------------------------------
    # window bookkeeping
    # ------------------------------------------------------------------
    def _frames_covering(self, t: float) -> list[WindowFrame]:
        """Open frames whose span contains ``t`` (materialising them)."""
        stride, width = self.stride, self.width
        k_max = int(t // stride)
        k_min = max(0, int(math.floor((t - width) / stride)) + 1)
        frames = []
        for k in range(k_min, k_max + 1):
            start = k * stride
            if not start <= t < start + width:
                continue
            frame = self._open.get(k)
            if frame is None:
                frame = WindowFrame(k, start, start + width, self.quantiles)
                self._open[k] = frame
            frames.append(frame)
        return frames

    def _accrue_span(self, t0: float, t1: float, attr: str, value: float) -> None:
        """Distribute ``value * dt`` of integral over windows in [t0, t1)."""
        if value == 0.0 or t1 <= t0:
            return
        stride, width = self.stride, self.width
        k_min = max(0, int(math.floor((t0 - width) / stride)) + 1)
        k_max = int(t1 // stride)
        for k in range(k_min, k_max + 1):
            start = k * stride
            overlap = min(t1, start + width) - max(t0, start)
            if overlap <= 0:
                continue
            frame = self._open.get(k)
            if frame is None:
                frame = WindowFrame(k, start, start + width, self.quantiles)
                self._open[k] = frame
            setattr(frame, attr, getattr(frame, attr) + value * overlap)

    def _advance(self, t: float) -> None:
        """Move the frontier to ``t``, closing frames safely behind it.

        A frame only closes once *every* lagging integral feed has passed
        its end — the busy/depth integrals accrue spans reaching back to
        their last change, and closing early would let a later span
        re-materialise a duplicate frame for the same window index.
        """
        if t > self._frontier:
            self._frontier = t
        if not self._open:
            return
        safe = min(self._frontier, self._busy_t, self._depth_t)
        done = [k for k, frame in self._open.items() if frame.end <= safe]
        if done:
            cb = self.on_frame_close
            for k in sorted(done):
                frame = self._open.pop(k)
                self.closed.append(frame)
                if cb is not None:
                    cb(frame)

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------
    def reset_busy(self, now: float, busy: int) -> None:
        """(Re)anchor the busy integral; mirrors Telemetry.reset_busy_clock."""
        self._busy_t = float(now)
        self._busy_val = int(busy)
        self.busy_core_seconds = 0.0

    def on_busy_change(self, now: float, busy: int) -> None:
        """Busy-core count changed (fed through Telemetry's cluster hook)."""
        self.busy_core_seconds += self._busy_val * (now - self._busy_t)
        self._accrue_span(self._busy_t, now, "busy_core_seconds", self._busy_val)
        self._busy_t = now
        self._busy_val = busy
        self._advance(now)

    def observe_queue_depth(self, now: float, depth: int) -> None:
        """Queue depth changed at sim-time ``now`` (time-weighted)."""
        self.depth_integral += self._depth_val * (now - self._depth_t)
        self._accrue_span(self._depth_t, now, "depth_integral", self._depth_val)
        self._depth_t = now
        self._depth_val = depth
        if depth > self.depth_max:
            self.depth_max = depth
        if depth > 0:
            for frame in self._frames_covering(now):
                if depth > frame.depth_max:
                    frame.depth_max = depth
        self._advance(now)

    def fold_job(self, job) -> None:
        """Fold a finished job into the aggregates; the job can be dropped.

        Matches the retained-path semantics of
        :class:`~repro.metrics.collector.WorkloadMetrics`: wait counts
        jobs that started, bounded slowdown jobs that started *and*
        ended, both read from the job's final state.
        """
        end = job.end_time
        if end is None:
            raise ValueError(f"{job.job_id} has not finished; cannot fold")
        self._advance(end)
        frames = self._frames_covering(end)
        self.jobs_finished += 1
        completed = job.state.value == "completed"
        if completed:
            self.jobs_completed += 1
        if job.is_evolving:
            self.evolving_jobs += 1
            if job.dyn_granted > 0:
                self.satisfied_dyn_jobs += 1
        submit = job.submit_time if job.submit_time is not None else 0.0
        if submit < self.first_submit:
            self.first_submit = submit
        if end > self.last_end:
            self.last_end = end
        for frame in frames:
            frame.finished += 1
            if completed:
                frame.completed += 1
        start = job.start_time
        if start is None:
            return
        wait = start - submit
        self.wait.add(wait)
        self.turnaround.add(end - submit)
        for sketch in self.wait_sketches.values():
            sketch.observe(wait)
        run = end - start
        slowdown = max(1.0, (wait + run) / max(run, self.slowdown_tau))
        self.slowdown.add(slowdown)
        for sketch in self.slowdown_sketches.values():
            sketch.observe(slowdown)
        for frame in frames:
            frame.wait.add(wait)
            frame.slowdown.add(slowdown)
            for sketch in frame.wait_sketches.values():
                sketch.observe(wait)
            for sketch in frame.slowdown_sketches.values():
                sketch.observe(slowdown)
            if wait > frame.worst_wait:
                frame.worst_wait = wait
                frame.worst_wait_job = job.job_id
                frame.worst_wait_user = getattr(job, "user", None)
                frame.worst_wait_submit = submit
        if self._group_key is not None:
            key = self._group_key(job)
            group = self.groups.get(key)
            if group is None:
                group = GroupStats(key, self.quantiles)
                self.groups[key] = group
            stretch = (wait + run) / max(run, 1.0)
            group.fold(wait, slowdown, stretch, completed)

    # ------------------------------------------------------------------
    # derived whole-run quantities (the equivalence surface)
    # ------------------------------------------------------------------
    @property
    def mean_wait(self) -> float:
        return self.wait.mean

    def mean_bounded_slowdown(self) -> float:
        return self.slowdown.mean if self.slowdown.count else 1.0

    @property
    def mean_turnaround(self) -> float:
        return self.turnaround.mean

    @property
    def workload_time(self) -> float:
        if not self.jobs_finished:
            raise ValueError("no job has been folded yet")
        return self.last_end - self.first_submit

    @property
    def utilization(self) -> float:
        """Busy core-seconds over installed capacity across workload time."""
        if not self.total_cores:
            raise ValueError("total_cores unset; call set_capacity() first")
        busy = self.busy_core_seconds
        if self._busy_val and self.last_end > self._busy_t:
            busy += self._busy_val * (self.last_end - self._busy_t)
        return busy / (self.total_cores * self.workload_time)

    @property
    def frames(self) -> list[WindowFrame]:
        """All materialised frames in window order (closed + open)."""
        return sorted(
            self.closed + list(self._open.values()), key=lambda f: f.index
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def totals_dict(self) -> dict:
        out = {
            "kind": "totals",
            "jobs_finished": self.jobs_finished,
            "jobs_completed": self.jobs_completed,
            "evolving_jobs": self.evolving_jobs,
            "satisfied_dyn_jobs": self.satisfied_dyn_jobs,
            "first_submit": None if math.isinf(self.first_submit) else self.first_submit,
            "last_end": None if math.isinf(self.last_end) else self.last_end,
            "wait": self.wait.as_dict(),
            "bounded_slowdown": self.slowdown.as_dict(),
            "turnaround": self.turnaround.as_dict(),
            "busy_core_seconds": self.busy_core_seconds,
            "queue_depth": {"max": self.depth_max},
        }
        out["wait"].update(_sketch_values(self.wait_sketches))
        out["bounded_slowdown"].update(_sketch_values(self.slowdown_sketches))
        if self.total_cores and self.jobs_finished:
            out["utilization"] = self.utilization
        return out

    def group_totals(self) -> list[dict]:
        """Per-group aggregate dicts in deterministic (sorted-key) order."""
        return [self.groups[k].to_dict() for k in sorted(self.groups)]

    def export_jsonl(self, fp: IO[str]) -> int:
        """Dump meta + totals + one line per window, then per group."""
        lines = [
            {
                "kind": "meta",
                "schema": "repro-windows/1",
                "width": self.width,
                "stride": self.stride,
                "total_cores": self.total_cores,
                "slowdown_tau": self.slowdown_tau,
                "quantiles": list(self.quantiles),
            },
            self.totals_dict(),
        ]
        lines.extend(frame.to_dict(self.total_cores) for frame in self.frames)
        lines.extend(self.group_totals())
        for line in lines:
            fp.write(json.dumps(line, separators=(",", ":")) + "\n")
        return len(lines)

    def __repr__(self) -> str:
        return (
            f"<WindowedMetrics width={self.width:g} stride={self.stride:g} "
            f"windows={len(self.closed) + len(self._open)} "
            f"jobs={self.jobs_finished}>"
        )


def read_windows_jsonl(fp: IO[str]) -> dict:
    """Parse a windows dump into ``{"meta", "totals", "windows", "groups"}``."""
    meta: dict = {}
    totals: dict = {}
    windows: list[dict] = []
    groups: list[dict] = []
    for line in fp:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "meta":
            meta = record
        elif kind == "totals":
            totals = record
        elif kind == "window":
            windows.append(record)
        elif kind == "group":
            groups.append(record)
        else:
            raise ValueError(f"unknown record kind in windows dump: {record!r}")
    if not meta:
        raise ValueError("windows dump has no meta record")
    windows.sort(key=lambda w: w["index"])
    groups.sort(key=lambda g: g["key"])
    return {"meta": meta, "totals": totals, "windows": windows, "groups": groups}
