"""Declarative SLO engine: windowed objectives with causal breach events.

Objectives are declared as plain strings per run::

    p99_wait < 4h
    mean_slowdown <= 3
    utilization >= 0.5
    jain >= 0.9
    share_error < 0.1

and evaluated as each :class:`~repro.obs.windows.WindowFrame` closes
(via ``WindowedMetrics.on_frame_close``).  A failing objective emits an
:class:`~repro.sim.events.EventKind` ``SLO_BREACH`` trace event and — when
the decision ledger is attached — a ``slo_breach`` decision anchored to
the window's worst-wait job, so ``why`` explains a breach through the
same causal chain that explains a wait.

Metric vocabulary (per closed window):

========================= ====================================================
``pNN_wait``              P² wait quantile (NN must be a configured quantile)
``mean_wait``/``max_wait`` streaming wait stats [s]
``pNN_slowdown``          P² bounded-slowdown quantile
``mean_slowdown``         mean bounded slowdown
``utilization``           busy core-seconds over installed capacity
``mean_queue_depth``      time-weighted queue depth
``max_queue_depth``       peak queue depth
``jain``                  Jain's index from the fairness observatory
``share_error``           max |share - target| from the fairness observatory
========================= ====================================================

Thresholds take an optional duration suffix (``s``/``m``/``h``);
``4h`` is 14400 seconds.  Windows with no signal for a metric (no job
finished, fairness not yet sampled) are skipped, not breached.

Contract: off by default — ``Telemetry(slo=[...])`` opts in (requires
``windows=``); evaluation happens at frame close, never on the scheduler
hot path, and an instrumented run stays bit-identical to a disabled one
on ``(submit, start, end, state)``.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from typing import IO

from repro.sim.events import EventKind, TraceLog

__all__ = ["SLObjective", "SLOEngine", "parse_slo"]

_DURATION = {"s": 1.0, "m": 60.0, "h": 3600.0}

_OBJECTIVE_RE = re.compile(
    r"^\s*([a-z_][a-z0-9_]*)\s*(<=|>=|<|>)\s*"
    r"([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([smh]?)\s*$"
)

_QUANTILE_RE = re.compile(r"^p(\d{2})_(wait|slowdown)$")

_SCALAR_METRICS = frozenset(
    {
        "mean_wait",
        "max_wait",
        "mean_slowdown",
        "utilization",
        "mean_queue_depth",
        "max_queue_depth",
        "jain",
        "share_error",
    }
)

#: metrics read from the fairness observatory, not the window frame
_FAIRNESS_METRICS = frozenset({"jain", "share_error"})


@dataclass(frozen=True, slots=True)
class SLObjective:
    """One parsed objective: ``metric op threshold`` in base units."""

    text: str
    metric: str
    op: str
    threshold: float
    #: quantile in (0, 1) for ``pNN_*`` metrics, else None
    quantile: float | None = None

    def holds(self, value: float) -> bool:
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        return value >= self.threshold


def parse_slo(text: str) -> SLObjective:
    """Parse ``"p99_wait < 4h"``-style declarations; raises ValueError."""
    match = _OBJECTIVE_RE.match(text)
    if match is None:
        raise ValueError(
            f"cannot parse SLO {text!r}: expected 'metric op threshold[s|m|h]'"
        )
    metric, op, number, unit = match.groups()
    threshold = float(number) * (_DURATION[unit] if unit else 1.0)
    quantile = None
    qmatch = _QUANTILE_RE.match(metric)
    if qmatch is not None:
        quantile = int(qmatch.group(1)) / 100.0
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"SLO quantile must be in (0, 1): {text!r}")
    elif metric not in _SCALAR_METRICS:
        known = ", ".join(sorted(_SCALAR_METRICS | {"pNN_wait", "pNN_slowdown"}))
        raise ValueError(f"unknown SLO metric {metric!r} in {text!r}; one of: {known}")
    return SLObjective(
        text=" ".join(match.groups()[:3]) + (unit or ""),
        metric=metric,
        op=op,
        threshold=threshold,
        quantile=quantile,
    )


class _ObjectiveState:
    """Per-objective running tally (evaluations, breaches, worst value)."""

    __slots__ = ("objective", "evaluations", "breaches", "worst_value")

    def __init__(self, objective: SLObjective) -> None:
        self.objective = objective
        self.evaluations = 0
        self.breaches = 0
        self.worst_value: float | None = None

    def observe(self, value: float) -> None:
        self.evaluations += 1
        worst = self.worst_value
        # "worst" is the value closest to (or furthest past) the bound:
        # max for upper-bound objectives, min for lower-bound ones
        if self.objective.op in ("<", "<="):
            if worst is None or value > worst:
                self.worst_value = value
        else:
            if worst is None or value < worst:
                self.worst_value = value


class SLOEngine:
    """Evaluates declared objectives as window frames close."""

    def __init__(
        self,
        objectives,
        *,
        registry=None,
        fairness=None,
    ) -> None:
        parsed = [
            obj if isinstance(obj, SLObjective) else parse_slo(obj)
            for obj in objectives
        ]
        if not parsed:
            raise ValueError("SLO engine needs at least one objective")
        self.objectives = parsed
        self._states = [_ObjectiveState(obj) for obj in parsed]
        self.fairness = fairness
        self.breaches: list[dict] = []
        self._windows = None
        self._trace: TraceLog | None = None
        self._ledger = None
        self._evaluated: set[int] = set()
        self._registry = registry
        self._eval_counter = None
        self._breach_counters: dict[str, object] = {}
        if registry is not None:
            self._eval_counter = registry.counter(
                "repro_slo_evaluations_total",
                "SLO objective evaluations over closed windows",
            )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_windows(self, windows) -> None:
        """Hook frame-close evaluation into a WindowedMetrics instance."""
        for obj in self.objectives:
            if obj.quantile is not None and obj.quantile not in windows.quantiles:
                configured = ", ".join(f"{q:g}" for q in windows.quantiles)
                raise ValueError(
                    f"SLO {obj.text!r} needs quantile {obj.quantile:g} but the "
                    f"windows only sketch: {configured}"
                )
        self._windows = windows
        windows.on_frame_close = self._on_frame_close

    def attach_trace(self, trace: TraceLog, *, ledger=None) -> None:
        self._trace = trace
        self._ledger = ledger

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _frame_value(self, obj: SLObjective, frame) -> float | None:
        """The objective's metric for one frame; None when no signal."""
        metric = obj.metric
        if obj.quantile is not None:
            sketches = (
                frame.wait_sketches
                if metric.endswith("_wait")
                else frame.slowdown_sketches
            )
            value = sketches[obj.quantile].value
            return None if math.isnan(value) else value
        if metric == "mean_wait":
            return frame.wait.mean if frame.wait.count else None
        if metric == "max_wait":
            return frame.wait.max if frame.wait.count else None
        if metric == "mean_slowdown":
            return frame.slowdown.mean if frame.slowdown.count else None
        if metric == "utilization":
            total_cores = self._windows.total_cores if self._windows else None
            if not total_cores:
                return None
            width = frame.end - frame.start
            return frame.busy_core_seconds / (total_cores * width)
        if metric == "mean_queue_depth":
            width = frame.end - frame.start
            return frame.depth_integral / width if width else None
        if metric == "max_queue_depth":
            return float(frame.depth_max)
        # fairness metrics: latest observatory sample at frame close
        latest = self.fairness.latest if self.fairness is not None else None
        if latest is None:
            return None
        if metric == "jain":
            return latest["jain"]
        return latest["max_share_error"]

    def _on_frame_close(self, frame) -> None:
        if frame.index in self._evaluated:
            return
        self._evaluated.add(frame.index)
        for state in self._states:
            obj = state.objective
            value = self._frame_value(obj, frame)
            if value is None:
                continue
            state.observe(value)
            if self._eval_counter is not None:
                self._eval_counter.inc()
            if obj.holds(value):
                continue
            state.breaches += 1
            job_id = job_user = job_submit = None
            if obj.metric not in _FAIRNESS_METRICS:
                job_id = frame.worst_wait_job
                job_user = frame.worst_wait_user
                job_submit = frame.worst_wait_submit
            breach = {
                "seq": len(self.breaches) + 1,
                "objective": obj.text,
                "metric": obj.metric,
                "op": obj.op,
                "threshold": obj.threshold,
                "value": value,
                "window": frame.index,
                "start": frame.start,
                "end": frame.end,
                "job_id": job_id,
                "job_user": job_user,
                "job_submit": job_submit,
            }
            self.breaches.append(breach)
            if self._registry is not None:
                counter = self._breach_counters.get(obj.text)
                if counter is None:
                    counter = self._registry.counter(
                        "repro_slo_breaches_total",
                        "SLO breaches per objective",
                        labels={"objective": obj.text},
                    )
                    self._breach_counters[obj.text] = counter
                counter.inc()
            if self._trace is not None:
                self._trace.record(
                    frame.end,
                    EventKind.SLO_BREACH,
                    objective=obj.text,
                    metric=obj.metric,
                    value=value,
                    threshold=obj.threshold,
                    window=frame.index,
                    job_id=job_id,
                )
            if self._ledger is not None:
                self._ledger.note_slo_breach(
                    frame.end,
                    job_id,
                    {
                        "objective": obj.text,
                        "metric": obj.metric,
                        "op": obj.op,
                        "threshold": obj.threshold,
                        "value": value,
                        "window": frame.index,
                        "window_start": frame.start,
                        "window_end": frame.end,
                    },
                )

    def finalize(self, now: float | None = None) -> None:
        """Evaluate still-open frames at run end (idempotent).

        Partial trailing windows carry real jobs; leaving them
        unevaluated would hide breaches in the last ``width`` seconds of
        every run.
        """
        if self._windows is None:
            return
        if self.fairness is not None and now is not None:
            self.fairness.finalize(now)
        for frame in sorted(self._windows._open.values(), key=lambda f: f.index):
            self._on_frame_close(frame)

    # ------------------------------------------------------------------
    # queries & export
    # ------------------------------------------------------------------
    def summary(self) -> list[dict]:
        """Per-objective tallies in declared order."""
        return [
            {
                "objective": state.objective.text,
                "metric": state.objective.metric,
                "op": state.objective.op,
                "threshold": state.objective.threshold,
                "evaluations": state.evaluations,
                "breaches": state.breaches,
                "worst_value": state.worst_value,
                "ok": state.breaches == 0,
            }
            for state in self._states
        ]

    @property
    def breached(self) -> bool:
        return bool(self.breaches)

    def export_jsonl(self, fp: IO[str]) -> int:
        """Dump meta + per-objective summaries + breaches (deterministic)."""
        lines = [
            {
                "kind": "meta",
                "schema": "repro-slo/1",
                "objectives": [obj.text for obj in self.objectives],
            }
        ]
        lines.extend({"kind": "objective", **row} for row in self.summary())
        # the raw job id is a process-global counter value (varies with
        # worker layout); the exported anchor is the deterministic
        # (job_user, job_submit) pair, which is what makes the file
        # byte-identical per seed across serial and -j N runs
        lines.extend(
            {"kind": "breach", **{k: v for k, v in breach.items() if k != "job_id"}}
            for breach in self.breaches
        )
        for line in lines:
            fp.write(json.dumps(line, separators=(",", ":")) + "\n")
        return len(lines)

    def __repr__(self) -> str:
        return (
            f"<SLOEngine objectives={len(self.objectives)} "
            f"breaches={len(self.breaches)}>"
        )
