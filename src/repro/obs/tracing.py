"""Span tracing and wall-clock profiling of scheduler work.

A *span* is one unit of scheduler work — a full scheduling iteration or the
servicing of one dynamic request — annotated with its simulation timestamp,
its wall-clock cost in nanoseconds, and how many trace events it emitted.
This is the Fig. 12 measurement (per-request overhead, empty vs loaded
system) generalised: every instrumented run yields the same overhead data
for free, live, instead of requiring a dedicated experiment.

Spans are kept in a bounded ring (default 4096) so long campaigns cannot
grow memory; aggregate statistics are accumulated separately and therefore
cover *all* spans ever recorded, not just the retained tail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs import clock

__all__ = ["Span", "SpanTracer"]


@dataclass(frozen=True, slots=True)
class Span:
    """One completed unit of work."""

    name: str
    sim_time: float
    wall_ns: int
    events_emitted: int

    @property
    def wall_ms(self) -> float:
        return self.wall_ns / 1e6


class SpanTracer:
    """Records spans and keeps running per-name aggregates."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen <= 0:
            raise ValueError(f"maxlen must be positive: {maxlen}")
        self.spans: deque[Span] = deque(maxlen=maxlen)
        #: name -> [count, total_ns, max_ns, total_events]
        self._agg: dict[str, list] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def clock_ns() -> int:
        """The wall clock used for span timing (monotonic, ns).

        Reads the shared :mod:`repro.obs.clock` shim, so tests can freeze
        every wall-time observer at once.
        """
        return clock.perf_ns()

    def record(
        self, name: str, sim_time: float, wall_ns: int, events_emitted: int = 0
    ) -> Span:
        """Record one finished span (callers time with :meth:`clock_ns`)."""
        span = Span(name, sim_time, wall_ns, events_emitted)
        self.spans.append(span)
        agg = self._agg.get(name)
        if agg is None:
            self._agg[name] = [1, wall_ns, wall_ns, events_emitted]
        else:
            agg[0] += 1
            agg[1] += wall_ns
            if wall_ns > agg[2]:
                agg[2] = wall_ns
            agg[3] += events_emitted

    # ------------------------------------------------------------------
    def count(self, name: str) -> int:
        agg = self._agg.get(name)
        return agg[0] if agg else 0

    def total_seconds(self, name: str) -> float:
        agg = self._agg.get(name)
        return agg[1] / 1e9 if agg else 0.0

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name aggregates over every span ever recorded."""
        out: dict[str, dict[str, float]] = {}
        for name, (count, total_ns, max_ns, events) in sorted(self._agg.items()):
            out[name] = {
                "count": count,
                "total_ms": total_ns / 1e6,
                "mean_ms": total_ns / count / 1e6,
                "max_ms": max_ns / 1e6,
                "events_emitted": events,
            }
        return out

    def render_summary(self) -> str:
        """Fixed-width overhead table (the live Fig. 12 view)."""
        lines = [
            f"{'span':<16} {'count':>8} {'mean[ms]':>10} {'max[ms]':>10} {'events':>8}"
        ]
        for name, row in self.summary().items():
            lines.append(
                f"{name:<16} {row['count']:>8.0f} {row['mean_ms']:>10.4f} "
                f"{row['max_ms']:>10.4f} {row['events_emitted']:>8.0f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<SpanTracer {sum(a[0] for a in self._agg.values())} spans>"
