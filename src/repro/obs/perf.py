"""Phase-level wall-clock profiler for the scheduler/engine hot paths.

The span tracer answers "how long did one scheduler iteration take"; this
module answers "*where inside it* did the time go".  A
:class:`PhaseProfiler` maintains an explicit begin/end stack and accounts
each phase under its full call *path* — ``profile_build`` timed inside
``static_pass`` and inside ``delay_measure`` are kept as two separate rows,
so parent totals are never double-counted and the invariant

    parent.total ≈ parent.self + Σ direct-children.total

holds by construction (the acceptance check: direct children of an
iteration must sum to within 10 % of the iteration's own wall-clock).

Cost discipline mirrors the decision ledger: the profiler is off by
default (``Telemetry(profiling=True)`` opts in) and every disabled hook
site in the scheduler/engine is a single ``is not None`` attribute check,
covered by the 5 % budget in ``benchmarks/test_obs_overhead.py``.  When
enabled, ``begin``/``end`` are one clock read plus a few list/dict
operations each.

Outputs, in increasing persistence:

* :meth:`summary` / :meth:`tree` — aggregated totals for live rendering
  and the self-profile tree embedded in ``BENCH_*.json`` snapshots;
* per-phase :class:`~repro.obs.registry.Histogram`\\ s
  (``repro_phase_seconds{phase=...}``) in the shared registry;
* a bounded ring of per-phase records exported as a JSONL *phase trace*
  (:meth:`export_phases_jsonl`) for offline ``perf-report`` analysis.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable

from repro.obs import clock

__all__ = [
    "PhaseProfiler",
    "PhaseStat",
    "aggregate_phase_records",
    "read_phases_jsonl",
    "stats_tree",
]

#: separator used when flattening a phase path into one label/JSON string
PATH_SEP = "/"


class PhaseStat:
    """Aggregate for one phase path: count / total / self / max."""

    __slots__ = ("count", "total_ns", "self_ns", "max_ns")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.self_ns = 0
        self.max_ns = 0

    def add(self, dur_ns: int, child_ns: int) -> None:
        self.count += 1
        self.total_ns += dur_ns
        self.self_ns += dur_ns - child_ns
        if dur_ns > self.max_ns:
            self.max_ns = dur_ns

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_ms": self.total_ns / 1e6,
            "self_ms": self.self_ns / 1e6,
            "mean_us": self.total_ns / self.count / 1e3 if self.count else 0.0,
            "max_us": self.max_ns / 1e3,
        }


class PhaseProfiler:
    """Explicit-stack, path-keyed phase timer.

    ``begin(name)`` pushes a frame; ``end()`` pops it and charges the
    elapsed wall time to the path formed by every open frame.  Durations
    spent in children are subtracted from the parent's *self* time but
    kept in its *total*, so both inclusive and exclusive views are exact.
    """

    def __init__(
        self,
        *,
        registry=None,
        trace_maxlen: int = 4096,
    ) -> None:
        if trace_maxlen <= 0:
            raise ValueError(f"trace_maxlen must be positive: {trace_maxlen}")
        #: open frames: ``[name, start_ns, child_ns]``
        self._stack: list[list] = []
        self._stats: dict[tuple[str, ...], PhaseStat] = {}
        #: bounded ring of ``(sim_time, path, wall_ns)`` phase records
        self._records: deque[tuple[float, tuple[str, ...], int]] = deque(
            maxlen=trace_maxlen
        )
        self.records_dropped = 0
        self._registry = registry
        #: memoised path -> Histogram (labels are built once per path)
        self._hists: dict[tuple[str, ...], object] = {}
        #: sim-time attributed to records; instrumented components set it
        #: when they open a root phase (the engine does, per dispatch)
        self.sim_time = 0.0

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------
    def begin(self, name: str, sim_time: float | None = None) -> None:
        """Open a phase.  Must be balanced by exactly one :meth:`end`."""
        if sim_time is not None:
            self.sim_time = sim_time
        self._stack.append([name, clock.perf_ns(), 0])

    def end(self) -> int:
        """Close the innermost open phase; returns its wall time in ns."""
        now = clock.perf_ns()
        name, start_ns, child_ns = self._stack.pop()
        dur_ns = now - start_ns
        stack = self._stack
        if stack:
            stack[-1][2] += dur_ns
            path = tuple(f[0] for f in stack) + (name,)
        else:
            path = (name,)
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = PhaseStat()
        stat.add(dur_ns, child_ns)
        if len(self._records) == self._records.maxlen:
            self.records_dropped += 1
        self._records.append((self.sim_time, path, dur_ns))
        if self._registry is not None:
            hist = self._hists.get(path)
            if hist is None:
                hist = self._registry.histogram(
                    "repro_phase_seconds",
                    "Wall-clock seconds spent per profiled phase path",
                    labels={"phase": PATH_SEP.join(path)},
                )
                self._hists[path] = hist
            hist.observe(dur_ns / 1e9)
        return dur_ns

    @property
    def depth(self) -> int:
        """Number of currently open frames (0 when balanced)."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # aggregated views
    # ------------------------------------------------------------------
    def stats(self) -> dict[tuple[str, ...], PhaseStat]:
        """Raw per-path aggregates (paths are tuples of phase names)."""
        return self._stats

    def total_phase_count(self) -> int:
        """Total number of completed ``begin``/``end`` pairs."""
        return sum(s.count for s in self._stats.values())

    def summary(self) -> dict[str, dict[str, float]]:
        """Flat ``path-string -> aggregates`` view, path-sorted."""
        return {
            PATH_SEP.join(path): stat.as_dict()
            for path, stat in sorted(self._stats.items())
        }

    def tree(self) -> dict:
        """Nested self-profile tree (the ``BENCH_*.json`` embed).

        Shape: ``{name: {count, total_ms, self_ms, children: {...}}}`` —
        JSON-serialisable, ms-rounded to keep snapshots diffable.
        """
        return stats_tree(self._stats)

    def child_coverage(self, path: tuple[str, ...]) -> float:
        """Fraction of ``path``'s total accounted by its direct children.

        1.0 means the children (plus the parent's own bookkeeping, which
        is *self* time and excluded here) perfectly tile the parent.  The
        acceptance criterion checks coverage + self ≈ 1 within 10 %.
        """
        parent = self._stats.get(path)
        if parent is None or parent.total_ns == 0:
            return 0.0
        child_total = sum(
            s.total_ns
            for p, s in self._stats.items()
            if len(p) == len(path) + 1 and p[: len(path)] == path
        )
        return child_total / parent.total_ns

    # ------------------------------------------------------------------
    # phase trace (JSONL)
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterable[dict]:
        """Retained phase records as JSON-ready dicts (oldest first)."""
        for sim_time, path, dur_ns in self._records:
            yield {"t": sim_time, "phase": PATH_SEP.join(path), "wall_ns": dur_ns}

    def export_phases_jsonl(self, fp: IO[str]) -> int:
        """Write the retained phase trace as JSONL; returns line count.

        The ring keeps the most recent ``trace_maxlen`` records;
        :attr:`records_dropped` says how many older ones were evicted
        (aggregates in :meth:`summary` always cover everything).
        """
        count = 0
        for record in self.iter_records():
            fp.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"<PhaseProfiler {len(self._stats)} paths "
            f"{self.total_phase_count()} phases depth={self.depth}>"
        )


def stats_tree(stats: dict[tuple[str, ...], PhaseStat]) -> dict:
    """Nest per-path aggregates into the self-profile tree shape.

    ``{name: {count, total_ms, self_ms, children: {...}}}``, ms rounded to
    4 decimal places — shared by the live profiler and the offline
    ``perf-report`` aggregation.
    """
    root: dict = {}
    for path, stat in sorted(stats.items()):
        level = root
        for name in path[:-1]:
            level = level.setdefault(
                name, {"count": 0, "total_ms": 0.0, "self_ms": 0.0, "children": {}}
            )["children"]
        node = level.setdefault(
            path[-1],
            {"count": 0, "total_ms": 0.0, "self_ms": 0.0, "children": {}},
        )
        node["count"] = stat.count
        node["total_ms"] = round(stat.total_ns / 1e6, 4)
        node["self_ms"] = round(stat.self_ns / 1e6, 4)
    return root


# ----------------------------------------------------------------------
# offline analysis of dumped phase traces (the ``perf-report`` input)
# ----------------------------------------------------------------------
def read_phases_jsonl(fp: IO[str]) -> list[dict]:
    """Parse a phase-trace JSONL stream back into record dicts."""
    records = []
    for line in fp:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "phase" not in record or "wall_ns" not in record:
            raise ValueError(f"not a phase record: {record!r}")
        records.append(record)
    return records


def aggregate_phase_records(records: Iterable[dict]) -> dict[tuple[str, ...], PhaseStat]:
    """Rebuild per-path aggregates from dumped records.

    Records carry no child attribution, so *self* time is reconstructed
    the same way the live profiler computes it: each path's direct
    children's totals are subtracted from its own total at the end.
    """
    stats: dict[tuple[str, ...], PhaseStat] = {}
    for record in records:
        path = tuple(record["phase"].split(PATH_SEP))
        stat = stats.get(path)
        if stat is None:
            stat = stats[path] = PhaseStat()
        stat.add(int(record["wall_ns"]), 0)
    for path, stat in stats.items():
        child_ns = sum(
            s.total_ns
            for p, s in stats.items()
            if len(p) == len(path) + 1 and p[: len(path)] == path
        )
        stat.self_ns = stat.total_ns - child_ns
    return stats
