"""Bench-snapshot trend analysis: diff a ``BENCH_*.json`` against a baseline.

The benchmark suite writes a machine-readable snapshot per PR (see
``benchmarks/conftest.py``), keyed ``groups.<group>.<test>.<metric>``.  This
module compares two snapshots and classifies every shared metric as
improved / ok / regressed within a relative tolerance band, so CI can fail
on genuine performance regressions while ignoring runner noise.

Direction is inferred from the metric name:

* **lower is better** — wall/overhead timings (``*_ms``, ``*_ns``, ``*_us``,
  ``*_s``, ``*_seconds``, ``overhead*``, ``per_check*``);
* **higher is better** — ``headroom*``, ``throughput*``, ``*_per_s*``;
* everything else (counts, sizes) is **informational**: reported, never a
  regression — job counts changing is a workload change, not a slowdown.

Exposed as the ``repro-batchsim bench-trend`` subcommand and as
``python -m repro.obs.benchtrend`` for CI.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Iterator

__all__ = [
    "load_snapshot",
    "metric_direction",
    "diff_snapshots",
    "render_trend",
    "main",
]

#: default relative tolerance band — generous because snapshots are
#: generated on whatever machine ran the benchmarks last (CI runners and
#: laptops differ by far more than any real regression we chase here)
DEFAULT_TOLERANCE = 0.5

_LOWER_SUFFIXES = ("_ms", "_ns", "_us", "_s", "_seconds")
_LOWER_PREFIXES = ("overhead", "per_check", "wall")
_HIGHER_PREFIXES = ("headroom", "throughput")


def load_snapshot(path: str | Path) -> dict:
    """Read one ``repro-bench/1`` snapshot, validating the schema tag."""
    data = json.loads(Path(path).read_text())
    schema = data.get("schema")
    if schema != "repro-bench/1":
        raise ValueError(f"{path}: unsupported bench schema {schema!r}")
    return data


def metric_direction(metric: str) -> str:
    """``'lower'`` / ``'higher'`` is better, or ``'info'`` (no judgement)."""
    if metric.startswith(_HIGHER_PREFIXES) or "_per_s" in metric:
        return "higher"
    if metric.startswith(_LOWER_PREFIXES) or metric.endswith(_LOWER_SUFFIXES):
        return "lower"
    return "info"


def _iter_metrics(snapshot: dict) -> Iterator[tuple[str, str, str, float]]:
    for group, tests in sorted(snapshot.get("groups", {}).items()):
        for test, values in sorted(tests.items()):
            for metric, value in sorted(values.items()):
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    yield group, test, metric, float(value)


def diff_snapshots(
    baseline: dict, current: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> list[dict]:
    """Row per metric: baseline vs current with a tolerance-band verdict.

    Status is ``regressed`` when a directional metric moved the wrong way by
    more than ``tolerance`` (relative), ``improved`` when it moved the right
    way by more than the band, ``ok`` inside the band, ``info`` for
    non-directional metrics, and ``new``/``removed`` for one-sided keys.
    """
    base = {(g, t, m): v for g, t, m, v in _iter_metrics(baseline)}
    cur = {(g, t, m): v for g, t, m, v in _iter_metrics(current)}
    rows: list[dict] = []
    for key in sorted(base.keys() | cur.keys()):
        group, test, metric = key
        row = {
            "group": group,
            "test": test,
            "metric": metric,
            "baseline": base.get(key),
            "current": cur.get(key),
            "change": None,
            "status": "info",
        }
        if key not in cur:
            row["status"] = "removed"
        elif key not in base:
            row["status"] = "new"
        else:
            b, c = base[key], cur[key]
            direction = metric_direction(metric)
            if b != 0 and math.isfinite(b) and math.isfinite(c):
                row["change"] = (c - b) / abs(b)
            if direction != "info" and row["change"] is not None:
                signed = row["change"] if direction == "lower" else -row["change"]
                if signed > tolerance:
                    row["status"] = "regressed"
                elif signed < -tolerance:
                    row["status"] = "improved"
                else:
                    row["status"] = "ok"
        rows.append(row)
    return rows


def regressions(rows: list[dict]) -> list[dict]:
    return [row for row in rows if row["status"] == "regressed"]


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.4g}"


def render_trend(
    rows: list[dict], *, tolerance: float = DEFAULT_TOLERANCE
) -> str:
    """Fixed-width report; regressions and improvements called out."""
    lines = [
        f"bench trend (tolerance ±{tolerance:.0%} on directional metrics):",
        f"  {'group':<14} {'test':<26} {'metric':<22} "
        f"{'baseline':>12} {'current':>12} {'change':>8}  status",
    ]
    if not rows:
        lines.append("  (no shared metrics)")
        return "\n".join(lines)
    for row in rows:
        change = "-" if row["change"] is None else f"{row['change']:+.1%}"
        lines.append(
            f"  {row['group']:<14} {row['test']:<26} {row['metric']:<22} "
            f"{_fmt(row['baseline']):>12} {_fmt(row['current']):>12} "
            f"{change:>8}  {row['status']}"
        )
    regressed = regressions(rows)
    if regressed:
        lines.append(f"  {len(regressed)} metric(s) regressed beyond tolerance")
    else:
        lines.append("  no regressions beyond tolerance")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.benchtrend",
        description="Diff a BENCH_*.json snapshot against a committed baseline.",
    )
    parser.add_argument("baseline", help="baseline snapshot (committed)")
    parser.add_argument("current", help="freshly generated snapshot")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"relative tolerance band (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit 1 when any directional metric regressed beyond tolerance",
    )
    args = parser.parse_args(argv)
    rows = diff_snapshots(
        load_snapshot(args.baseline),
        load_snapshot(args.current),
        tolerance=args.tolerance,
    )
    print(render_trend(rows, tolerance=args.tolerance))
    if args.fail_on_regress and regressions(rows):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
