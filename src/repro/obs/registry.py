"""Live metrics registry: counters, gauges and histograms.

The registry is the in-process source of truth for "what is the system
doing *right now*" — the counterpart of the :class:`~repro.sim.events.TraceLog`,
which records *what happened*.  Instruments are cheap enough to update from
scheduler hot paths (a dict lookup happens only at creation; updates are a
float add) and the whole registry renders to the Prometheus text exposition
format via :func:`repro.obs.exporters.to_prometheus_text`.

Instruments are identified by ``(name, labels)``; repeated ``counter()`` /
``gauge()`` / ``histogram()`` calls with the same identity return the same
instrument, so components can re-resolve instruments without coordination.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default histogram buckets, tuned for wall-clock seconds of scheduler work
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, str] | None) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (events, grants, jobs, …)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._value += amount

    def set_total(self, total: float) -> None:
        """Fast-forward to an externally tracked cumulative total.

        Used to mirror pre-existing cumulative stats (e.g. the scheduler's
        ``stats`` dict) without double bookkeeping; the total must never
        move backwards.
        """
        if total < self._value:
            raise ValueError(
                f"counter {self.name} cannot move backwards "
                f"({total} < {self._value})"
            )
        self._value = float(total)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Counter {self.name}{dict(self.labels)} {self._value}>"


class Gauge:
    """A value that can go up and down (queue depth, busy cores, …).

    A gauge may instead be backed by a ``callback``; reading :attr:`value`
    then invokes it, so collection always sees the live quantity without
    any hot-path updates.
    """

    __slots__ = ("name", "labels", "_value", "_callback")

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        callback: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels)} {self.value}>"


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= upper_bounds[i]``; an
    implicit ``+Inf`` bucket equals :attr:`count`.  Keyed by sim-time-free
    observations — callers decide what they observe (wall seconds, delays,
    queue residence times, …).
    """

    __slots__ = ("name", "labels", "upper_bounds", "bucket_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} has duplicate buckets")
        self.name = name
        self.labels = labels
        self.upper_bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1
        # linear scan: bucket lists are short and this is branch-predictable
        for i, bound in enumerate(self.upper_bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf excluded."""
        return list(zip(self.upper_bounds, self.bucket_counts))

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name}{dict(self.labels)} "
            f"count={self._count} sum={self._sum:.6f}>"
        )


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create factory and collection point for all instruments."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelsKey], Instrument] = {}
        self._help: dict[str, str] = {}
        self._types: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get_or_create(
        self,
        cls: type,
        type_name: str,
        name: str,
        help: str,
        labels: dict[str, str] | None,
        **kwargs,
    ):
        if self._types.get(name, type_name) != type_name:
            raise ValueError(
                f"{name} already registered as a {self._types[name]}, "
                f"cannot re-register as a {type_name}"
            )
        key = (name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
            self._types[name] = type_name
            if help:
                self._help[name] = help
        return instrument

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(Counter, "counter", name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, "gauge", name, help, labels, callback=callback)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, "histogram", name, help, labels, buckets=buckets
        )

    # ------------------------------------------------------------------
    def collect(self) -> Iterator[Instrument]:
        """All instruments, grouped by name, label-sorted within a name."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def type_of(self, name: str) -> str:
        return self._types.get(name, "untyped")

    def get(self, name: str, labels: dict[str, str] | None = None) -> Instrument | None:
        """Look up an instrument without creating it."""
        return self._instruments.get((name, _labels_key(labels)))

    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        """Convenience: current value of a counter/gauge (0.0 if absent)."""
        instrument = self.get(name, labels)
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name} is a histogram; read .sum/.count instead")
        return instrument.value

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._instruments)} instruments>"
