"""Trace and metrics exporters: JSONL event streams and Prometheus text.

Two wire formats:

* **JSONL traces** — one JSON object per event, ``{"t": ..., "kind": ...,
  "payload": {...}}``.  :class:`JsonlTraceWriter` streams events as they
  are recorded (subscribe it to a :class:`~repro.sim.events.TraceLog`);
  :func:`export_jsonl` dumps a retained trace post-hoc; :func:`read_jsonl`
  parses either back into a ``TraceLog`` such that the round-trip
  reproduces identical :class:`~repro.sim.events.TraceEvent` objects.
* **Prometheus text exposition** — :func:`to_prometheus_text` renders a
  :class:`~repro.obs.registry.MetricsRegistry` in the standard ``# HELP`` /
  ``# TYPE`` format, histograms included (cumulative ``_bucket`` series
  plus ``_sum`` / ``_count``).
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, IO, Iterable, Iterator

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.events import EventKind, TraceEvent, TraceLog

__all__ = [
    "JsonlTraceWriter",
    "event_to_dict",
    "event_from_dict",
    "export_jsonl",
    "iter_jsonl",
    "read_jsonl",
    "to_prometheus_text",
]


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    return {"t": event.time, "kind": event.kind.value, "payload": event.payload}


def _revive_int_keys(value: Any) -> Any:
    """Undo JSON's string-keyed dicts for node-index maps.

    Payload dicts keyed by node index (``cores_by_node``) come back from
    JSON with string keys; digit-string keys are converted back to ``int``
    recursively so the round-trip is identity on real traces (payloads
    never use digit strings as semantic keys).
    """
    if isinstance(value, dict):
        return {
            (int(k) if isinstance(k, str) and k.isdigit() else k): _revive_int_keys(v)
            for k, v in value.items()
        }
    if isinstance(value, list):
        return [_revive_int_keys(v) for v in value]
    return value


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        time=float(data["t"]),
        kind=EventKind(data["kind"]),
        payload=_revive_int_keys(data["payload"]),
    )


class JsonlTraceWriter:
    """A trace subscriber that streams every event to a text file object.

    >>> from repro.sim.events import TraceLog, EventKind
    >>> import io
    >>> buf, log = io.StringIO(), TraceLog()
    >>> writer = log.subscribe(JsonlTraceWriter(buf))
    >>> _ = log.record(0.0, EventKind.JOB_SUBMIT, job_id="j1")
    >>> buf.getvalue().startswith('{"t": 0.0')
    True
    """

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.events_written = 0

    def __call__(self, event: TraceEvent) -> None:
        self.stream.write(json.dumps(event_to_dict(event)) + "\n")
        self.events_written += 1


def export_jsonl(
    trace: Iterable[TraceEvent], stream_or_path: IO[str] | str | os.PathLike
) -> int:
    """Write every retained event as one JSON line; returns the count."""
    if isinstance(stream_or_path, (str, os.PathLike)):
        with open(stream_or_path, "w", encoding="utf-8") as fh:
            return export_jsonl(trace, fh)
    count = 0
    for event in trace:
        stream_or_path.write(json.dumps(event_to_dict(event)) + "\n")
        count += 1
    return count


def iter_jsonl(
    stream_or_path: IO[str] | str | os.PathLike,
) -> Iterator[TraceEvent]:
    """Parse a JSONL trace lazily (blank lines skipped)."""
    if isinstance(stream_or_path, (str, os.PathLike)):
        with open(stream_or_path, "r", encoding="utf-8") as fh:
            yield from iter_jsonl(fh)
        return
    for line in stream_or_path:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))


def read_jsonl(stream_or_path: IO[str] | str | os.PathLike) -> TraceLog:
    """Rebuild an (unbounded) :class:`TraceLog` from a JSONL export."""
    log = TraceLog()
    for event in iter_jsonl(stream_or_path):
        log.record(event.time, event.kind, **event.payload)
    return log


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for instrument in registry.collect():
        name = instrument.name
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = registry.help_for(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {registry.type_of(name)}")
        if isinstance(instrument, (Counter, Gauge)):
            lines.append(
                f"{name}{_format_labels(instrument.labels)} "
                f"{_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            # bucket_counts are already cumulative (observe() increments
            # every bucket whose bound admits the value)
            for bound, count in instrument.cumulative_buckets():
                le = _format_labels(
                    instrument.labels, f'le="{_format_value(bound)}"'
                )
                lines.append(f"{name}_bucket{le} {count}")
            inf = _format_labels(instrument.labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{inf} {instrument.count}")
            lines.append(
                f"{name}_sum{_format_labels(instrument.labels)} "
                f"{_format_value(instrument.sum)}"
            )
            lines.append(
                f"{name}_count{_format_labels(instrument.labels)} {instrument.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Minimal parser for round-trip tests: ``name{labels}`` -> value.

    Ignores comments; label sets are kept verbatim inside the key.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        out[key] = float(value)
    return out
