"""The telemetry facade: one object bundling registry, tracer and sampler.

``Telemetry`` is what users hand to :class:`~repro.system.BatchSystem`:

>>> from repro.obs import Telemetry
>>> from repro.system import BatchSystem
>>> tel = Telemetry(sample_interval=60.0)
>>> system = BatchSystem(4, 8, telemetry=tel)

With no telemetry object (the default) every component keeps a ``None``
sentinel and each hook site reduces to a single attribute-is-None check —
the disabled path is benchmarked to stay within 5 % of the uninstrumented
scheduler hot path (``benchmarks/test_obs_overhead.py``).

Besides the three sub-systems, the facade maintains the **busy-core
integral**: every cluster claim/release reports the new busy count, and the
running integral of busy-cores over sim-time makes utilization computable
in O(1) at any moment — even when the event trace is a bounded ring that no
longer holds the start of the run.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import PeriodicSampler
from repro.obs.tracing import SpanTracer

__all__ = ["Telemetry", "DEFAULT_SAMPLE_INTERVAL"]

#: one sample per simulated minute — fine enough for ESP-scale workloads
DEFAULT_SAMPLE_INTERVAL = 60.0


class Telemetry:
    """Registry + span tracer + periodic sampler + busy-core accounting."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        sample_interval: float | None = DEFAULT_SAMPLE_INTERVAL,
        span_maxlen: int = 4096,
        decision_ledger: bool = False,
        profiling: bool = False,
        phase_trace_maxlen: int = 4096,
        windows=None,
        fold_and_discard: bool = False,
        fairness: bool = False,
        slo=None,
        share_targets: dict[str, float] | None = None,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(maxlen=span_maxlen)
        #: optional causal decision ledger (``decision_ledger=True``);
        #: BatchSystem attaches it to the trace, the scheduler records into it
        self.ledger = None
        if enabled and decision_ledger:
            from repro.obs.ledger import DecisionLedger

            self.ledger = DecisionLedger(registry=self.registry)
        #: optional phase profiler (``profiling=True``); BatchSystem hands it
        #: to the engine and scheduler, which keep a plain ``None`` sentinel
        #: otherwise — the same hook discipline as the ledger
        self.profiler = None
        if enabled and profiling:
            from repro.obs.perf import PhaseProfiler

            self.profiler = PhaseProfiler(
                registry=self.registry, trace_maxlen=phase_trace_maxlen
            )
        #: optional streaming windowed aggregates; pass a window width in
        #: sim-seconds or a pre-configured
        #: :class:`~repro.obs.windows.WindowedMetrics` instance
        self.windows = None
        if enabled and windows is not None:
            from repro.obs.windows import WindowedMetrics

            self.windows = (
                windows
                if isinstance(windows, WindowedMetrics)
                else WindowedMetrics(float(windows))
            )
        #: when True (requires ``windows``) the server drops each folded
        #: job from its indexes once fairshare accounting is done, so long
        #: replays hold O(windows) memory instead of O(jobs)
        self.fold_and_discard = bool(fold_and_discard)
        if self.fold_and_discard and self.windows is None:
            raise ValueError("fold_and_discard=True requires windows=")
        #: optional fairness observatory (``fairness=True`` or any ``slo=``);
        #: the scheduler keeps a plain ``None`` sentinel otherwise — the
        #: same hook discipline as the ledger and profiler
        self.fairness = None
        if enabled and (fairness or slo):
            from repro.obs.fairness import FairnessObservatory, principal_of

            self.fairness = FairnessObservatory(
                registry=self.registry, share_targets=share_targets
            )
            if self.windows is not None:
                if not self.windows.grouped:
                    self.windows.set_group_by(principal_of)
                self.fairness.attach_windows(self.windows)
        #: optional declarative SLO engine (``slo=["p99_wait < 4h", ...]``);
        #: evaluated at window-frame close, so windows are required
        self.slo = None
        if enabled and slo:
            if self.windows is None:
                raise ValueError("slo= requires windows=")
            from repro.obs.slo import SLOEngine

            self.slo = SLOEngine(
                slo, registry=self.registry, fairness=self.fairness
            )
            self.slo.attach_windows(self.windows)
        self.sample_interval = sample_interval
        self.sampler: PeriodicSampler | None = None
        self._pending_sources: dict[str, object] = {}
        # busy-core integral: sum of busy_cores * dt since attach
        self._busy_last_time = 0.0
        self._busy_last_value = 0
        self._busy_integral = 0.0

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A telemetry object that records nothing (explicit no-op)."""
        return cls(enabled=False, sample_interval=None)

    # ------------------------------------------------------------------
    # sampler lifecycle (wired by BatchSystem)
    # ------------------------------------------------------------------
    def ensure_sampler(self, engine) -> PeriodicSampler | None:
        """Create the periodic sampler (without arming it) on the engine.

        The sampler is armed later by :meth:`start_sampling` — typically at
        the top of ``BatchSystem.run()``, once the workload's events are in
        the queue; arming it on an empty engine would immediately stop it.
        """
        if not self.enabled or self.sample_interval is None:
            return None
        if self.sampler is None:
            self.sampler = PeriodicSampler(engine, self.sample_interval)
            for name, fn in self._pending_sources.items():
                self.sampler.add_source(name, fn)
        return self.sampler

    def start_sampling(self) -> None:
        """Arm the sampler (idempotent; no-op when sampling is off)."""
        if self.sampler is not None:
            self.sampler.start()

    def add_source(self, name: str, fn) -> None:
        """Register a sampled time-series source (no-op when disabled)."""
        if not self.enabled or self.sample_interval is None:
            return
        self._pending_sources[name] = fn
        if self.sampler is not None:
            self.sampler.add_source(name, fn)

    @property
    def series(self) -> dict[str, list[tuple[float, float]]]:
        """All sampled time series (empty when sampling is off)."""
        return self.sampler.series if self.sampler is not None else {}

    # ------------------------------------------------------------------
    # busy-core integral (fed by the cluster's claim/release hook)
    # ------------------------------------------------------------------
    def reset_busy_clock(self, now: float, busy: int) -> None:
        """(Re)anchor the integral; called when the cluster attaches."""
        self._busy_last_time = float(now)
        self._busy_last_value = int(busy)
        self._busy_integral = 0.0
        if self.windows is not None:
            self.windows.reset_busy(now, busy)

    def on_busy_change(self, now: float, busy: int) -> None:
        """The number of busy cores changed at sim-time ``now``."""
        self._busy_integral += self._busy_last_value * (now - self._busy_last_time)
        self._busy_last_time = now
        self._busy_last_value = busy
        if self.windows is not None:
            self.windows.on_busy_change(now, busy)

    def busy_core_seconds(self, upto: float | None = None) -> float:
        """Integral of busy cores over sim-time since attach.

        ``upto`` extends the integral to a later timestamp at the current
        busy level (typically ``engine.now`` at collection time).
        """
        total = self._busy_integral
        if upto is not None and upto > self._busy_last_time:
            total += self._busy_last_value * (upto - self._busy_last_time)
        return total

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Telemetry {state} registry={len(self.registry)} {self.tracer!r}>"
