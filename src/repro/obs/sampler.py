"""Periodic sim-time sampler: turns live gauges into time series.

The sampler is an ordinary simulation event: every ``interval`` sim-seconds
it evaluates its registered sources and appends ``(sim_time, value)`` points
to named series.  It runs at a priority *after* the scheduler so a sample at
time *t* observes the settled post-iteration state, and it only reschedules
itself while other events remain pending — otherwise the sampler itself
would keep the engine alive forever.

This replaces the old post-hoc reconstruction style (replaying the whole
trace to recover utilization curves) with telemetry recorded as the
simulation runs, which stays correct even when the trace is a bounded ring.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.sim.engine import Engine

__all__ = ["PeriodicSampler", "PRIORITY_SAMPLER"]

#: samplers observe after every same-timestamp scheduler iteration
PRIORITY_SAMPLER = 11

SourceValue = float | Mapping[str, float]


class PeriodicSampler:
    """Samples named callables into ``series`` every ``interval`` sim-seconds.

    A source may return a float (one series under its own name) or a mapping
    (one series per key, stored as ``name{key}`` — used for per-user DFS
    ledger levels).
    """

    def __init__(self, engine: Engine, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive: {interval}")
        self.engine = engine
        self.interval = float(interval)
        self._sources: dict[str, Callable[[], SourceValue]] = {}
        self.series: dict[str, list[tuple[float, float]]] = {}
        self.samples_taken = 0
        self._handle = None

    # ------------------------------------------------------------------
    def add_source(self, name: str, fn: Callable[[], SourceValue]) -> None:
        """Register (or replace) a sampled quantity."""
        self._sources[name] = fn

    def start(self) -> None:
        """(Re)arm sampling; takes an immediate t=now baseline sample.

        Idempotent while armed.  The sampler disarms itself when the event
        queue drains (see :meth:`_tick`); calling ``start`` again — e.g. at
        the next ``run()`` after more submissions — resumes it.
        """
        if self._handle is not None:
            return
        self._tick()

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    def sample_now(self) -> None:
        """Record one sample of every source at the current sim time."""
        now = self.engine.now
        for name, fn in self._sources.items():
            value = fn()
            if isinstance(value, Mapping):
                for key, v in value.items():
                    self.series.setdefault(f"{name}{{{key}}}", []).append(
                        (now, float(v))
                    )
            else:
                self.series.setdefault(name, []).append((now, float(value)))
        self.samples_taken += 1

    def _tick(self) -> None:
        self._handle = None
        self.sample_now()
        # reschedule only while the simulation still has work: a sampler
        # that unconditionally re-arms would make Engine.run() never drain
        if self.engine.pending > 0:
            self._handle = self.engine.after(
                self.interval, self._tick, priority=PRIORITY_SAMPLER
            )

    def __repr__(self) -> str:
        return (
            f"<PeriodicSampler interval={self.interval:.0f}s "
            f"series={len(self.series)} samples={self.samples_taken}>"
        )
