"""Instrument bundles wired into the batch-stack components.

Each component owns at most one bundle, created only when telemetry is
enabled; every hook site in the hot path is therefore a single
``if self._obs is not None`` check when telemetry is off.  The bundles
pre-resolve their instruments once, so enabled-path updates are plain
attribute access plus a float add.

Instrument catalogue (all names are also documented in
``docs/OBSERVABILITY.md``):

========================================== =========== ==========================
name                                        type        source
========================================== =========== ==========================
repro_jobs_submitted_total                  counter     rms.server
repro_jobs_started_total                    counter     rms.server
repro_jobs_completed_total                  counter     rms.server
repro_jobs_aborted_total                    counter     rms.server
repro_jobs_preempted_total                  counter     rms.server
repro_dyn_requests_total                    counter     rms.server
repro_dyn_grants_total                      counter     rms.server
repro_dyn_rejects_total                     counter     rms.server
repro_dyn_satisfied_jobs_total              counter     rms.server
repro_queue_depth                           gauge       rms.server
repro_dyn_queue_depth                       gauge       rms.server
repro_running_jobs                          gauge       rms.server
repro_sched_iterations_total                counter     maui.scheduler
repro_sched_iterations_skipped_total        counter     maui.scheduler
repro_sched_backfill_starts_total           counter     maui.scheduler
repro_sched_preemptions_total               counter     maui.scheduler
repro_sched_reservations_total              counter     maui.scheduler
repro_sched_malleable_shrinks_total         counter     maui.scheduler
repro_sched_jobs_molded_total               counter     maui.scheduler
repro_sched_delay_charged_seconds_total     counter     maui.scheduler
repro_dfs_ledger_delay_seconds{kind,name}   gauge       maui.scheduler (per iteration)
repro_sched_iteration_seconds               histogram   maui.scheduler (wall clock)
repro_dyn_handle_seconds                    histogram   maui.scheduler (wall clock)
repro_phase_seconds{phase}                  histogram   obs.perf (per profiled phase path)
repro_busy_cores                            gauge       cluster.machine
repro_ledger_decisions_total{kind}          counter     obs.ledger (per kind)
repro_ledger_dyn_inflicted_seconds_total    counter     obs.ledger
repro_ledger_waits_closed_total             counter     obs.ledger
repro_faults_node_failures_total            counter     faults.injector
repro_faults_node_recoveries_total          counter     faults.injector
repro_faults_jobs_requeued_total            counter     faults.injector
repro_faults_lost_core_seconds_total        counter     faults.injector
repro_faults_downtime_seconds_total         counter     faults.injector
repro_faults_delivery_drops_total           counter     faults.transient
repro_faults_delivery_retries_total         counter     faults.transient
repro_faults_delivery_degraded_total        counter     faults.transient
repro_fairness_jain_index                   gauge       obs.fairness
repro_fairness_max_share_error              gauge       obs.fairness
repro_fairness_samples_total                counter     obs.fairness
repro_fairness_share{account}               gauge       obs.fairness (per account)
repro_fairness_share_target{account}        gauge       obs.fairness (per account)
repro_slo_evaluations_total                 counter     obs.slo
repro_slo_breaches_total{objective}         counter     obs.slo (per objective)
repro_service_commands_total                counter     service.service
repro_service_submissions_total             counter     service.service
repro_service_admission_rejects_total       counter     service.service
repro_service_cancels_total                 counter     service.service
repro_service_grow_requests_total           counter     service.service
repro_service_cycles_total                  counter     service.service
========================================== =========== ==========================

Like the ledger, the ``repro_faults_delivery_*`` instruments are
registered by their own consumer (``repro.faults.transient``) — they
only exist when a fault model enables transient delivery drops.

The ``repro_ledger_*`` instruments are registered by the decision ledger
itself (``repro.obs.ledger``) rather than by a bundle here — the ledger
is its own hook consumer and only exists when
``Telemetry(decision_ledger=True)``.  Likewise ``repro_phase_seconds`` is
registered by the phase profiler (``repro.obs.perf``) and only exists
when ``Telemetry(profiling=True)``, the ``repro_fairness_*`` instruments
by the fairness observatory (``repro.obs.fairness``,
``Telemetry(fairness=True)``) and the ``repro_slo_*`` instruments by the
SLO engine (``repro.obs.slo``, ``Telemetry(slo=[...])``).
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import Telemetry

__all__ = [
    "ServerInstruments",
    "SchedulerInstruments",
    "ClusterInstruments",
    "FaultInstruments",
    "ServiceInstruments",
]


class ServerInstruments:
    """Job-lifecycle and dynamic-request instruments for the RMS server."""

    def __init__(self, telemetry: Telemetry) -> None:
        registry: MetricsRegistry = telemetry.registry
        self.submitted = registry.counter(
            "repro_jobs_submitted_total", "Jobs submitted (qsub)"
        )
        self.started = registry.counter(
            "repro_jobs_started_total", "Jobs started (priority or backfill)"
        )
        self.completed = registry.counter(
            "repro_jobs_completed_total", "Jobs that completed normally"
        )
        self.aborted = registry.counter(
            "repro_jobs_aborted_total", "Jobs aborted (walltime, qdel, failures)"
        )
        self.preempted = registry.counter(
            "repro_jobs_preempted_total", "Preemptions (job requeued)"
        )
        self.dyn_requests = registry.counter(
            "repro_dyn_requests_total", "Dynamic requests entering the FIFO"
        )
        self.dyn_grants = registry.counter(
            "repro_dyn_grants_total", "Dynamic requests granted"
        )
        self.dyn_rejects = registry.counter(
            "repro_dyn_rejects_total", "Dynamic requests rejected"
        )
        self.satisfied_jobs = registry.counter(
            "repro_dyn_satisfied_jobs_total",
            "Evolving jobs whose first dynamic request was granted (Table II)",
        )
        self.queue_depth = registry.gauge(
            "repro_queue_depth", "Queued (static) jobs"
        )
        self.dyn_queue_depth = registry.gauge(
            "repro_dyn_queue_depth", "Pending dynamic requests"
        )
        self.running_jobs = registry.gauge(
            "repro_running_jobs", "Jobs currently holding resources"
        )

    def update_depths(self, server) -> None:
        self.queue_depth.set(len(server.queue))
        self.dyn_queue_depth.set(len(server.dyn_queue))
        self.running_jobs.set(server.active_count)


class SchedulerInstruments:
    """Iteration counters, DFS ledger gauges and wall-clock histograms."""

    #: scheduler ``stats`` keys mirrored 1:1 into counters
    _STAT_COUNTERS = (
        ("iterations", "repro_sched_iterations_total", "Scheduling iterations run"),
        (
            "iterations_skipped",
            "repro_sched_iterations_skipped_total",
            "Scheduler wake-ups skipped (no state change since last pass)",
        ),
        ("jobs_backfilled", "repro_sched_backfill_starts_total", "Backfill starts"),
        ("preemptions", "repro_sched_preemptions_total", "Scheduler-initiated preemptions"),
        ("reservations_created", "repro_sched_reservations_total", "Reservations created"),
        ("malleable_shrinks", "repro_sched_malleable_shrinks_total", "Malleable shrink operations"),
        ("jobs_molded", "repro_sched_jobs_molded_total", "Moldable jobs started below requested size"),
        ("total_delay_charged", "repro_sched_delay_charged_seconds_total", "Foreign delay charged to DFS ledgers [s]"),
    )

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        registry = telemetry.registry
        self.tracer = telemetry.tracer
        self._stat_mirror = [
            (stat_key, registry.counter(name, help_text))
            for stat_key, name, help_text in self._STAT_COUNTERS
        ]
        self.iteration_seconds = registry.histogram(
            "repro_sched_iteration_seconds",
            "Wall-clock cost of one full scheduling iteration",
        )
        self.dyn_handle_seconds = registry.histogram(
            "repro_dyn_handle_seconds",
            "Wall-clock cost of servicing one dynamic request (Fig. 12)",
        )
        # the registry memoises by name: this is the same counter instance
        # sync_stats mirrors, resolved once for the skip fast path
        self._skipped = registry.counter(
            "repro_sched_iterations_skipped_total",
            "Scheduler wake-ups skipped (no state change since last pass)",
        )
        self._registry = registry

    def note_skip(self, total_skipped: int) -> None:
        """Mirror the skip counter from a skipped wake-up (no full sync)."""
        self._skipped.set_total(total_skipped)

    def sync_stats(self, stats: dict) -> None:
        """Mirror the scheduler's cumulative stats into counters."""
        for stat_key, counter in self._stat_mirror:
            counter.set_total(stats[stat_key])

    def sync_ledger(self, snapshot: dict[tuple[str, str], float]) -> None:
        """Publish per-principal DFS delay levels as labelled gauges."""
        for (kind, name), delay in snapshot.items():
            self._registry.gauge(
                "repro_dfs_ledger_delay_seconds",
                "Cumulative delay charged this DFS interval",
                labels={"kind": kind, "principal": name},
            ).set(delay)

    def end_iteration(self, sim_time: float, wall_ns: int, events: int) -> None:
        self.iteration_seconds.observe(wall_ns / 1e9)
        self.tracer.record("sched_iteration", sim_time, wall_ns, events)

    def end_dyn_handle(self, sim_time: float, wall_ns: int, events: int) -> None:
        self.dyn_handle_seconds.observe(wall_ns / 1e9)
        self.tracer.record("dyn_request", sim_time, wall_ns, events)


class FaultInstruments:
    """Resilience counters fed by the fault injector (repro.faults)."""

    def __init__(self, telemetry: Telemetry) -> None:
        registry: MetricsRegistry = telemetry.registry
        self.node_failures = registry.counter(
            "repro_faults_node_failures_total", "Injected node failures"
        )
        self.node_recoveries = registry.counter(
            "repro_faults_node_recoveries_total", "Injected node recoveries"
        )
        self.jobs_requeued = registry.counter(
            "repro_faults_jobs_requeued_total", "Jobs requeued by injected failures"
        )
        self.lost_core_seconds = registry.counter(
            "repro_faults_lost_core_seconds_total",
            "Core-seconds of completed work discarded by failure requeues",
        )
        self.downtime_seconds = registry.counter(
            "repro_faults_downtime_seconds_total",
            "Node-downtime accumulated over completed repairs [s]",
        )

    def on_failure(self, requeued: int, lost_core_seconds: float) -> None:
        self.node_failures.inc()
        self.jobs_requeued.inc(requeued)
        self.lost_core_seconds.inc(lost_core_seconds)

    def on_recovery(self, downtime: float) -> None:
        self.node_recoveries.inc()
        self.downtime_seconds.inc(downtime)


class ServiceInstruments:
    """API-surface counters for the always-on scheduler service.

    These count *service commands*, not scheduler decisions — the
    scheduler-side instruments above keep their exact meaning whether the
    stack is driven directly or through the service, which is part of the
    service's bit-identity contract.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        registry: MetricsRegistry = telemetry.registry
        self.commands = registry.counter(
            "repro_service_commands_total", "Service API commands executed"
        )
        self.submissions = registry.counter(
            "repro_service_submissions_total", "Jobs admitted through the service"
        )
        self.admission_rejects = registry.counter(
            "repro_service_admission_rejects_total",
            "Submissions refused by the admission policy",
        )
        self.cancels = registry.counter(
            "repro_service_cancels_total", "Cancel commands executed"
        )
        self.grow_requests = registry.counter(
            "repro_service_grow_requests_total",
            "Dynamic grant requests entered through the service",
        )
        self.cycles = registry.counter(
            "repro_service_cycles_total", "Backend advance cycles (drain batches)"
        )


class ClusterInstruments:
    """Busy-core gauge plus the telemetry busy-integral feed."""

    def __init__(self, telemetry: Telemetry, clock) -> None:
        self.telemetry = telemetry
        self._clock = clock  # the engine: .now is the sim clock
        self.busy_cores = telemetry.registry.gauge(
            "repro_busy_cores", "Cores currently allocated to jobs"
        )

    def on_busy_change(self, busy: int) -> None:
        self.busy_cores.set(busy)
        self.telemetry.on_busy_change(self._clock.now, busy)
