"""The extended TM (task management) interface.

Real Torque exposes TM to applications for process spawning; the paper adds
two calls (Section III-B):

* ``tm_dynget(request, callback)`` — ask the batch system for additional
  resources.  The request travels through the mother superior to the server,
  the job enters the ``dynqueued`` state, a scheduling cycle is triggered and
  the answer (a hostlist, or a rejection) comes back asynchronously.
* ``tm_dynfree(nodes)`` — release a subset of the current allocation;
  practically always succeeds.

A :class:`TMContext` is handed to the application model when its job starts;
it is the *only* channel through which applications talk to the batch system,
exactly like the real TM API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.jobs.job import Job, JobState
from repro.sim.engine import Engine, EventHandle

if TYPE_CHECKING:
    from repro.rms.server import Server

__all__ = ["TMContext"]


class TMContext:
    """Per-job runtime handle given to the application model."""

    def __init__(self, server: "Server", job: Job) -> None:
        self._server = server
        self.job = job
        self._timers: list[EventHandle] = []
        #: registered by malleable applications: ``handler(cores_wanted)``
        #: releases what it can afford via ``tm_dynfree`` and returns the
        #: number of cores actually given up
        self.shrink_handler: Callable[[int], int] | None = None
        #: registered by checkpointable applications: called right before a
        #: preemption tears the job down, so the application can stash its
        #: progress (typically into ``job.metadata``) and resume from it at
        #: the next launch instead of restarting from scratch
        self.checkpoint_handler: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # clock access for application-side events
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        return self._server.engine

    @property
    def now(self) -> float:
        return self._server.engine.now

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule an application-side event; auto-cancelled at job end."""
        handle = self._server.engine.after(delay, callback, *args)
        self._timers.append(handle)
        return handle

    def _cancel_all_timers(self) -> None:
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # allocation state
    # ------------------------------------------------------------------
    @property
    def allocation(self) -> Allocation:
        if self.job.allocation is None:
            raise RuntimeError(f"{self.job.job_id} holds no allocation")
        return self.job.allocation

    @property
    def cores(self) -> int:
        return self.allocation.total_cores

    def hostlist(self) -> list[str]:
        """Current hostlist as MPI would see it for spawn operations."""
        return self.allocation.hostlist()

    # ------------------------------------------------------------------
    # the extended TM calls
    # ------------------------------------------------------------------
    def tm_dynget(
        self,
        request: ResourceRequest,
        callback: Callable[[Allocation | None], None],
        *,
        timeout: float | None = None,
        on_estimate: Callable[[float], None] | None = None,
    ) -> None:
        """Request additional resources at runtime.

        Only one dynamic request per job may be pending (the mother superior
        serialises them); a second concurrent call raises ``RuntimeError``.
        ``callback`` receives the granted :class:`Allocation` or ``None``.

        Passing ``timeout`` switches to the negotiation protocol (extension
        of the paper's Section III-C outlook): the batch system keeps the
        request until resources arrive or the timeout expires, publishing
        earliest-availability estimates through ``on_estimate``; the
        application continues computing meanwhile.
        """
        if self.job.state is JobState.DYNQUEUED:
            raise RuntimeError(
                f"{self.job.job_id} already has a pending dynamic request"
            )
        if not self.job.is_active:
            raise RuntimeError(f"{self.job.job_id} is not running")
        self._server.dyn_request(
            self.job, request, callback, timeout=timeout, on_estimate=on_estimate
        )

    def tm_dynfree(self, cores_by_node: Mapping[int, int]) -> bool:
        """Release part of the job's allocation.  Returns True on success.

        Mirrors the paper's semantics: the release "usually returns true";
        the failure modes are protocol errors (releasing cores the job does
        not hold, or stripping the mother superior), which surface as a
        ``False`` return instead of an exception so applications can shrug
        them off like the real call does.
        """
        try:
            released = self.allocation.subset(cores_by_node)
        except ValueError:
            return False
        if released.is_empty:
            return False
        try:
            self._server.dyn_free(self.job, released)
        except RuntimeError:
            return False
        return True

    def tm_extend_walltime(
        self, extra_seconds: float, callback: Callable[[Allocation | None], None]
    ) -> None:
        """Request extra runtime on the current allocation.

        Runtime elasticity in the *time* dimension (after Kumar et al.,
        IPDPSW 2012 — paper ref. [23]): the request goes through the same
        dynamic queue and fairness policies as resource requests; the
        hypothetical reservation is the job's own cores held past the
        original walltime.
        """
        if self.job.state is JobState.DYNQUEUED:
            raise RuntimeError(
                f"{self.job.job_id} already has a pending dynamic request"
            )
        if not self.job.is_active:
            raise RuntimeError(f"{self.job.job_id} is not running")
        self._server.extend_walltime_request(self.job, extra_seconds, callback)

    def register_checkpoint_handler(self, handler: Callable[[], None]) -> None:
        """Declare this job checkpointable under preemption.

        Maui's PREEMPTPOLICY distinguishes REQUEUE (restart from scratch,
        the default here) from CHECKPOINT; applications that register a
        handler get the latter: the handler runs right before teardown and
        the application restores its progress on relaunch.
        """
        self.checkpoint_handler = handler

    def register_shrink_handler(self, handler: Callable[[int], int]) -> None:
        """Declare this job malleable: the scheduler may ask it to shrink.

        The handler receives the number of cores the scheduler would like
        back, releases whatever the application can afford through
        ``tm_dynfree``, and returns the count actually released.
        """
        self.shrink_handler = handler

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """The application has completed; the job exits normally."""
        self._server.complete_job(self.job)

    def __repr__(self) -> str:
        return f"<TMContext {self.job.job_id} cores={self.job.allocation and self.job.allocation.total_cores}>"
