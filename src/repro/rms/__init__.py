"""Torque-like resource management layer.

Mirrors the paper's extended Torque (Section III-B): a ``pbs_server``
(:class:`~repro.rms.server.Server`), per-node ``pbs_mom`` daemons with a
mother-superior per job (:mod:`repro.rms.mom`), and the extended TM task
interface exposing ``tm_dynget`` / ``tm_dynfree`` to applications
(:mod:`repro.rms.tm`).
"""

from repro.rms.mom import Mom, MomManager
from repro.rms.server import Server
from repro.rms.tm import TMContext

__all__ = ["Mom", "MomManager", "Server", "TMContext"]
