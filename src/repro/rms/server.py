"""The ``pbs_server``: job queues, lifecycle, and the dynamic-request path.

The server owns all job state transitions.  The scheduler (a separate
component, as in Torque/Maui) decides *what* to run and calls back into the
server to actually start jobs, grant or reject dynamic requests, and preempt
backfilled jobs.  Every transition is recorded in the shared trace log.

Workflow for a dynamic allocation (paper Fig. 3):

1. application calls ``tm_dynget`` on its :class:`~repro.rms.tm.TMContext`
2. the mother superior forwards it here → job enters ``dynqueued``,
   a :class:`~repro.jobs.queue.DynRequest` is appended to the FIFO dynamic
   queue, and a scheduling cycle is triggered
3. the scheduler resolves the request via :meth:`Server.grant_dynamic` or
   :meth:`Server.reject_dynamic`; on grant the new nodes ``dyn_join`` and the
   application receives the expanded hostlist.
"""

from __future__ import annotations

import logging
from typing import Callable, Protocol

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.cluster.node import NodeState
from repro.jobs.job import Job, JobState
from repro.jobs.queue import DynRequest, JobQueue
from repro.rms.mom import MomManager
from repro.rms.tm import TMContext
from repro.sim.engine import Engine, EventHandle, PRIORITY_LIMIT
from repro.sim.events import EventKind, TraceLog

__all__ = ["Server", "Application"]

log = logging.getLogger("repro.rms.server")


class Application(Protocol):
    """Anything that can run inside a job.

    ``launch`` is called each time the job (re)starts — after a preemption
    the application starts over, so implementations must reset their state on
    every call.
    """

    def launch(self, ctx: TMContext) -> None:  # pragma: no cover - protocol
        ...


class Server:
    """The resource manager server daemon."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        trace: TraceLog | None = None,
        *,
        telemetry=None,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.trace = trace if trace is not None else TraceLog()
        #: optional :class:`repro.obs.Telemetry`; None = fully uninstrumented
        self.telemetry = telemetry
        self._obs = None
        if telemetry is not None and telemetry.enabled:
            from repro.obs.instruments import ServerInstruments

            self._obs = ServerInstruments(telemetry)
        self.moms = MomManager(cluster)
        self.queue = JobQueue()
        #: FIFO of unresolved dynamic requests (paper: prioritised FIFO).
        self.dyn_queue: list[DynRequest] = []
        self.jobs: dict[str, Job] = {}
        #: jobs currently holding resources — the scheduler's working set.
        #: ``jobs`` grows without bound over a run; every hot-path consumer
        #: (statistics accrual, profile construction, preemption planning)
        #: reads this index instead of scanning history.
        self._active_jobs: dict[str, Job] = {}
        #: jobs that finished since the scheduler last accrued usage; the
        #: statistics update drains this so final run segments are charged
        #: exactly once without re-scanning all finished jobs
        self._finished_unaccounted: list[Job] = []
        #: monotone counter bumped on every state change; the scheduler's
        #: availability-profile cache keys its validity on it
        self.state_version: int = 0
        self._active_jobs_cache: list[Job] = []
        self._active_jobs_cache_version: int = -1
        #: bumps whenever a *running* job's walltime is extended — the one
        #: mutation that moves a future release without touching cluster
        #: state; the scheduler's per-shard quiescence fingerprints key
        #: their active-job signature cache on it
        self.walltime_epoch: int = 0
        self._apps: dict[str, Application | None] = {}
        self._contexts: dict[str, TMContext] = {}
        self._walltime_limits: dict[str, EventHandle] = {}
        #: invoked (coalesced by the scheduler) whenever job/resource state
        #: changes — the Maui wake-up condition (i) of Section III-A.
        self.on_state_change: Callable[[], None] | None = None
        #: invoked with the node index after a node actually fails or
        #: recovers — the scheduler re-plans reservations laid on the old
        #: node set (repro.faults drives these transitions)
        self.on_node_event: Callable[[int], None] | None = None
        #: optional transient-failure hooks (:mod:`repro.faults`); None
        #: keeps the grant-delivery path a single attribute-is-None check
        self._faults = None
        #: in-flight grant deliveries awaiting a retry after a transient
        #: delivery failure, keyed by job id (one pending dreq per job)
        self._pending_deliveries: dict[str, tuple[EventHandle, DynRequest, Allocation, int]] = {}
        #: optional :class:`repro.obs.windows.WindowedMetrics`; None keeps
        #: teardown and _notify a single attribute-is-None check each
        self._windows = None
        #: with fold-and-discard, folded jobs are dropped from ``jobs`` once
        #: the scheduler has accrued their final fairshare segment
        self._discard_folded = False
        #: count of jobs discarded after folding (bounded-memory replays)
        self.jobs_discarded = 0
        #: terminal states of discarded jobs, so ``afterok``/``afterany``
        #: dependencies on them still resolve.  A str->JobState entry is
        #: ~two orders of magnitude smaller than a retained Job object.
        self._discarded_states: dict[str, JobState] = {}

    def attach_faults(self, faults) -> None:
        """Install transient-failure hooks (``repro.faults.TransientFaults``)."""
        self._faults = faults

    def attach_windows(self, windows, *, fold_and_discard: bool = False) -> None:
        """Install streaming windowed aggregation (``repro.obs.windows``).

        Every finishing job is folded into ``windows`` at teardown; with
        ``fold_and_discard`` it is additionally dropped from the ``jobs``
        index after :meth:`drain_finished_for_stats` hands it to the
        scheduler, so long replays hold O(windows) memory instead of
        O(jobs).  Note that retained-job reporting
        (:meth:`~repro.metrics.collector.WorkloadMetrics.from_server`)
        is unavailable once jobs have been discarded.
        """
        self._windows = windows
        self._discard_folded = bool(fold_and_discard)

    # ------------------------------------------------------------------
    def _notify(self) -> None:
        self.state_version += 1
        if self._windows is not None:
            self._windows.observe_queue_depth(self.engine.now, len(self.queue))
        if self.on_state_change is not None:
            self.on_state_change()

    def active_jobs(self) -> list[Job]:
        """Jobs currently holding resources, in start order.

        Cached on :attr:`state_version` — membership and start order only
        change through state transitions, every one of which bumps the
        counter via ``_notify``.  Hands out a copy because callers extend
        and re-sort the list they get.
        """
        if self._active_jobs_cache_version != self.state_version:
            active = list(self._active_jobs.values())
            active.sort(key=lambda j: (j.start_time, j.seq))
            self._active_jobs_cache = active
            self._active_jobs_cache_version = self.state_version
        return self._active_jobs_cache.copy()

    @property
    def active_count(self) -> int:
        """Number of jobs currently holding resources (O(1))."""
        return len(self._active_jobs)

    def drain_finished_for_stats(self) -> list[Job]:
        """Jobs finished since the last drain, in completion order.

        Owned by the scheduler's statistics update: each finished job must
        have its final ``[last stats time, end_time]`` segment charged once.
        Preempted jobs are deliberately *not* listed — their ``start_time``
        is reset on preemption, matching the historical accounting rule
        that a preempted segment accrues no fairshare usage.

        With fold-and-discard active, each drained job is dropped from the
        server's indexes here — the returned list keeps the objects alive
        exactly long enough for the caller's final fairshare accrual, after
        which nothing references them and they are collectable.  Their
        terminal state survives in a compact map so dependencies on them
        still resolve.
        """
        drained = self._finished_unaccounted
        self._finished_unaccounted = []
        if self._discard_folded and drained:
            for job in drained:
                if self.jobs.pop(job.job_id, None) is not None:
                    self._apps.pop(job.job_id, None)
                    self._discarded_states[job.job_id] = job.state
                    self.jobs_discarded += 1
        return drained

    def dependency_satisfied(self, job: Job) -> bool:
        """Is this job's dependency (if any) fulfilled?

        An unknown dependency target counts as unsatisfied — a dangling
        ``afterok`` must hold the job back, not release it.  A dependency on
        a failed job is *never* satisfiable under ``afterok``; callers may
        use :meth:`dependency_failed` to cancel such jobs.
        """
        if job.depends_on is None:
            return True
        target = self.jobs.get(job.depends_on)
        if target is None:
            # a discarded target was torn down, so it started and finished;
            # only its terminal state still matters
            state = self._discarded_states.get(job.depends_on)
            if state is None:
                return False
            return job.dependency_type != "afterok" or state is JobState.COMPLETED
        if job.dependency_type == "after":
            return target.start_time is not None
        if job.dependency_type == "afterok":
            return target.state is JobState.COMPLETED
        return target.is_finished  # afterany

    def dependency_failed(self, job: Job) -> bool:
        """True when the dependency can no longer ever be satisfied."""
        if job.depends_on is None:
            return False
        target = self.jobs.get(job.depends_on)
        if target is None:
            return (
                job.dependency_type == "afterok"
                and self._discarded_states.get(job.depends_on) is JobState.ABORTED
            )
        return (
            job.dependency_type == "afterok"
            and target.state is JobState.ABORTED
        )

    # ------------------------------------------------------------------
    # submission (qsub)
    # ------------------------------------------------------------------
    def submit(self, job: Job, app: Application | None = None) -> Job:
        """Queue a job.  ``app`` defaults to "run for the full walltime"."""
        if job.job_id in self.jobs:
            raise ValueError(f"{job.job_id} already submitted")
        job.submit_time = self.engine.now
        job.state = JobState.QUEUED
        self.jobs[job.job_id] = job
        self._apps[job.job_id] = app
        self.queue.push(job)
        self.trace.record(
            self.engine.now,
            EventKind.JOB_SUBMIT,
            job_id=job.job_id,
            user=job.user,
            request=str(job.request),
            walltime=job.walltime,
            evolving=job.is_evolving,
        )
        log.info("qsub %s user=%s %s wall=%.0fs", job.job_id, job.user,
                 job.request, job.walltime)
        obs = self._obs
        if obs is not None:
            obs.submitted.inc()
            obs.update_depths(self)
        self._notify()
        return job

    # ------------------------------------------------------------------
    # start / completion (driven by the scheduler and applications)
    # ------------------------------------------------------------------
    def start_job(self, job: Job, allocation: Allocation, *, backfilled: bool = False) -> None:
        """Start a queued job on the given allocation (scheduler's ``qrun``)."""
        if job.state is not JobState.QUEUED:
            raise RuntimeError(f"{job.job_id} is {job.state.value}, cannot start")
        if allocation.total_cores < job.moldable_floor:
            raise RuntimeError(
                f"{job.job_id} allocation {allocation.total_cores}c smaller than "
                f"the acceptable minimum {job.moldable_floor}c"
            )
        self.cluster.claim(allocation)
        self.queue.remove(job)
        job.state = JobState.RUNNING
        job.start_time = self.engine.now
        job.allocation = allocation
        job.backfilled = backfilled
        self._active_jobs[job.job_id] = job
        ms = self.moms.join(job, allocation)
        self.trace.record(
            self.engine.now,
            EventKind.BACKFILL_START if backfilled else EventKind.JOB_START,
            job_id=job.job_id,
            user=job.user,
            cores=allocation.total_cores,
            nodes=list(allocation.node_indices),
            cores_by_node=dict(allocation.items()),
            mother_superior=ms,
            wait=job.wait_time,
        )
        log.info("start %s on %dc (backfill=%s wait=%.0fs)", job.job_id,
                 allocation.total_cores, backfilled, job.wait_time or 0.0)
        obs = self._obs
        if obs is not None:
            obs.started.inc()
            obs.update_depths(self)
        # walltime enforcement: the job is killed when its time slice expires
        self._walltime_limits[job.job_id] = self.engine.after(
            job.walltime, self._walltime_expired, job, priority=PRIORITY_LIMIT
        )
        ctx = TMContext(self, job)
        self._contexts[job.job_id] = ctx
        app = self._apps[job.job_id]
        if app is not None:
            app.launch(ctx)
        else:
            ctx.after(job.walltime, ctx.finish)
        self._notify()

    def complete_job(self, job: Job) -> None:
        """Normal completion, reported by the application through TM."""
        self._teardown(job, JobState.COMPLETED, EventKind.JOB_END)
        self._notify()

    def _walltime_expired(self, job: Job) -> None:
        if not job.is_active:
            return
        self._teardown(job, JobState.ABORTED, EventKind.JOB_ABORT, reason="walltime")
        self._notify()

    def abort_job(self, job: Job, reason: str) -> None:
        """Abnormal termination requested by the application or operator."""
        self._teardown(job, JobState.ABORTED, EventKind.JOB_ABORT, reason=reason)
        self._notify()

    def hold_job(self, job: Job, kind: str = "user") -> None:
        """Place a hold on a queued job (Torque ``qhold``).

        Held jobs stay in the queue but are excluded from scheduling until
        :meth:`release_hold`; ``kind`` distinguishes operator/system holds
        from user holds in diagnostics (``scheduler.explain``).
        """
        if kind not in ("user", "system"):
            raise ValueError(f"unknown hold kind: {kind!r}")
        if job.state is not JobState.QUEUED:
            raise RuntimeError(f"{job.job_id} is {job.state.value}, cannot hold")
        job.hold = kind
        self.trace.record(
            self.engine.now,
            EventKind.JOB_HOLD,
            job_id=job.job_id,
            user=job.user,
            hold=kind,
        )
        log.info("qhold %s (%s hold)", job.job_id, kind)
        self._notify()

    def release_hold(self, job: Job) -> None:
        """Release a held job back into scheduling (Torque ``qrls``)."""
        if job.hold is None:
            return
        job.hold = None
        self.trace.record(
            self.engine.now,
            EventKind.JOB_RELEASE,
            job_id=job.job_id,
            user=job.user,
        )
        log.info("qrls %s", job.job_id)
        self._notify()

    def cancel_queued(self, job: Job, reason: str = "cancelled") -> None:
        """Remove a queued job before it ever starts (``qdel``)."""
        if job.state is not JobState.QUEUED:
            raise RuntimeError(f"{job.job_id} is {job.state.value}, not queued")
        self.queue.remove(job)
        job.state = JobState.ABORTED
        job.end_time = self.engine.now
        self.trace.record(
            self.engine.now,
            EventKind.JOB_ABORT,
            job_id=job.job_id,
            user=job.user,
            cores=0,
            runtime=0.0,
            reason=reason,
        )

    def _teardown(self, job: Job, state: JobState, kind: EventKind, **extra) -> None:
        if not job.is_active:
            raise RuntimeError(f"{job.job_id} is {job.state.value}, cannot tear down")
        # a pending dynamic request dies with the job
        for dreq in [d for d in self.dyn_queue if d.job is job]:
            self.dyn_queue.remove(dreq)
        self._cancel_pending_delivery(job, resolve=False)
        limit = self._walltime_limits.pop(job.job_id, None)
        if limit is not None:
            limit.cancel()
        ctx = self._contexts.pop(job.job_id)
        ctx._cancel_all_timers()
        assert job.allocation is not None
        self.moms.exit(job)
        self.cluster.release(job.allocation)
        job.state = state
        job.end_time = self.engine.now
        self._active_jobs.pop(job.job_id, None)
        self._finished_unaccounted.append(job)
        if self._windows is not None:
            self._windows.fold_job(job)
        self.trace.record(
            self.engine.now,
            kind,
            job_id=job.job_id,
            user=job.user,
            cores=job.allocation.total_cores,
            runtime=job.end_time - (job.start_time or job.end_time),
            **extra,
        )
        log.info("%s %s after %.0fs", kind.value, job.job_id,
                 job.end_time - (job.start_time or job.end_time))
        obs = self._obs
        if obs is not None:
            (obs.completed if state is JobState.COMPLETED else obs.aborted).inc()
            obs.update_depths(self)

    # ------------------------------------------------------------------
    # dynamic allocation path
    # ------------------------------------------------------------------
    def dyn_request(
        self,
        job: Job,
        request: ResourceRequest,
        callback: Callable[[Allocation | None], None],
        *,
        timeout: float | None = None,
        on_estimate: Callable[[float], None] | None = None,
    ) -> DynRequest:
        """Queue a runtime resource request (job → ``dynqueued``).

        With ``timeout`` (seconds from now) the request uses the negotiation
        protocol: it stays queued until resources arrive or the deadline
        passes, and ``on_estimate`` receives the scheduler's availability
        estimates along the way.
        """
        if job.state is not JobState.RUNNING:
            raise RuntimeError(
                f"{job.job_id} is {job.state.value}; dynamic request needs RUNNING"
            )
        if timeout is not None and timeout <= 0:
            raise ValueError(f"negotiation timeout must be positive: {timeout}")
        job.state = JobState.DYNQUEUED
        deadline = None if timeout is None else self.engine.now + timeout
        dreq = DynRequest(
            job=job,
            request=request,
            submit_time=self.engine.now,
            callback=callback,
            deadline=deadline,
            on_estimate=on_estimate,
        )
        self.dyn_queue.append(dreq)
        if deadline is not None:
            self.engine.at(deadline, self._negotiation_expired, dreq)
        self.trace.record(
            self.engine.now,
            EventKind.DYN_REQUEST,
            job_id=job.job_id,
            user=job.user,
            request=str(request),
            negotiated=dreq.negotiated,
        )
        log.info("dyn_request %s wants %s%s", job.job_id, request,
                 " (negotiated)" if dreq.negotiated else "")
        obs = self._obs
        if obs is not None:
            obs.dyn_requests.inc()
            obs.update_depths(self)
        self._notify()
        return dreq

    def extend_walltime_request(
        self,
        job: Job,
        extra_seconds: float,
        callback: Callable[[Allocation | None], None],
    ) -> DynRequest:
        """Ask for more *time* on the current allocation (Kumar et al. [23]).

        Queued like a dynamic resource request; the scheduler measures the
        delay the longer reservation would cause to planned jobs and applies
        the same DFS policies.  On grant the callback receives the job's own
        (unchanged) allocation; on rejection, None.
        """
        if job.state is not JobState.RUNNING:
            raise RuntimeError(
                f"{job.job_id} is {job.state.value}; extension needs RUNNING"
            )
        if extra_seconds <= 0:
            raise ValueError(f"extension must be positive: {extra_seconds}")
        job.state = JobState.DYNQUEUED
        dreq = DynRequest(
            job=job,
            request=None,
            submit_time=self.engine.now,
            callback=callback,
            extend_walltime=extra_seconds,
        )
        self.dyn_queue.append(dreq)
        self.trace.record(
            self.engine.now,
            EventKind.DYN_REQUEST,
            job_id=job.job_id,
            user=job.user,
            request=f"walltime+{extra_seconds:.0f}s",
            negotiated=False,
        )
        log.info("extension request %s +%.0fs", job.job_id, extra_seconds)
        obs = self._obs
        if obs is not None:
            obs.dyn_requests.inc()
            obs.update_depths(self)
        self._notify()
        return dreq

    def grant_walltime_extension(self, dreq: DynRequest) -> None:
        """Extend the job's time slice (the extension analogue of a grant)."""
        job = dreq.job
        if dreq not in self.dyn_queue:
            raise RuntimeError(f"{dreq!r} is not pending")
        assert dreq.extend_walltime is not None
        self.dyn_queue.remove(dreq)
        job.walltime += dreq.extend_walltime
        self.walltime_epoch += 1
        # move the kill switch to the new limit
        limit = self._walltime_limits.pop(job.job_id, None)
        if limit is not None:
            limit.cancel()
        assert job.start_time is not None
        self._walltime_limits[job.job_id] = self.engine.at(
            job.walltime_end, self._walltime_expired, job, priority=PRIORITY_LIMIT
        )
        job.state = JobState.RUNNING
        job.dyn_granted += 1
        self.trace.record(
            self.engine.now,
            EventKind.DYN_GRANT,
            job_id=job.job_id,
            user=job.user,
            cores=0,
            nodes=[],
            walltime_extension=dreq.extend_walltime,
            new_walltime=job.walltime,
        )
        # dedicated observation for the extension path (previously only the
        # generic cores=0 DYN_GRANT hinted at what actually happened)
        self.trace.record(
            self.engine.now,
            EventKind.WALLTIME_EXTENSION_GRANT,
            job_id=job.job_id,
            user=job.user,
            extension=dreq.extend_walltime,
            new_walltime=job.walltime,
        )
        log.info("extension granted %s -> walltime %.0fs", job.job_id, job.walltime)
        obs = self._obs
        if obs is not None:
            obs.dyn_grants.inc()
            if job.dyn_granted == 1 and job.is_evolving:
                obs.satisfied_jobs.inc()
            obs.update_depths(self)
        dreq.resolve(job.allocation)
        self._notify()

    def _negotiation_expired(self, dreq: DynRequest) -> None:
        if dreq.resolved or dreq not in self.dyn_queue:
            return
        self.reject_dynamic(dreq, "negotiation timeout")

    def grant_dynamic(self, dreq: DynRequest, allocation: Allocation) -> None:
        """Expand the job's allocation (scheduler decided the request is fair).

        With transient faults attached (:meth:`attach_faults`) the delivery
        of the grant to the mother superior can be dropped; the server then
        retries with exponential backoff (the cores are *not* held across
        the backoff — a retry re-claims and may find the allocation stale)
        and, after exhausting the retry budget, degrades gracefully: the
        application continues at its current allocation, exactly as on a
        rejection.  Without faults this is the single historical code path.
        """
        if dreq not in self.dyn_queue:
            raise RuntimeError(f"{dreq!r} is not pending")
        self.dyn_queue.remove(dreq)
        faults = self._faults
        if faults is not None and faults.drop_delivery(dreq.job.job_id, 1):
            self._delivery_failed(dreq, allocation, attempt=1, reason="delivery dropped")
            return
        self._deliver_grant(dreq, allocation)

    def _deliver_grant(self, dreq: DynRequest, allocation: Allocation) -> None:
        """Actually hand the expanded allocation to the job (may raise)."""
        job = dreq.job
        self.cluster.claim(allocation)
        self.moms.dyn_join(job, allocation)
        assert job.allocation is not None
        job.allocation = job.allocation + allocation
        job.state = JobState.RUNNING
        job.dyn_granted += 1
        self.trace.record(
            self.engine.now,
            EventKind.DYN_GRANT,
            job_id=job.job_id,
            user=job.user,
            cores=allocation.total_cores,
            nodes=list(allocation.node_indices),
            cores_by_node=dict(allocation.items()),
            total_cores=job.allocation.total_cores,
        )
        log.info("dyn_grant %s +%dc -> %dc", job.job_id,
                 allocation.total_cores, job.allocation.total_cores)
        obs = self._obs
        if obs is not None:
            obs.dyn_grants.inc()
            if job.dyn_granted == 1 and job.is_evolving:
                obs.satisfied_jobs.inc()
            obs.update_depths(self)
        dreq.resolve(allocation)
        self._notify()

    def _delivery_failed(
        self, dreq: DynRequest, allocation: Allocation, *, attempt: int, reason: str
    ) -> None:
        """A grant delivery attempt failed: schedule a retry or degrade."""
        job = dreq.job
        self.trace.record(
            self.engine.now,
            EventKind.GRANT_DELIVERY_FAIL,
            job_id=job.job_id,
            user=job.user,
            cores=allocation.total_cores,
            nodes=list(allocation.node_indices),
            attempt=attempt,
            reason=reason,
        )
        log.warning("grant delivery to %s failed (attempt %d): %s",
                    job.job_id, attempt, reason)
        faults = self._faults
        if faults is None or attempt > faults.max_retries:
            self._degrade_delivery(dreq, attempts=attempt, reason=reason)
            return
        faults.note_retry()
        delay = faults.retry_delay(attempt)
        handle = self.engine.after(
            delay, self._retry_delivery, dreq, allocation, attempt + 1
        )
        self._pending_deliveries[job.job_id] = (handle, dreq, allocation, attempt)

    def _retry_delivery(
        self, dreq: DynRequest, allocation: Allocation, attempt: int
    ) -> None:
        job = dreq.job
        self._pending_deliveries.pop(job.job_id, None)
        if dreq.resolved:
            # cancelled while the retry was in flight (preemption, teardown,
            # or the node-failure audit already settled this request)
            return
        faults = self._faults
        if faults is not None and faults.drop_delivery(job.job_id, attempt):
            self._delivery_failed(dreq, allocation, attempt=attempt, reason="delivery dropped")
            return
        try:
            self._deliver_grant(dreq, allocation)
        except ValueError as exc:
            # the allocation went stale during the backoff — a node failed
            # or the cores were claimed by someone else.  Counts as a
            # failed attempt; the retry budget keeps this bounded.
            self._delivery_failed(dreq, allocation, attempt=attempt, reason=str(exc))

    def _degrade_delivery(self, dreq: DynRequest, *, attempts: int, reason: str) -> None:
        """Retry budget exhausted: fail the request cleanly.

        Graceful degradation (paper Section I's fault-tolerance motivation):
        the application sees an ordinary rejection and continues at its
        current allocation.
        """
        job = dreq.job
        faults = self._faults
        if faults is not None:
            faults.note_degraded()
        job.dyn_rejected += 1
        if job.state is JobState.DYNQUEUED:
            job.state = JobState.RUNNING
        self.trace.record(
            self.engine.now,
            EventKind.DYN_REJECT,
            job_id=job.job_id,
            user=job.user,
            request=str(dreq.request),
            reason=f"grant delivery failed after {attempts} attempt(s): {reason}",
        )
        log.info("dyn_grant to %s degraded after %d attempt(s)", job.job_id, attempts)
        obs = self._obs
        if obs is not None:
            obs.dyn_rejects.inc()
            obs.update_depths(self)
        if not dreq.resolved:
            dreq.resolve(None)
        self._notify()

    def _cancel_pending_delivery(self, job: Job, *, resolve: bool) -> None:
        """Drop an in-flight delivery retry when its job leaves RUNNING.

        The owning job is being requeued or torn down: the retry timer must
        not fire a grant at a dead allocation.  ``resolve`` delivers a clean
        rejection to the (old) application callback — used on preemption,
        matching how pending ``dyn_queue`` entries are handled there — while
        teardown drops the request silently, like :meth:`_teardown` does.
        """
        pending = self._pending_deliveries.pop(job.job_id, None)
        if pending is None:
            return
        handle, dreq, _allocation, _attempt = pending
        handle.cancel()
        if resolve and not dreq.resolved:
            dreq.resolve(None)

    def reject_dynamic(self, dreq: DynRequest, reason: str = "") -> None:
        """Reject the request; the application continues on its current set."""
        job = dreq.job
        if dreq not in self.dyn_queue:
            raise RuntimeError(f"{dreq!r} is not pending")
        self.dyn_queue.remove(dreq)
        job.state = JobState.RUNNING
        job.dyn_rejected += 1
        self.trace.record(
            self.engine.now,
            EventKind.DYN_REJECT,
            job_id=job.job_id,
            user=job.user,
            request=str(dreq.request),
            reason=reason,
        )
        log.info("dyn_reject %s: %s", job.job_id, reason or "no reason")
        obs = self._obs
        if obs is not None:
            obs.dyn_rejects.inc()
            obs.update_depths(self)
        dreq.resolve(None)
        # no notify: a rejection frees nothing and starts nothing

    def dyn_free(self, job: Job, released: Allocation) -> None:
        """Release part of a running job's allocation (``tm_dynfree``)."""
        if not job.is_active:
            raise RuntimeError(f"{job.job_id} is not active")
        self.moms.dyn_disjoin(job, released)
        assert job.allocation is not None
        job.allocation = job.allocation - released
        self.cluster.release(released)
        self.trace.record(
            self.engine.now,
            EventKind.DYN_RELEASE,
            job_id=job.job_id,
            user=job.user,
            cores=released.total_cores,
            nodes=list(released.node_indices),
            cores_by_node=dict(released.items()),
            total_cores=job.allocation.total_cores,
        )
        self._notify()

    def request_shrink(self, job: Job, cores_wanted: int) -> int:
        """Ask a running malleable job to give back up to ``cores_wanted``.

        Returns the number of cores actually released (0 when the job has no
        shrink handler or cannot afford any).  This is the batch-system side
        of malleability (paper Sections I and II-B): the *scheduler*
        initiates the operation, the application decides how much it can
        shed and performs the release through ``tm_dynfree``.
        """
        if not job.is_active:
            raise RuntimeError(f"{job.job_id} is not active")
        if cores_wanted <= 0:
            raise ValueError(f"cores_wanted must be positive: {cores_wanted}")
        ctx = self._contexts.get(job.job_id)
        if ctx is None or ctx.shrink_handler is None:
            return 0
        assert job.allocation is not None
        before = job.allocation.total_cores
        released = ctx.shrink_handler(cores_wanted)
        actual = before - job.allocation.total_cores
        if released != actual:
            raise RuntimeError(
                f"{job.job_id}: shrink handler reported {released} cores "
                f"but released {actual}"
            )
        if actual:
            # the DYN_RELEASE events recorded by the handler's tm_dynfree
            # calls show cores moving, but not *why*: this marks the
            # scheduler-initiated shrink as its own observation
            self.trace.record(
                self.engine.now,
                EventKind.MALLEABLE_SHRINK,
                job_id=job.job_id,
                user=job.user,
                cores_wanted=cores_wanted,
                cores_released=actual,
            )
            log.info("malleable shrink %s released %dc of %dc wanted",
                     job.job_id, actual, cores_wanted)
        return actual

    def merge_allocations(self, stub: Job, parent: Job) -> Allocation:
        """Fold a running helper job's allocation into another running job.

        This is the SLURM expand/shrink idiom the paper contrasts with its
        own design (Section V): the application submits a *dependent* job
        sized like the desired expansion; once that job starts, its
        allocation is merged into the parent and the helper terminates.
        Returns the transferred allocation.
        """
        if stub is parent:
            raise ValueError("cannot merge a job into itself")
        if not stub.is_active or not parent.is_active:
            raise RuntimeError("both jobs must be running to merge")
        assert stub.allocation is not None and parent.allocation is not None
        transferred = stub.allocation
        # node-side: helper processes exit, parent spans the new nodes
        self.moms.exit(stub)
        self.moms.dyn_join(parent, transferred)
        # cluster core counts are unchanged: ownership moves, usage doesn't
        limit = self._walltime_limits.pop(stub.job_id, None)
        if limit is not None:
            limit.cancel()
        ctx = self._contexts.pop(stub.job_id)
        ctx._cancel_all_timers()
        stub.state = JobState.COMPLETED
        stub.end_time = self.engine.now
        self._active_jobs.pop(stub.job_id, None)
        self._finished_unaccounted.append(stub)
        if self._windows is not None:
            self._windows.fold_job(stub)
        stub.allocation = None
        parent.allocation = parent.allocation + transferred
        parent.dyn_granted += 1
        # cores=0: the busy-core ledger already counts the transferred cores
        # from the stub's start event; the parent's end event releases them.
        self.trace.record(
            self.engine.now,
            EventKind.JOB_END,
            job_id=stub.job_id,
            user=stub.user,
            cores=0,
            runtime=stub.end_time - (stub.start_time or stub.end_time),
            merged_into=parent.job_id,
        )
        self.trace.record(
            self.engine.now,
            EventKind.DYN_GRANT,
            job_id=parent.job_id,
            user=parent.user,
            cores=0,
            nodes=list(transferred.node_indices),
            total_cores=parent.allocation.total_cores,
            merged_from=stub.job_id,
        )
        obs = self._obs
        if obs is not None:
            obs.dyn_grants.inc()
            if parent.dyn_granted == 1 and parent.is_evolving:
                obs.satisfied_jobs.inc()
            obs.update_depths(self)
        self._notify()
        return transferred

    # ------------------------------------------------------------------
    # node failures (fault tolerance, paper Section I)
    # ------------------------------------------------------------------
    def handle_node_failure(self, node_index: int, *, requeue: bool = True) -> list[Job]:
        """A compute node died: requeue (or abort) every job touching it.

        Returns the affected jobs.  Dynamic allocation improves fault
        tolerance "by allocating spare nodes to affected jobs" (Section I);
        here affected jobs are requeued and the scheduler restarts them on
        the surviving nodes at the next iteration.

        Idempotent: a repeat failure report for a node that is already DOWN
        is a no-op — no trace event, no state-version bump, no scheduler
        wake-up.
        """
        if self.cluster.node(node_index).state is NodeState.DOWN:
            return []
        affected = [
            j
            for j in self.active_jobs()
            if j.allocation is not None and node_index in j.allocation
        ]
        self.trace.record(
            self.engine.now,
            EventKind.NODE_FAIL,
            node=node_index,
            affected=[j.job_id for j in affected],
        )
        log.warning("node %d failed; %d job(s) affected", node_index, len(affected))
        # audit in-flight grant deliveries first: a retry holding an
        # allocation that touches the dead node can never succeed, and its
        # owner may not itself be an affected job — fail those cleanly now
        # rather than letting the timer burn the rest of its retry budget
        for job_id, pending in list(self._pending_deliveries.items()):
            handle, pdreq, pallocation, attempt = pending
            if node_index not in pallocation:
                continue
            del self._pending_deliveries[job_id]
            handle.cancel()
            if not pdreq.resolved:
                self._degrade_delivery(
                    pdreq,
                    attempts=attempt,
                    reason=f"node {node_index} failed during delivery",
                )
        # release every affected job so the node is fully idle
        for job in affected:
            if requeue:
                self.preempt_job(job)
                job.metadata["node_failures"] = job.metadata.get("node_failures", 0) + 1
            else:
                self.abort_job(job, reason=f"node {node_index} failed")
        self.cluster.fail_node(node_index)
        if self.on_node_event is not None:
            self.on_node_event(node_index)
        self._notify()
        return affected

    def recover_node(self, node_index: int) -> bool:
        """The node is back: make it schedulable again.

        Idempotent: recovering a node that is already UP is a no-op (no
        trace event, no scheduler wake-up).  Returns True when the node
        actually transitioned.
        """
        if not self.cluster.recover_node(node_index):
            return False
        self.trace.record(self.engine.now, EventKind.NODE_RECOVER, node=node_index)
        if self.on_node_event is not None:
            self.on_node_event(node_index)
        self._notify()
        return True

    # ------------------------------------------------------------------
    # preemption (optional source of resources for dynamic requests)
    # ------------------------------------------------------------------
    def preempt_job(self, job: Job) -> None:
        """Requeue a running job, releasing its resources immediately.

        Checkpointable applications (those that registered a checkpoint
        handler with TM) get a chance to stash their progress first and will
        resume from it; everything else restarts from scratch.
        """
        if not job.is_active:
            raise RuntimeError(f"{job.job_id} is not active")
        ctx_for_checkpoint = self._contexts.get(job.job_id)
        if ctx_for_checkpoint is not None and ctx_for_checkpoint.checkpoint_handler:
            ctx_for_checkpoint.checkpoint_handler()
            self.trace.record(
                self.engine.now,
                EventKind.CHECKPOINT,
                job_id=job.job_id,
                user=job.user,
                work_saved=job.metadata.get("checkpoint_work", 0.0),
            )
            log.info("checkpoint %s before preemption", job.job_id)
        for dreq in [d for d in self.dyn_queue if d.job is job]:
            self.dyn_queue.remove(dreq)
            dreq.resolve(None)
        self._cancel_pending_delivery(job, resolve=True)
        limit = self._walltime_limits.pop(job.job_id, None)
        if limit is not None:
            limit.cancel()
        ctx = self._contexts.pop(job.job_id)
        ctx._cancel_all_timers()
        assert job.allocation is not None
        released = job.allocation
        self.moms.exit(job)
        self.cluster.release(released)
        self.trace.record(
            self.engine.now,
            EventKind.PREEMPT,
            job_id=job.job_id,
            user=job.user,
            cores=released.total_cores,
        )
        # not added to the finished-for-stats drain: preemption resets
        # start_time, and the accounting rule has always been that the
        # preempted segment accrues no fairshare usage
        self._active_jobs.pop(job.job_id, None)
        job.allocation = None
        job.start_time = None
        job.backfilled = False
        job.state = JobState.QUEUED
        job.metadata["preempt_count"] = job.metadata.get("preempt_count", 0) + 1
        self.queue.push(job)
        log.info("preempt %s released %dc", job.job_id, released.total_cores)
        obs = self._obs
        if obs is not None:
            obs.preempted.inc()
            obs.update_depths(self)
        self._notify()

    def __repr__(self) -> str:
        return (
            f"<Server {len(self.queue)} queued, {len(self.dyn_queue)} dynqueued, "
            f"{self.active_count} active>"
        )
