"""Torque-style client commands (``qsub``/``qstat``-alikes) for examples.

These helpers wrap the :class:`~repro.rms.server.Server` API in the shapes
users know from the command line, which keeps the example scripts close to a
real batch-system session.
"""

from __future__ import annotations

from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.rms.server import Application, Server
from repro.units import parse_duration

__all__ = ["qsub", "qalter", "qstat", "qstat_table"]


def qsub(
    server: Server,
    *,
    walltime: str | float,
    cores: int = 0,
    nodes: int = 0,
    ppn: int = 0,
    user: str = "user",
    group: str = "group",
    evolving: bool = False,
    evolution: EvolutionProfile | None = None,
    min_cores: int = 0,
    depends_on: str | None = None,
    dependency_type: str = "afterok",
    app: Application | None = None,
    top_priority: bool = False,
    **metadata,
) -> Job:
    """Submit a job, mirroring ``qsub -l nodes=N:ppn=P,walltime=HH:MM:SS``.

    ``min_cores`` marks the job moldable (``-l procs=N`` with a floor);
    ``depends_on``/``dependency_type`` mirror ``-W depend=afterok:<id>``.
    """
    request = (
        ResourceRequest(nodes=nodes, ppn=ppn) if nodes else ResourceRequest(cores=cores)
    )
    if evolving or evolution is not None:
        flexibility = JobFlexibility.EVOLVING
    elif min_cores:
        flexibility = JobFlexibility.MOLDABLE
    else:
        flexibility = JobFlexibility.RIGID
    job = Job(
        request=request,
        walltime=parse_duration(walltime),
        user=user,
        group=group,
        flexibility=flexibility,
        evolution=evolution,
        min_cores=min_cores,
        depends_on=depends_on,
        dependency_type=dependency_type,
        top_priority=top_priority,
        metadata=dict(metadata),
    )
    return server.submit(job, app)


def qalter(
    server: Server,
    job: Job,
    *,
    walltime: str | float | None = None,
    cores: int | None = None,
) -> Job:
    """Alter a queued job (``qalter``): new walltime and/or core request.

    Only queued jobs can be altered — Torque refuses to change running jobs'
    resource lists, and so do we.
    """
    if job.state is not JobState.QUEUED:
        raise RuntimeError(f"{job.job_id} is {job.state.value}; only queued jobs alter")
    if walltime is not None:
        new_walltime = parse_duration(walltime)
        if new_walltime <= 0:
            raise ValueError("walltime must be positive")
        job.walltime = new_walltime
    if cores is not None:
        if job.request.is_shaped:
            raise ValueError("cannot qalter a nodes=N:ppn=P request to plain cores")
        job.request = ResourceRequest(cores=cores)
    # a changed requirement can make the job schedulable right now
    server._notify()
    return job


_STATE_LETTER = {
    JobState.QUEUED: "Q",
    JobState.RUNNING: "R",
    JobState.DYNQUEUED: "D",
    JobState.COMPLETED: "C",
    JobState.ABORTED: "A",
    JobState.PREEMPTED: "P",
}


def qstat(server: Server) -> list[dict]:
    """Current job status as a list of records (``qstat``-like)."""
    rows = []
    for job in server.jobs.values():
        rows.append(
            {
                "job_id": job.job_id,
                "user": job.user,
                "state": _STATE_LETTER[job.state],
                "request": str(job.request),
                "cores_held": (
                    job.allocation.total_cores
                    if job.allocation is not None and job.is_active
                    else 0
                ),
                "walltime": job.walltime,
            }
        )
    return rows


def qstat_table(server: Server) -> str:
    """Human-readable ``qstat`` output for example scripts."""
    rows = qstat(server)
    header = f"{'Job ID':<12} {'User':<8} {'S':<2} {'Request':<16} {'Held':>5} {'Walltime':>9}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['job_id']:<12} {r['user']:<8} {r['state']:<2} "
            f"{r['request']:<16} {r['cores_held']:>5} {r['walltime']:>9.0f}"
        )
    return "\n".join(lines)
