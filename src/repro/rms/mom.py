"""``pbs_mom`` daemons and the mother-superior role.

In real Torque every compute node runs a mom; the first node of a job's
allocation acts as *mother superior*, coordinating the ``join`` of all
allocated nodes at job start and — in the paper's extension — the
``dyn_join`` / ``dyn_disjoin`` operations when the allocation grows or
shrinks at runtime (Figures 3 and 4).  Here moms are bookkeeping objects:
they track which jobs occupy which nodes and validate the join protocol, so
tests can assert that the node-side view never diverges from the server's.
"""

from __future__ import annotations

from repro.cluster.allocation import Allocation
from repro.cluster.machine import Cluster
from repro.jobs.job import Job

__all__ = ["Mom", "MomManager"]


class Mom:
    """The node daemon: knows which jobs hold cores on its node."""

    def __init__(self, node_index: int, cores: int) -> None:
        self.node_index = node_index
        self.cores = cores
        #: job_id -> cores held by that job on this node
        self.jobs: dict[str, int] = {}

    @property
    def used(self) -> int:
        return sum(self.jobs.values())

    def attach(self, job: Job, cores: int) -> None:
        if cores <= 0:
            raise ValueError("attach needs a positive core count")
        if self.used + cores > self.cores:
            raise RuntimeError(
                f"mom on node {self.node_index}: join would oversubscribe "
                f"({self.used}+{cores}>{self.cores})"
            )
        self.jobs[job.job_id] = self.jobs.get(job.job_id, 0) + cores

    def detach(self, job: Job, cores: int | None = None) -> int:
        """Remove ``cores`` of ``job`` (all of them when None).  Returns freed."""
        held = self.jobs.get(job.job_id, 0)
        if held == 0:
            raise RuntimeError(
                f"mom on node {self.node_index}: {job.job_id} not present"
            )
        take = held if cores is None else cores
        if take > held:
            raise RuntimeError(
                f"mom on node {self.node_index}: disjoin of {take} cores but "
                f"{job.job_id} holds {held}"
            )
        remaining = held - take
        if remaining:
            self.jobs[job.job_id] = remaining
        else:
            del self.jobs[job.job_id]
        return take

    def __repr__(self) -> str:
        return f"<Mom node{self.node_index:03d} {self.used}/{self.cores} {list(self.jobs)}>"


class MomManager:
    """All moms of the cluster plus the join/disjoin protocol."""

    def __init__(self, cluster: Cluster) -> None:
        self.moms: dict[int, Mom] = {
            node.index: Mom(node.index, node.cores) for node in cluster.nodes
        }
        #: job_id -> mother superior node index
        self.mother_superior: dict[str, int] = {}

    def join(self, job: Job, allocation: Allocation) -> int:
        """Initial job launch: all allocated nodes join; returns the MS node."""
        if job.job_id in self.mother_superior:
            raise RuntimeError(f"{job.job_id} already joined")
        if allocation.is_empty:
            raise ValueError("cannot join an empty allocation")
        for idx, count in allocation.items():
            self.moms[idx].attach(job, count)
        ms = min(allocation.node_indices)
        self.mother_superior[job.job_id] = ms
        return ms

    def dyn_join(self, job: Job, extra: Allocation) -> None:
        """Dynamic expansion: newly granted nodes join the existing job."""
        if job.job_id not in self.mother_superior:
            raise RuntimeError(f"{job.job_id} not running; cannot dyn_join")
        for idx, count in extra.items():
            self.moms[idx].attach(job, count)

    def dyn_disjoin(self, job: Job, released: Allocation) -> None:
        """Dynamic release of a subset of the job's allocation.

        Unlike SLURM's expand/shrink (paper Section V), any subset may be
        released — but never the mother superior's last core, since the MS
        coordinates the remaining processes.
        """
        if job.job_id not in self.mother_superior:
            raise RuntimeError(f"{job.job_id} not running; cannot dyn_disjoin")
        ms = self.mother_superior[job.job_id]
        ms_held = self.moms[ms].jobs.get(job.job_id, 0)
        if released[ms] >= ms_held:
            raise RuntimeError(
                f"{job.job_id}: cannot release all cores of mother superior node {ms}"
            )
        for idx, count in released.items():
            self.moms[idx].detach(job, count)

    def exit(self, job: Job) -> None:
        """Job termination: every node holding the job detaches."""
        if job.job_id not in self.mother_superior:
            raise RuntimeError(f"{job.job_id} not running; cannot exit")
        for mom in self.moms.values():
            if job.job_id in mom.jobs:
                mom.detach(job)
        del self.mother_superior[job.job_id]

    def cores_held(self, job: Job) -> int:
        return sum(m.jobs.get(job.job_id, 0) for m in self.moms.values())

    def __repr__(self) -> str:
        active = sum(1 for m in self.moms.values() if m.jobs)
        return f"<MomManager {len(self.moms)} moms, {active} busy>"
