"""Usage accounting: who consumed what, including dynamic expansions.

Section III-D opens with the observation that "fair sharing of resources
between users is a compulsory responsibility of a site and is realized
through job, user, and resource accounting".  This module reconstructs the
accounting ledger from the trace: exact core-second charges per job —
expansion and release segments included — rolled up per user.

It is also where the paper's economic arguments become measurable: the
guaranteeing approach charges users for preallocated-but-idle cores, and
"users' attempts to take advantage of the system by submitting a small job
… and expanding after job start" show up as expansion charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.events import EventKind, TraceLog

__all__ = ["JobCharge", "UserInvoice", "AccountingLedger"]

_ACQUIRE = (EventKind.JOB_START, EventKind.BACKFILL_START)
_VACATE = (EventKind.JOB_END, EventKind.JOB_ABORT, EventKind.PREEMPT)


@dataclass
class JobCharge:
    """Core-second charges for one job (split by origin)."""

    job_id: str
    user: str
    #: core-seconds on the initially allocated cores
    base_core_seconds: float = 0.0
    #: core-seconds on dynamically granted cores
    expansion_core_seconds: float = 0.0
    #: number of dynamic expansions charged
    expansions: int = 0
    #: cores returned early via tm_dynfree (their charge stops at release)
    released_cores: int = 0

    @property
    def total_core_seconds(self) -> float:
        return self.base_core_seconds + self.expansion_core_seconds

    @property
    def total_core_hours(self) -> float:
        return self.total_core_seconds / 3600.0


@dataclass
class UserInvoice:
    """Aggregate charges for one user."""

    user: str
    jobs: int = 0
    core_seconds: float = 0.0
    expansion_core_seconds: float = 0.0
    expansions: int = 0

    @property
    def core_hours(self) -> float:
        return self.core_seconds / 3600.0


@dataclass
class _OpenSegment:
    start: float
    cores: int
    is_expansion: bool


class AccountingLedger:
    """Replays a trace into per-job and per-user charges."""

    def __init__(self, trace: TraceLog) -> None:
        self.charges: dict[str, JobCharge] = {}
        self._replay(trace)

    # ------------------------------------------------------------------
    def _replay(self, trace: TraceLog) -> None:
        open_segments: dict[str, list[_OpenSegment]] = {}
        for event in trace:
            job_id = event.payload.get("job_id")
            if event.kind in _ACQUIRE:
                self.charges.setdefault(
                    job_id, JobCharge(job_id=job_id, user=event.payload.get("user", "?"))
                )
                open_segments.setdefault(job_id, []).append(
                    _OpenSegment(event.time, event.payload.get("cores", 0), False)
                )
            elif event.kind is EventKind.DYN_GRANT:
                cores = event.payload.get("cores", 0)
                if cores:  # merges record 0 (cores charged via the stub job)
                    charge = self.charges.setdefault(
                        job_id,
                        JobCharge(job_id=job_id, user=event.payload.get("user", "?")),
                    )
                    charge.expansions += 1
                    open_segments.setdefault(job_id, []).append(
                        _OpenSegment(event.time, cores, True)
                    )
            elif event.kind is EventKind.DYN_RELEASE:
                cores = event.payload.get("cores", 0)
                self.charges[job_id].released_cores += cores
                self._close_cores(
                    open_segments.get(job_id, []),
                    self.charges[job_id],
                    cores,
                    event.time,
                )
            elif event.kind in _VACATE:
                charge = self.charges.get(job_id)
                if charge is None:
                    continue
                for segment in open_segments.pop(job_id, []):
                    self._settle(charge, segment, event.time)

    def _close_cores(
        self,
        segments: list[_OpenSegment],
        charge: JobCharge,
        cores: int,
        time: float,
    ) -> None:
        """Release ``cores`` from open segments, newest (expansion) first."""
        remaining = cores
        for segment in sorted(segments, key=lambda s: (not s.is_expansion, -s.start)):
            if remaining == 0:
                break
            take = min(segment.cores, remaining)
            closed = _OpenSegment(segment.start, take, segment.is_expansion)
            self._settle(charge, closed, time)
            segment.cores -= take
            remaining -= take
        segments[:] = [s for s in segments if s.cores > 0]

    @staticmethod
    def _settle(charge: JobCharge, segment: _OpenSegment, end: float) -> None:
        amount = segment.cores * (end - segment.start)
        if segment.is_expansion:
            charge.expansion_core_seconds += amount
        else:
            charge.base_core_seconds += amount

    # ------------------------------------------------------------------
    def job(self, job_id: str) -> JobCharge:
        return self.charges[job_id]

    def invoices(self) -> dict[str, UserInvoice]:
        """Per-user rollup, keyed by user name."""
        result: dict[str, UserInvoice] = {}
        for charge in self.charges.values():
            invoice = result.setdefault(charge.user, UserInvoice(user=charge.user))
            invoice.jobs += 1
            invoice.core_seconds += charge.total_core_seconds
            invoice.expansion_core_seconds += charge.expansion_core_seconds
            invoice.expansions += charge.expansions
        return result

    @property
    def total_core_seconds(self) -> float:
        return sum(c.total_core_seconds for c in self.charges.values())

    def render(self) -> str:
        """Human-readable invoice table."""
        from repro.metrics.report import render_table

        rows = [
            [
                inv.user,
                inv.jobs,
                f"{inv.core_hours:.2f}",
                f"{inv.expansion_core_seconds / 3600:.2f}",
                inv.expansions,
            ]
            for inv in sorted(self.invoices().values(), key=lambda i: i.user)
        ]
        return render_table(
            ["User", "Jobs", "Core-hours", "of which expansions [core-h]", "Expansions"],
            rows,
            title="Accounting — per-user charges",
        )
