"""The job record shared by the server, the scheduler and the metrics layer."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cluster.allocation import Allocation, ResourceRequest

if TYPE_CHECKING:
    from repro.jobs.evolution import EvolutionProfile


class JobFlexibility(enum.Enum):
    """Feitelson & Rudolph's four-way job classification (paper Section I)."""

    RIGID = "rigid"
    MOLDABLE = "moldable"
    MALLEABLE = "malleable"
    EVOLVING = "evolving"


class JobState(enum.Enum):
    """Lifecycle states, including the paper's ``dynqueued``.

    ``DYNQUEUED`` marks a *running* job whose dynamic resource request is
    pending at the server (Section III-B): the application keeps executing,
    but the server will not accept a second concurrent request from it.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DYNQUEUED = "dynqueued"
    COMPLETED = "completed"
    ABORTED = "aborted"
    PREEMPTED = "preempted"


_job_counter = itertools.count(1)


def _next_job_seq() -> int:
    return next(_job_counter)


@dataclass(eq=False)
class Job:
    """A batch job.  Identity semantics: two jobs are equal only if they are
    the same object (hashable, usable as dict keys).

    Static attributes describe the submission (``qsub``); mutable attributes
    are maintained by the server/scheduler as the job progresses.  The
    ``metadata`` dict carries workload-specific tags (ESP type letter,
    evolving-run bookkeeping) without polluting the core model.
    """

    request: ResourceRequest
    walltime: float
    user: str = "user"
    group: str = "group"
    account: str = "default"
    job_class: str = "batch"
    qos: str = "normal"
    flexibility: JobFlexibility = JobFlexibility.RIGID
    #: Z-type ESP jobs: once submitted, highest priority + backfill lockdown.
    top_priority: bool = False
    evolution: "EvolutionProfile | None" = None
    #: for MOLDABLE jobs: the smallest allocation the application accepts;
    #: the scheduler may start the job anywhere in [min_cores, request]
    #: (0 = not moldable below the requested size)
    min_cores: int = 0
    #: Torque-style dependency: this job becomes eligible only once the named
    #: job reaches the required state ("after" = started, "afterok" =
    #: completed successfully, "afterany" = finished either way).  SLURM's
    #: expand idiom submits its helper with exactly such an indicator
    #: (paper Section V).
    depends_on: str | None = None
    dependency_type: str = "afterok"
    #: process-wide monotone sequence number; the deterministic tie-breaker
    #: for every ordering decision (string job ids do not sort numerically)
    seq: int = field(default_factory=_next_job_seq)
    job_id: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- mutable lifecycle state (owned by the server) --------------------
    state: JobState = JobState.QUEUED
    #: operator hold (Torque ``qhold``): "user" or "system"; a held job
    #: stays queued but is invisible to the scheduler until released
    hold: str | None = None
    submit_time: float | None = None
    start_time: float | None = None
    end_time: float | None = None
    allocation: Allocation | None = None
    #: True when the job was started by the backfill pass rather than the
    #: priority pass — such jobs are eligible for preemption by dynamic
    #: requests when preemption is enabled.
    backfilled: bool = False
    #: Total delay (seconds) inflicted on this job by dynamic allocations
    #: while it was queued; the DFSSingleJobDelay policy bounds this.
    accrued_delay: float = 0.0
    #: Count of dynamic requests granted / rejected for this job.
    dyn_granted: int = 0
    dyn_rejected: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = f"job.{self.seq}"
        if self.walltime <= 0:
            raise ValueError(f"walltime must be positive: {self.walltime}")
        if self.evolution is not None and self.flexibility is not JobFlexibility.EVOLVING:
            raise ValueError("only evolving jobs may carry an evolution profile")
        if self.min_cores:
            if self.flexibility is not JobFlexibility.MOLDABLE:
                raise ValueError("min_cores applies to moldable jobs only")
            if not 0 < self.min_cores <= self.request.total_cores:
                raise ValueError(
                    f"min_cores must be in [1, {self.request.total_cores}]: "
                    f"{self.min_cores}"
                )
            if self.request.is_shaped:
                raise ValueError("moldable molding supports flexible requests only")
        if self.dependency_type not in ("after", "afterok", "afterany"):
            raise ValueError(f"unknown dependency type: {self.dependency_type!r}")
        if self.hold not in (None, "user", "system"):
            raise ValueError(f"unknown hold kind: {self.hold!r}")

    # ------------------------------------------------------------------
    @property
    def is_evolving(self) -> bool:
        return self.flexibility is JobFlexibility.EVOLVING

    @property
    def moldable_floor(self) -> int:
        """Smallest acceptable allocation (the request size if not moldable)."""
        if self.flexibility is JobFlexibility.MOLDABLE and self.min_cores:
            return self.min_cores
        return self.request.total_cores

    @property
    def is_active(self) -> bool:
        """Running, including while a dynamic request is pending."""
        return self.state in (JobState.RUNNING, JobState.DYNQUEUED)

    @property
    def is_finished(self) -> bool:
        return self.state in (JobState.COMPLETED, JobState.ABORTED)

    @property
    def walltime_end(self) -> float:
        """Scheduler's view of when this running job will release resources."""
        if self.start_time is None:
            raise ValueError(f"{self.job_id} has not started")
        return self.start_time + self.walltime

    @property
    def wait_time(self) -> float:
        """Queue waiting time (start - submit)."""
        if self.submit_time is None or self.start_time is None:
            raise ValueError(f"{self.job_id} has no complete wait record")
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        if self.submit_time is None or self.end_time is None:
            raise ValueError(f"{self.job_id} has no complete turnaround record")
        return self.end_time - self.submit_time

    @property
    def esp_type(self) -> str | None:
        """ESP type letter when this job came from the ESP workload."""
        return self.metadata.get("esp_type")

    def __repr__(self) -> str:
        return (
            f"<Job {self.job_id} {self.user} {self.request} "
            f"wt={self.walltime:.0f}s {self.flexibility.value} {self.state.value}>"
        )
