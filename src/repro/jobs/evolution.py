"""Evolution profiles: when and what an evolving job asks for at runtime.

The dynamic ESP workload (paper Section IV-B) models evolution after the
Quadflow Cylinder case: each evolving job requests 4 extra cores once 16 % of
its static execution time has elapsed, retries once at 25 % if rejected, and
otherwise carries on with its original allocation.  The profile below
generalises that: any number of steps, each with its own request, trigger
point and retry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cluster.allocation import ResourceRequest

__all__ = ["EvolutionStep", "EvolutionProfile"]


@dataclass(frozen=True, slots=True)
class EvolutionStep:
    """One growth step of an evolving application.

    :param at_fraction: fraction of the *static* execution time after which
        the application issues the dynamic request (0 < f < 1).
    :param request: the additional resources requested.
    :param retry_fractions: later fractions at which the request is retried
        if rejected; after the last rejection the application continues with
        its current allocation (paper Section IV-B).
    """

    at_fraction: float
    request: ResourceRequest
    retry_fractions: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 < self.at_fraction < 1.0:
            raise ValueError(f"at_fraction must be in (0, 1): {self.at_fraction}")
        previous = self.at_fraction
        for frac in self.retry_fractions:
            if not previous < frac < 1.0:
                raise ValueError(
                    f"retry fractions must be increasing within (at_fraction, 1): "
                    f"{self.retry_fractions}"
                )
            previous = frac

    @property
    def attempt_fractions(self) -> tuple[float, ...]:
        """First attempt plus retries, in order."""
        return (self.at_fraction, *self.retry_fractions)


@dataclass(frozen=True)
class EvolutionProfile:
    """The full runtime-growth plan of an evolving job.

    ``steps`` are processed strictly in order: the application does not issue
    step *k+1*'s request until step *k* has been resolved (granted, or all
    retries rejected).  This mirrors the paper's protocol in which at most
    one dynamic request per job is pending at the server at a time
    (Section III-B).
    """

    steps: tuple[EvolutionStep, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        previous_end = 0.0
        for step in self.steps:
            if step.at_fraction <= previous_end:
                raise ValueError("evolution steps must occur at increasing fractions")
            previous_end = step.attempt_fractions[-1]

    @classmethod
    def esp_default(cls, extra_cores: int = 4) -> "EvolutionProfile":
        """The dynamic-ESP profile: +4 cores at 16 %, retry at 25 %."""
        return cls(
            steps=(
                EvolutionStep(
                    at_fraction=0.16,
                    request=ResourceRequest(cores=extra_cores),
                    retry_fractions=(0.25,),
                ),
            )
        )

    @classmethod
    def single(
        cls,
        at_fraction: float,
        request: ResourceRequest,
        retries: Iterable[float] = (),
    ) -> "EvolutionProfile":
        """Convenience constructor for a one-step profile."""
        return cls(
            steps=(
                EvolutionStep(
                    at_fraction=at_fraction,
                    request=request,
                    retry_fractions=tuple(retries),
                ),
            )
        )

    @property
    def total_extra_cores(self) -> int:
        """Cores added if every step is granted."""
        return sum(step.request.total_cores for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)
