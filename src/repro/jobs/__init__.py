"""Job model: Feitelson/Rudolph flexibility classes, states, queues.

The paper (Section I) uses the classic taxonomy — rigid, moldable, malleable
and evolving jobs — and adds the transient ``dynqueued`` state a running
evolving job enters while one of its dynamic requests waits at the server.
"""

from repro.jobs.evolution import EvolutionProfile, EvolutionStep
from repro.jobs.job import Job, JobFlexibility, JobState
from repro.jobs.queue import DynRequest, JobQueue

__all__ = [
    "DynRequest",
    "EvolutionProfile",
    "EvolutionStep",
    "Job",
    "JobFlexibility",
    "JobQueue",
    "JobState",
]
