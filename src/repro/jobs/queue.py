"""Server-side queues: the static job queue and the FIFO dynamic-request queue."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.jobs.job import Job, JobState

__all__ = ["JobQueue", "DynRequest"]


@dataclass
class DynRequest:
    """A pending dynamic allocation request from a running evolving job.

    ``callback`` is invoked exactly once with the granted :class:`Allocation`
    or ``None`` on rejection; it routes the answer back through the mother
    superior to the application's ``tm_dynget`` call.

    Negotiated requests (the paper's Section III-C outlook, implemented here
    as an extension) additionally carry a ``deadline``: instead of being
    rejected when resources are unavailable, the request stays queued until
    the deadline, and the scheduler publishes its best availability estimate
    through ``on_estimate``.
    """

    job: Job
    request: ResourceRequest | None
    submit_time: float
    callback: Callable[[Allocation | None], None]
    #: runtime-elasticity variant (after Kumar et al. [23], paper Section V):
    #: instead of more cores, the job asks to keep its *current* cores for
    #: this many extra seconds; ``request`` is None for these
    extend_walltime: float | None = None
    #: absolute simulation time after which the request is auto-rejected;
    #: None = classic immediate grant-or-reject semantics
    deadline: float | None = None
    #: invoked (possibly repeatedly) with the scheduler's earliest-start
    #: estimate for the requested resources
    on_estimate: Callable[[float], None] | None = None
    #: last estimate published to the application
    estimate: float | None = field(default=None, init=False)
    resolved: bool = field(default=False, init=False)

    @property
    def negotiated(self) -> bool:
        return self.deadline is not None

    @property
    def is_extension(self) -> bool:
        return self.extend_walltime is not None

    def publish_estimate(self, available_at: float) -> None:
        """Publish a (new) availability estimate to the application."""
        if self.estimate is not None and abs(self.estimate - available_at) < 1e-9:
            return
        self.estimate = available_at
        if self.on_estimate is not None:
            self.on_estimate(available_at)

    def resolve(self, grant: Allocation | None) -> None:
        if self.resolved:
            raise RuntimeError(f"dynamic request for {self.job.job_id} resolved twice")
        self.resolved = True
        self.callback(grant)

    def __repr__(self) -> str:
        return (
            f"<DynRequest {self.job.job_id} +{self.request} "
            f"@{self.submit_time:.1f}{' resolved' if self.resolved else ''}>"
        )


class JobQueue:
    """Ordered container of queued (idle) jobs.

    Submission order is preserved; the scheduler applies its own priority
    ordering on top.  The queue only ever contains jobs in state ``QUEUED``.
    """

    def __init__(self) -> None:
        self._jobs: list[Job] = []

    def push(self, job: Job) -> None:
        if job.state is not JobState.QUEUED:
            raise ValueError(f"{job.job_id} is {job.state.value}, not queued")
        if job in self._jobs:
            raise ValueError(f"{job.job_id} already queued")
        self._jobs.append(job)

    def remove(self, job: Job) -> None:
        self._jobs.remove(job)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job in self._jobs

    def snapshot(self) -> list[Job]:
        """Submission-ordered copy (safe to mutate)."""
        return list(self._jobs)

    @property
    def has_top_priority_job(self) -> bool:
        """True while an ESP Z-type job is waiting (triggers the lockdown)."""
        return any(j.top_priority for j in self._jobs)

    def __repr__(self) -> str:
        return f"<JobQueue {len(self._jobs)} queued>"
