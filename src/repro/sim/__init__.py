"""Deterministic discrete-event simulation kernel.

The batch system (server, moms, scheduler, application models) runs on top of
this engine.  Everything is single-threaded and deterministic: events firing
at the same timestamp are ordered by an explicit priority and then by
insertion order, so a given workload + configuration always produces the same
trace.
"""

from repro.sim.engine import Engine, EventHandle
from repro.sim.events import EventKind, TraceEvent, TraceLog

__all__ = ["Engine", "EventHandle", "EventKind", "TraceEvent", "TraceLog"]
