"""Heap-based deterministic discrete-event engine.

Design notes
------------
* Single priority queue of ``(time, priority, seq)`` keys.  ``priority``
  orders simultaneous events (e.g. a job completion at time *t* must be
  processed before the scheduler iteration triggered at *t* so the scheduler
  sees the freed resources); ``seq`` is a monotone counter guaranteeing
  deterministic FIFO order among equal keys.
* Callbacks are plain callables.  Cancellation is O(1) via tombstoning the
  :class:`EventHandle` rather than re-heapifying.
* The engine never advances past events scheduled "now": scheduling at the
  current time from within a callback is allowed and runs in the same
  ``run()`` invocation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = [
    "Engine",
    "EventHandle",
    "PRIORITY_COMPLETION",
    "PRIORITY_NORMAL",
    "PRIORITY_LIMIT",
    "PRIORITY_SCHEDULER",
]

#: Job completions / resource releases fire first at a given timestamp …
PRIORITY_COMPLETION = 0
#: … then ordinary events (submissions, dynamic requests, app completions) …
PRIORITY_NORMAL = 5
#: … then walltime-limit enforcement (so a job finishing exactly at its
#: walltime completes normally instead of being killed) …
PRIORITY_LIMIT = 7
#: … and scheduler iterations last, so they observe a settled system state.
PRIORITY_SCHEDULER = 9


class EventHandle:
    """Cancellable reference to a scheduled callback."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle {name} @{self.time:.2f} p{self.priority} {state}>"


class Engine:
    """Deterministic event loop with a floating-point clock (seconds)."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Scheduling in the past raises ``ValueError`` — that is always a bug
        in the caller, and silently clamping would hide causality errors.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        handle = EventHandle(time, priority, self._seq, callback, args)
        heapq.heappush(self._heap, (time, priority, self._seq, handle))
        self._seq += 1
        return handle

    def after(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        while self._heap:
            time, _prio, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        :param until: stop once the next event would fire strictly after this
            time (the clock is advanced to ``until`` if given).
        :param max_events: safety valve for tests; raise ``RuntimeError`` when
            exceeded so runaway event storms fail loudly instead of hanging.
        :returns: the number of events processed by this call.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                time, _prio, _seq, handle = self._heap[0]
                if handle.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                self.now = time
                self._processed += 1
                processed += 1
                if max_events is not None and processed > max_events:
                    raise RuntimeError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                handle.callback(*handle.args)
            if until is not None and until > self.now:
                self.now = until
            return processed
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for *_k, h in self._heap if not h.cancelled)

    @property
    def processed(self) -> int:
        """Total number of events executed since construction."""
        return self._processed

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or None if idle."""
        for time, _prio, _seq, handle in sorted(self._heap)[:]:
            if not handle.cancelled:
                return time
        return None

    def __repr__(self) -> str:
        return f"<Engine t={self.now:.2f} pending={self.pending}>"
