"""Heap-based deterministic discrete-event engine.

Design notes
------------
* Single priority queue of ``(time, priority, seq)`` keys.  ``priority``
  orders simultaneous events (e.g. a job completion at time *t* must be
  processed before the scheduler iteration triggered at *t* so the scheduler
  sees the freed resources); ``seq`` is a monotone counter guaranteeing
  deterministic FIFO order among equal keys.
* Callbacks are plain callables.  Cancellation is O(1) via tombstoning the
  :class:`EventHandle` rather than re-heapifying.  Tombstones are purged
  lazily: once more than half the heap (beyond a small floor) is cancelled
  entries, the heap is rebuilt without them, so long runs with many
  cancelled boundary wakes / walltime limits keep a bounded queue.
* The engine never advances past events scheduled "now": scheduling at the
  current time from within a callback is allowed and runs in the same
  ``run()`` invocation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = [
    "Engine",
    "EventHandle",
    "PRIORITY_COMPLETION",
    "PRIORITY_NORMAL",
    "PRIORITY_LIMIT",
    "PRIORITY_SCHEDULER",
]

#: Job completions / resource releases fire first at a given timestamp …
PRIORITY_COMPLETION = 0
#: … then ordinary events (submissions, dynamic requests, app completions) …
PRIORITY_NORMAL = 5
#: … then walltime-limit enforcement (so a job finishing exactly at its
#: walltime completes normally instead of being killed) …
PRIORITY_LIMIT = 7
#: … and scheduler iterations last, so they observe a settled system state.
PRIORITY_SCHEDULER = 9


class EventHandle:
    """Cancellable reference to a scheduled callback."""

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled",
        "_engine", "_dequeued",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        engine: "Engine | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine
        #: True once the engine removed this entry from its heap (fired or
        #: discarded) — a later cancel() must not count as a live tombstone
        self._dequeued = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None and not self._dequeued:
            self._engine._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle {name} @{self.time:.2f} p{self.priority} {state}>"


class Engine:
    """Deterministic event loop with a floating-point clock (seconds)."""

    #: tombstone purges only kick in past this heap size: tiny heaps are
    #: cheap to carry and compacting them would just add churn
    COMPACT_MIN_SIZE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        #: cancelled entries still sitting in the heap
        self._tombstones: int = 0
        #: cumulative compaction count (introspection for tests/benchmarks)
        self._compactions: int = 0
        #: optional :class:`repro.obs.perf.PhaseProfiler` wrapping every
        #: callback dispatch in an ``engine_dispatch`` phase; None keeps the
        #: dispatch loop a single attribute-is-None check per event
        self.profiler = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Scheduling in the past raises ``ValueError`` — that is always a bug
        in the caller, and silently clamping would hide causality errors.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        handle = EventHandle(time, priority, self._seq, callback, args, self)
        heapq.heappush(self._heap, (time, priority, self._seq, handle))
        self._seq += 1
        return handle

    # ------------------------------------------------------------------
    # tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A queued entry was cancelled; purge when tombstones dominate."""
        self._tombstones += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._tombstones * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (O(n))."""
        for *_k, handle in self._heap:
            if handle.cancelled:
                handle._dequeued = True
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0
        self._compactions += 1

    def _discard_top(self) -> None:
        """Pop a cancelled entry off the heap top and account for it."""
        _, _, _, handle = heapq.heappop(self._heap)
        handle._dequeued = True
        self._tombstones -= 1

    def after(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        while self._heap:
            if self._heap[0][3].cancelled:
                self._discard_top()
                continue
            time, _prio, _seq, handle = heapq.heappop(self._heap)
            handle._dequeued = True
            self.now = time
            self._processed += 1
            prof = self.profiler
            if prof is None:
                handle.callback(*handle.args)
            else:
                prof.begin("engine_dispatch", sim_time=time)
                try:
                    handle.callback(*handle.args)
                finally:
                    prof.end()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        :param until: stop once the next event would fire strictly after this
            time (the clock is advanced to ``until`` if given).
        :param max_events: safety valve for tests; raise ``RuntimeError`` when
            exceeded so runaway event storms fail loudly instead of hanging.
        :returns: the number of events processed by this call.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        processed = 0
        # resolved once per run: the dispatch loop pays one local-is-None
        # check per event instead of an attribute lookup
        prof = self.profiler
        try:
            while self._heap:
                time, _prio, _seq, handle = self._heap[0]
                if handle.cancelled:
                    self._discard_top()
                    continue
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                handle._dequeued = True
                self.now = time
                self._processed += 1
                processed += 1
                if max_events is not None and processed > max_events:
                    raise RuntimeError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                if prof is None:
                    handle.callback(*handle.args)
                else:
                    prof.begin("engine_dispatch", sim_time=time)
                    try:
                        handle.callback(*handle.args)
                    finally:
                        prof.end()
            if until is not None and until > self.now:
                self.now = until
            return processed
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._heap) - self._tombstones

    @property
    def processed(self) -> int:
        """Total number of events executed since construction."""
        return self._processed

    @property
    def heap_size(self) -> int:
        """Physical heap length, tombstones included (tests/benchmarks)."""
        return len(self._heap)

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or None if idle."""
        while self._heap and self._heap[0][3].cancelled:
            self._discard_top()
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:
        return f"<Engine t={self.now:.2f} pending={self.pending}>"
