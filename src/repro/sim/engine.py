"""Deterministic discrete-event engine: binary heap + slotted calendar queue.

Design notes
------------
* Every event carries a ``(time, priority, seq)`` key.  ``priority`` orders
  simultaneous events (e.g. a job completion at time *t* must be processed
  before the scheduler iteration triggered at *t* so the scheduler sees the
  freed resources); ``seq`` is a monotone counter guaranteeing deterministic
  FIFO order among equal keys.  The dispatch order is the total order of
  these keys, *regardless of the backing queue structure*.
* Two interchangeable queue backends, selected by the ``queue`` parameter:

  - ``"heap"`` — the classic single binary heap of key tuples.  Optimal
    when nearly every event has its own timestamp (sparse regime).
  - ``"calendar"`` — a slotted calendar queue: one bucket (slot) per
    *distinct* timestamp, a small heap over the bucket times.  Events at
    one timestamp are dispatched as a batch in a single internal loop, so
    the per-event cost amortises the time lookup, the ``until`` /
    profiler checks, and replaces O(log n) heap pops with list walks.
    Optimal when many events share timestamps (dense regime: submission
    bursts, periodic samplers, synchronised completions).
  - ``"auto"`` (default) — starts on the heap and switches between the
    two based on the observed density of recently scheduled events
    (fraction landing on an already-pending timestamp).  Switching is a
    pure restructuring: the dispatch order is byte-identical in every
    mode, pinned by the randomized cross-check in
    ``tests/test_engine_calendar.py``.

* Within a calendar bucket, events are kept sorted by ``(priority, seq)``.
  Because ``seq`` is monotone, plain appends preserve the order unless an
  event of *lower* priority value arrives after one with a higher value at
  the same timestamp — only then is the bucket's remainder heapified and
  maintained as a mini-heap.  In the common case (equal priorities) a
  bucket is append-only and dispatch is a simple list walk.
* Callbacks are plain callables.  Cancellation is O(1) via tombstoning the
  :class:`EventHandle` rather than re-heapifying.  Tombstones are purged
  lazily — at the queue head by :meth:`Engine._next_time` (the single
  purge point shared by ``step``/``run``/``peek_time``), and in bulk once
  more than half the queue (beyond a small floor) is cancelled entries —
  so long runs with many cancelled boundary wakes / walltime limits keep a
  bounded queue.
* The engine never advances past events scheduled "now": scheduling at the
  current time from within a callback is allowed and runs in the same
  ``run()`` invocation (in the calendar it lands in the live bucket).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = [
    "Engine",
    "EventHandle",
    "PRIORITY_COMPLETION",
    "PRIORITY_NORMAL",
    "PRIORITY_LIMIT",
    "PRIORITY_SCHEDULER",
]

#: Job completions / resource releases fire first at a given timestamp …
PRIORITY_COMPLETION = 0
#: … then ordinary events (submissions, dynamic requests, app completions) …
PRIORITY_NORMAL = 5
#: … then walltime-limit enforcement (so a job finishing exactly at its
#: walltime completes normally instead of being killed) …
PRIORITY_LIMIT = 7
#: … and scheduler iterations last, so they observe a settled system state.
PRIORITY_SCHEDULER = 9


class EventHandle:
    """Cancellable reference to a scheduled callback."""

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled",
        "_engine", "_dequeued",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        engine: "Engine | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine
        #: True once the engine removed this entry from its queue (fired or
        #: discarded) — a later cancel() must not count as a live tombstone
        self._dequeued = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None and not self._dequeued:
            self._engine._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<EventHandle {name} @{self.time:.2f} p{self.priority} {state}>"


def _entry_key(handle: "EventHandle") -> tuple[int, int]:
    """Dispatch order of handles within one timestamp."""
    return (handle.priority, handle.seq)


#: bound once: Engine.at constructs handles via ``__new__`` plus inline
#: attribute stores instead of calling ``EventHandle.__init__``
_new_handle = EventHandle.__new__


class _Bucket:
    """One calendar slot: every pending event at a single timestamp.

    Two regimes:

    * sorted (``heaped`` False): ``entries`` holds bare
      :class:`EventHandle` objects, ascending by ``(priority, seq)`` from
      index ``pos``; dispatch walks the list, appends extend it.  The
      monotone ``seq`` keeps appends in order as long as priorities do not
      decrease — the overwhelmingly common case, which therefore pays no
      tuple wrapping and no heap discipline at all.
    * mini-heap (``heaped`` True): ``entries`` is a ``heapq`` heap of
      ``(priority, seq, handle)`` tuples and ``pos`` is 0.  Entered the
      first time an append would break the sorted order; conversion
      mutates ``entries`` *in place* so live references held by a dispatch
      loop stay valid.
    """

    __slots__ = ("entries", "pos", "heaped", "tail_prio")

    def __init__(self) -> None:
        self.entries: list = []
        self.pos = 0
        self.heaped = False
        #: priority of the last appended handle while sorted — the append
        #: fast path compares against this int instead of chasing
        #: ``entries[-1].priority`` (meaningless once ``heaped``)
        self.tail_prio = -1

    def remaining_handles(self) -> list[EventHandle]:
        """Pending handles, regardless of regime (not in dispatch order)."""
        if self.heaped:
            return [entry[2] for entry in self.entries]
        return self.entries[self.pos:]

    def convert_to_heap(self) -> None:
        """Switch the remainder to the mini-heap regime, in place."""
        self.entries[:] = [
            (h.priority, h.seq, h) for h in self.entries[self.pos:]
        ]
        self.pos = 0
        self.heaped = True
        heapq.heapify(self.entries)


class Engine:
    """Deterministic event loop with a floating-point clock (seconds)."""

    #: tombstone purges only kick in past this queue size: tiny queues are
    #: cheap to carry and compacting them would just add churn
    COMPACT_MIN_SIZE = 64
    #: adaptive mode: density is evaluated every this many schedules
    SWITCH_WINDOW = 256
    #: fraction of window schedules landing on a pending timestamp above
    #: which the heap switches to the calendar …
    DENSE_ENTER = 0.5
    #: … and below which the calendar falls back to the heap
    DENSE_EXIT = 0.125

    def __init__(self, start_time: float = 0.0, *, queue: str = "auto") -> None:
        if queue not in ("auto", "heap", "calendar"):
            raise ValueError(f"unknown queue mode {queue!r}")
        self.now: float = float(start_time)
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        #: cancelled entries still sitting in the queue
        self._tombstones: int = 0
        #: cumulative compaction count (introspection for tests/benchmarks)
        self._compactions: int = 0
        #: cumulative mode switches (introspection for tests/benchmarks)
        self._switches: int = 0
        #: optional :class:`repro.obs.perf.PhaseProfiler` wrapping every
        #: callback dispatch in an ``engine_dispatch`` phase; None keeps the
        #: dispatch loop a single local-is-None check per event
        self.profiler = None
        # -- queue backends ------------------------------------------------
        self._calendar: bool = queue == "calendar"
        self._adaptive: bool = queue == "auto"
        #: heap mode: one heap of (time, priority, seq, handle)
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        #: calendar mode: time -> bucket, plus a heap of bucket times (may
        #: carry stale times whose bucket has already drained)
        self._buckets: dict[float, _Bucket] = {}
        self._times: list[float] = []
        #: physical entries across whichever backend is active
        self._size: int = 0
        # -- adaptive bookkeeping ------------------------------------------
        self._win_count = 0
        #: schedules in this window that created a *new* timestamp; the
        #: complement (count - sparse) is the dense fraction
        self._win_sparse = 0
        self._win_times: set[float] = set()  # heap-mode density probe
        self._switch_to: str | None = None
        #: >0 while a callback is on the stack via step(); switching the
        #: backend under a live dispatch loop is deferred until it unwinds
        self._dispatching = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``.

        Scheduling in the past raises ``ValueError`` — that is always a bug
        in the caller, and silently clamping would hide causality errors.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        # inlined EventHandle construction: at() is the hottest call in the
        # simulator, and skipping the __init__ frame is worth ~100ns/event
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.priority = priority
        handle.seq = seq
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle._engine = self
        handle._dequeued = False
        self._size += 1
        if self._calendar:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = bucket = _Bucket()
                heapq.heappush(self._times, time)
                self._win_sparse += 1
            entries = bucket.entries
            if bucket.heaped:
                heapq.heappush(entries, (priority, seq, handle))
            elif entries and priority < bucket.tail_prio:
                # append would break the sorted order: convert the
                # remainder to a mini-heap, in place (see _Bucket)
                bucket.convert_to_heap()
                heapq.heappush(entries, (priority, seq, handle))
            else:
                entries.append(handle)
                bucket.tail_prio = priority
        else:
            heapq.heappush(self._heap, (time, priority, seq, handle))
            if self._adaptive:
                seen = self._win_times
                if time not in seen:
                    seen.add(time)
                    self._win_sparse += 1
        if self._adaptive:
            self._win_count += 1
            if self._win_count >= self.SWITCH_WINDOW:
                self._consider_switch()
                if (
                    self._switch_to is not None
                    and not self._running
                    and self._dispatching == 0
                ):
                    self._apply_switch()
        return handle

    def after(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # adaptive mode switching
    # ------------------------------------------------------------------
    def _consider_switch(self) -> None:
        """End of a density window: decide whether to change backends."""
        ratio = 1.0 - self._win_sparse / self._win_count
        self._win_count = 0
        self._win_sparse = 0
        self._win_times.clear()
        if self._calendar:
            if ratio <= self.DENSE_EXIT:
                self._switch_to = "heap"
        elif ratio >= self.DENSE_ENTER:
            self._switch_to = "calendar"

    def _apply_switch(self) -> None:
        """Rebuild the pending queue in the other backend.

        Doubles as a compaction: cancelled entries are dropped during the
        rebuild.  Must only run when no dispatch loop holds references into
        the current backend (callers check ``_running``/``_dispatching``).
        """
        target = self._switch_to
        self._switch_to = None
        if target is None or (target == "calendar") == self._calendar:
            return
        self._switches += 1
        if target == "calendar":
            buckets: dict[float, _Bucket] = {}
            size = 0
            for time, _priority, _seq, handle in self._heap:
                if handle.cancelled:
                    handle._dequeued = True
                    continue
                bucket = buckets.get(time)
                if bucket is None:
                    buckets[time] = bucket = _Bucket()
                bucket.entries.append(handle)
                size += 1
            for bucket in buckets.values():
                bucket.entries.sort(key=_entry_key)
                bucket.tail_prio = bucket.entries[-1].priority
            times = list(buckets)
            heapq.heapify(times)
            self._heap = []
            self._buckets = buckets
            self._times = times
            self._calendar = True
        else:
            heap: list[tuple[float, int, int, EventHandle]] = []
            for time, bucket in self._buckets.items():
                for handle in bucket.remaining_handles():
                    if handle.cancelled:
                        handle._dequeued = True
                        continue
                    heap.append((time, handle.priority, handle.seq, handle))
            heapq.heapify(heap)
            self._heap = heap
            self._buckets = {}
            self._times = []
            self._calendar = False
            size = len(heap)
        self._size = size
        self._tombstones = 0

    # ------------------------------------------------------------------
    # tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A queued entry was cancelled; purge when tombstones dominate."""
        self._tombstones += 1
        if (
            self._size >= self.COMPACT_MIN_SIZE
            and self._tombstones * 2 > self._size
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the queue (O(n)).

        In-place per bucket in calendar mode, so a dispatch loop holding a
        reference to the live bucket (or its ``entries`` list) survives a
        compaction triggered by one of its own callbacks.
        """
        if self._calendar:
            size = 0
            for bucket in self._buckets.values():
                live = []
                for handle in bucket.remaining_handles():
                    if handle.cancelled:
                        handle._dequeued = True
                    else:
                        live.append(handle)
                if bucket.heaped:
                    live.sort(key=_entry_key)
                    bucket.heaped = False
                bucket.entries[:] = live
                bucket.pos = 0
                if live:
                    bucket.tail_prio = live[-1].priority
                size += len(live)
            # stale times (empty buckets) are skipped lazily by _next_time
            self._size = size
        else:
            for *_k, handle in self._heap:
                if handle.cancelled:
                    handle._dequeued = True
            self._heap = [e for e in self._heap if not e[3].cancelled]
            heapq.heapify(self._heap)
            self._size = len(self._heap)
        self._tombstones = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # queue head management — the single purge point shared by
    # step()/run()/peek_time()
    # ------------------------------------------------------------------
    def _next_time(self) -> float | None:
        """Timestamp of the next live event, discarding cancelled heads.

        Leaves the queue positioned so the next live event is at the head:
        in heap mode ``_heap[0]`` is live; in calendar mode the top of
        ``_times`` names a bucket whose head entry is live.
        """
        if self._calendar:
            times = self._times
            buckets = self._buckets
            while times:
                time = times[0]
                bucket = buckets.get(time)
                if bucket is not None:
                    entries = bucket.entries
                    if bucket.heaped:
                        while entries and entries[0][2].cancelled:
                            handle = heapq.heappop(entries)[2]
                            handle._dequeued = True
                            self._tombstones -= 1
                            self._size -= 1
                        if entries:
                            return time
                    else:
                        pos = bucket.pos
                        n = len(entries)
                        while pos < n and entries[pos].cancelled:
                            entries[pos]._dequeued = True
                            self._tombstones -= 1
                            self._size -= 1
                            pos += 1
                        bucket.pos = pos
                        if pos < n:
                            return time
                    del buckets[time]
                heapq.heappop(times)  # drained or stale timestamp
            return None
        heap = self._heap
        while heap:
            if not heap[0][3].cancelled:
                return heap[0][0]
            handle = heapq.heappop(heap)[3]
            handle._dequeued = True
            self._tombstones -= 1
            self._size -= 1
        return None

    def _pop_head(self) -> EventHandle:
        """Remove and return the head event (must follow ``_next_time``)."""
        self._size -= 1
        if not self._calendar:
            handle = heapq.heappop(self._heap)[3]
            handle._dequeued = True
            return handle
        time = self._times[0]
        bucket = self._buckets[time]
        entries = bucket.entries
        if bucket.heaped:
            handle = heapq.heappop(entries)[2]
            drained = not entries
        else:
            handle = entries[bucket.pos]
            bucket.pos += 1
            drained = bucket.pos >= len(entries)
        handle._dequeued = True
        if drained:
            del self._buckets[time]
            heapq.heappop(self._times)
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        if (
            self._switch_to is not None
            and not self._running
            and self._dispatching == 0
        ):
            self._apply_switch()
        time = self._next_time()
        if time is None:
            return False
        handle = self._pop_head()
        self.now = time
        self._processed += 1
        prof = self.profiler
        self._dispatching += 1
        try:
            if prof is None:
                handle.callback(*handle.args)
            else:
                prof.begin("engine_dispatch", sim_time=time)
                try:
                    handle.callback(*handle.args)
                finally:
                    prof.end()
        finally:
            self._dispatching -= 1
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        :param until: stop once the next event would fire strictly after this
            time (the clock is advanced to ``until`` if given).
        :param max_events: safety valve for tests; raise ``RuntimeError`` when
            exceeded so runaway event storms fail loudly instead of hanging.
        :returns: the number of events processed by this call.
        """
        if self._running:
            raise RuntimeError("Engine.run() is not reentrant")
        self._running = True
        processed = 0
        # resolved once per run: the dispatch loop pays one local-is-None
        # check per event instead of an attribute lookup
        prof = self.profiler
        try:
            while True:
                if self._switch_to is not None:
                    self._apply_switch()  # batch boundary: no live refs
                time = self._next_time()
                if time is None or (until is not None and time > until):
                    break
                self.now = time
                if not self._calendar:
                    handle = heapq.heappop(self._heap)[3]
                    handle._dequeued = True
                    self._size -= 1
                    self._processed += 1
                    processed += 1
                    if max_events is not None and processed > max_events:
                        raise RuntimeError(
                            f"exceeded max_events={max_events}; runaway simulation?"
                        )
                    if prof is None:
                        handle.callback(*handle.args)
                    else:
                        prof.begin("engine_dispatch", sim_time=time)
                        try:
                            handle.callback(*handle.args)
                        finally:
                            prof.end()
                    continue
                # -- calendar: drain the whole timestamp in one batch ------
                # ``until`` cannot split a batch (all events share ``time``)
                # and new same-time events land in this live bucket, so the
                # per-event work is just the walk + the callback.
                bucket = self._buckets[time]
                entries = bucket.entries
                consumed = 0
                batch_start = processed
                try:
                    while True:
                        if bucket.heaped:
                            if not entries:
                                break
                            handle = heapq.heappop(entries)[2]
                        else:
                            pos = bucket.pos
                            if pos >= len(entries):
                                break
                            handle = entries[pos]
                            bucket.pos = pos + 1
                        consumed += 1
                        handle._dequeued = True
                        if handle.cancelled:
                            self._tombstones -= 1
                            continue
                        processed += 1
                        if max_events is not None and processed > max_events:
                            raise RuntimeError(
                                f"exceeded max_events={max_events}; "
                                "runaway simulation?"
                            )
                        if prof is None:
                            handle.callback(*handle.args)
                        else:
                            prof.begin("engine_dispatch", sim_time=time)
                            try:
                                handle.callback(*handle.args)
                            finally:
                                prof.end()
                finally:
                    # exception safety: an exceptional exit leaves the
                    # partially-drained bucket for _next_time to finish
                    self._size -= consumed
                    self._processed += processed - batch_start
                del self._buckets[time]
                heapq.heappop(self._times)  # == time (head after _next_time)
            if until is not None and until > self.now:
                self.now = until
            return processed
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._size - self._tombstones

    @property
    def processed(self) -> int:
        """Total number of events executed since construction."""
        return self._processed

    @property
    def heap_size(self) -> int:
        """Physical queue length, tombstones included (tests/benchmarks)."""
        return self._size

    @property
    def queue_mode(self) -> str:
        """The active backend: ``"heap"`` or ``"calendar"``."""
        return "calendar" if self._calendar else "heap"

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or None if idle."""
        return self._next_time()

    def __repr__(self) -> str:
        return (
            f"<Engine t={self.now:.2f} pending={self.pending} "
            f"queue={self.queue_mode}>"
        )
