"""Typed trace events emitted by the simulated batch system.

Trace events are *observations*, not control flow: the engine drives the
simulation through callbacks, while components append :class:`TraceEvent`
records to a shared :class:`TraceLog` so that tests, metrics and experiment
harnesses can reconstruct exactly what happened and when.

The log doubles as the head of the **streaming trace pipeline**
(``repro.obs``): subscribers registered with :meth:`TraceLog.subscribe` see
every event synchronously as it is recorded (in subscription order, so the
pipeline inherits the engine's determinism), and an optional ``maxlen``
turns the backing store into a bounded ring buffer for long campaigns —
subscribers still see *every* event, only the retained tail is bounded.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


class EventKind(enum.Enum):
    """Taxonomy of observable events in the batch system."""

    JOB_SUBMIT = "job_submit"
    JOB_START = "job_start"
    JOB_END = "job_end"
    JOB_ABORT = "job_abort"
    DYN_REQUEST = "dyn_request"
    DYN_GRANT = "dyn_grant"
    DYN_REJECT = "dyn_reject"
    DYN_RELEASE = "dyn_release"
    RESERVATION_CREATE = "reservation_create"
    BACKFILL_START = "backfill_start"
    PREEMPT = "preempt"
    SCHED_ITERATION = "sched_iteration"
    DFS_INTERVAL_ROLL = "dfs_interval_roll"
    NODE_FAIL = "node_fail"
    NODE_RECOVER = "node_recover"
    # transient fault in the TM layer: a granted allocation could not be
    # delivered to the mother superior (repro.faults); retried with backoff
    GRANT_DELIVERY_FAIL = "grant_delivery_fail"
    # paths that previously left no observation behind
    WALLTIME_EXTENSION_GRANT = "walltime_extension_grant"
    WALLTIME_EXTENSION_DENY = "walltime_extension_deny"
    MALLEABLE_SHRINK = "malleable_shrink"
    CHECKPOINT = "checkpoint"
    MOLDABLE_START = "moldable_start"
    # operator job holds (qhold/qrls)
    JOB_HOLD = "job_hold"
    JOB_RELEASE = "job_release"
    # decision-ledger mirror: every scheduler verdict, when the ledger is on
    DECISION = "decision"
    # a declared service-level objective failed for a closed window
    # (repro.obs.slo); payload carries the objective, value and window
    SLO_BREACH = "slo_breach"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """A single timestamped observation.

    ``payload`` carries event-specific details (job id, node list, delay
    amounts, …) as a plain dict so traces stay serialisable.
    """

    time: float
    kind: EventKind
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # compact, log-friendly
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.payload.items()))
        return f"<{self.kind.value} @{self.time:.2f} {items}>"


class TraceLog:
    """Ordered log of :class:`TraceEvent` records with streaming subscribers.

    :param maxlen: when given, only the newest ``maxlen`` events are
        retained (ring-buffer mode); :attr:`dropped` counts evictions and
        :attr:`total_recorded` counts everything ever recorded.  Metrics
        that replay the full trace (e.g. utilization reconstruction) need
        an unbounded log or a live telemetry feed — see
        ``docs/OBSERVABILITY.md``.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive: {maxlen}")
        self.maxlen = maxlen
        self._events: Any = [] if maxlen is None else deque(maxlen=maxlen)
        #: events evicted by the ring buffer since the last :meth:`clear`
        self.dropped: int = 0
        #: events ever recorded (including evicted ones)
        self.total_recorded: int = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------
    # recording & streaming
    # ------------------------------------------------------------------
    def record(self, time: float, kind: EventKind, **payload: Any) -> TraceEvent:
        """Append an event, fan it out to subscribers, and return it."""
        ev = TraceEvent(time=time, kind=kind, payload=payload)
        if self.maxlen is not None and len(self._events) == self.maxlen:
            self.dropped += 1
        self._events.append(ev)
        self.total_recorded += 1
        for subscriber in self._subscribers:
            subscriber(ev)
        return ev

    def subscribe(
        self, callback: Callable[[TraceEvent], None]
    ) -> Callable[[TraceEvent], None]:
        """Register a callback invoked synchronously for every new event.

        Callbacks run in subscription order on the recording (engine)
        thread, so downstream consumers observe the exact deterministic
        event order of the simulation.  Returns the callback for use as a
        decorator or an :meth:`unsubscribe` token.
        """
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Remove a previously registered subscriber (ValueError if absent)."""
        self._subscribers.remove(callback)

    @property
    def subscribers(self) -> tuple[Callable[[TraceEvent], None], ...]:
        return tuple(self._subscribers)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> TraceEvent:
        return self._events[idx]

    def tail(self, n: int) -> list[TraceEvent]:
        """The newest ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        events = list(self._events)
        return events[-n:]

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of the given kind, in time order."""
        return [e for e in self._events if e.kind is kind]

    def for_job(self, job_id: str) -> list[TraceEvent]:
        """All events whose payload references ``job_id``."""
        return [e for e in self._events if e.payload.get("job_id") == job_id]

    def count(self, kind: EventKind) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self._events if e.kind is kind)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self.total_recorded = 0
