"""Typed trace events emitted by the simulated batch system.

Trace events are *observations*, not control flow: the engine drives the
simulation through callbacks, while components append :class:`TraceEvent`
records to a shared :class:`TraceLog` so that tests, metrics and experiment
harnesses can reconstruct exactly what happened and when.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator


class EventKind(enum.Enum):
    """Taxonomy of observable events in the batch system."""

    JOB_SUBMIT = "job_submit"
    JOB_START = "job_start"
    JOB_END = "job_end"
    JOB_ABORT = "job_abort"
    DYN_REQUEST = "dyn_request"
    DYN_GRANT = "dyn_grant"
    DYN_REJECT = "dyn_reject"
    DYN_RELEASE = "dyn_release"
    RESERVATION_CREATE = "reservation_create"
    BACKFILL_START = "backfill_start"
    PREEMPT = "preempt"
    SCHED_ITERATION = "sched_iteration"
    DFS_INTERVAL_ROLL = "dfs_interval_roll"
    NODE_FAIL = "node_fail"
    NODE_RECOVER = "node_recover"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """A single timestamped observation.

    ``payload`` carries event-specific details (job id, node list, delay
    amounts, …) as a plain dict so traces stay serialisable.
    """

    time: float
    kind: EventKind
    payload: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # compact, log-friendly
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.payload.items()))
        return f"<{self.kind.value} @{self.time:.2f} {items}>"


class TraceLog:
    """Append-only ordered log of :class:`TraceEvent` records."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, time: float, kind: EventKind, **payload: Any) -> TraceEvent:
        """Append an event and return it."""
        ev = TraceEvent(time=time, kind=kind, payload=payload)
        self._events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> TraceEvent:
        return self._events[idx]

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of the given kind, in time order."""
        return [e for e in self._events if e.kind is kind]

    def for_job(self, job_id: str) -> list[TraceEvent]:
        """All events whose payload references ``job_id``."""
        return [e for e in self._events if e.payload.get("job_id") == job_id]

    def count(self, kind: EventKind) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self._events if e.kind is kind)

    def clear(self) -> None:
        self._events.clear()
