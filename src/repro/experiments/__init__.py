"""Experiment harness: one runner per table/figure of the paper.

========  ==========================================================
artifact  runner
========  ==========================================================
Table I   :func:`repro.experiments.table1.table1_rows`
Table II  :func:`repro.experiments.table2.run_table2`
Fig. 7    :func:`repro.experiments.fig7.run_fig7`
Fig. 8    :func:`repro.experiments.fig8.run_fig8`
Fig. 9    :func:`repro.experiments.fig9.run_fig9`
Fig. 10   :func:`repro.experiments.fig10.run_fig10`
Fig. 11   :func:`repro.experiments.fig11.run_fig11`
Fig. 12   :func:`repro.experiments.fig12.run_fig12`
========  ==========================================================

Beyond the paper's artifacts, :func:`repro.experiments.resilience.run_resilience`
reruns the Table II configurations under seeded fault injection
(``repro.faults``); see ``docs/RESILIENCE.md``.
"""

from repro.experiments.configs import (
    DYN_500,
    DYN_600,
    DYN_HP,
    STATIC,
    ESPConfiguration,
    all_configurations,
)
from repro.experiments.runner import ESPResult, run_esp_configuration

__all__ = [
    "DYN_500",
    "DYN_600",
    "DYN_HP",
    "ESPConfiguration",
    "ESPResult",
    "STATIC",
    "all_configurations",
    "run_esp_configuration",
]
