"""Table I — the dynamic ESP workload definition.

Prints the paper's job-type table next to the values this reproduction
derives for the configured machine size: core counts from the ESP fractions,
and the model's dynamic execution time ``SET·c/(c+4)`` alongside the paper's
reference DET column.
"""

from __future__ import annotations

from repro.metrics.report import render_table
from repro.workloads.esp import (
    ESP_EXTRA_CORES,
    ESP_JOB_TYPES,
    esp_core_count,
    expected_dynamic_runtime,
)

__all__ = ["table1_rows", "render_table1"]


def table1_rows(total_cores: int = 120) -> list[dict]:
    """One dict per job type (paper values + model-derived values)."""
    rows = []
    for jtype in ESP_JOB_TYPES:
        cores = esp_core_count(jtype.fraction, total_cores)
        model_det = (
            expected_dynamic_runtime(
                jtype.static_execution_time, cores, ESP_EXTRA_CORES, 0.0
            )
            if jtype.is_evolving
            else None
        )
        rows.append(
            {
                "type": jtype.letter,
                "user": jtype.user,
                "fraction": jtype.fraction,
                "count": jtype.count,
                "cores": cores,
                "set_s": jtype.static_execution_time,
                "paper_det_s": jtype.paper_det,
                "model_det_s": model_det,
            }
        )
    return rows


def render_table1(total_cores: int = 120) -> str:
    rows = table1_rows(total_cores)
    headers = ["Type", "User", "Size", "Count", "Cores", "SET[s]", "DET[s] paper", "DET[s] model"]
    body = [
        [
            r["type"],
            r["user"],
            f"{r['fraction']:.5f}",
            r["count"],
            r["cores"],
            f"{r['set_s']:.0f}",
            "-" if r["paper_det_s"] is None else f"{r['paper_det_s']:.0f}",
            "-" if r["model_det_s"] is None else f"{r['model_det_s']:.0f}",
        ]
        for r in rows
    ]
    return render_table(headers, body, title=f"Table I — dynamic ESP on {total_cores} cores")
