"""Fig. 7 — Quadflow execution times by adaptation phase.

Runs each test case three ways on a dedicated 4-node cluster (so the job
never queues): static on 16 cores, static on 32 cores, and dynamic starting
on 16 cores with a runtime expansion to 32.  The dynamic run goes through
the full batch stack — the application issues a real ``tm_dynget`` when a
grid adaptation crosses the cells-per-process threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.quadflow import CYLINDER, FLAT_PLATE, QuadflowApp, QuadflowCase
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import MauiConfig
from repro.metrics.report import render_table
from repro.system import BatchSystem
from repro.units import hours

__all__ = ["QuadflowRun", "run_quadflow_case", "run_fig7", "render_fig7", "render_fig7_bars"]

PPN = 8


@dataclass(frozen=True)
class QuadflowRun:
    """One bar of Fig. 7: per-phase durations plus the total."""

    case: str
    label: str
    cores: str
    phase_times: tuple[float, ...]
    expanded_at_phase: int | None

    @property
    def total(self) -> float:
        return sum(self.phase_times)


def run_quadflow_case(
    case: QuadflowCase, *, dynamic: bool, start_nodes: int = 2, cluster_nodes: int = 4
) -> QuadflowRun:
    """Run one Quadflow job through the batch system and harvest phase times."""
    system = BatchSystem(
        num_nodes=cluster_nodes, cores_per_node=PPN, config=MauiConfig()
    )
    job = Job(
        request=ResourceRequest(nodes=start_nodes, ppn=PPN),
        walltime=hours(48),
        user="cfd01",
        flexibility=JobFlexibility.EVOLVING if dynamic else JobFlexibility.RIGID,
    )
    app = QuadflowApp(case, dynamic=dynamic, ppn=PPN)
    system.submit(job, app)
    system.run(max_events=100_000)
    if not job.is_finished:
        raise RuntimeError(f"Quadflow {case.name} did not finish")
    start_cores = start_nodes * PPN
    expanded = job.metadata.get("expanded_at_phase")
    cores_label = (
        f"{start_cores}->{start_cores * 2}" if dynamic and expanded is not None else str(start_cores)
    )
    return QuadflowRun(
        case=case.name,
        label="dynamic" if dynamic else f"static-{start_cores}",
        cores=cores_label,
        phase_times=tuple(job.metadata["phase_times"]),
        expanded_at_phase=expanded,
    )


def run_fig7() -> list[QuadflowRun]:
    """All six bars of Fig. 7 (two cases × three scenarios)."""
    runs: list[QuadflowRun] = []
    for case in (FLAT_PLATE, CYLINDER):
        runs.append(run_quadflow_case(case, dynamic=False, start_nodes=2))
        runs.append(run_quadflow_case(case, dynamic=False, start_nodes=4))
        runs.append(run_quadflow_case(case, dynamic=True, start_nodes=2))
    return runs


def render_fig7_bars(runs: list[QuadflowRun], *, width: int = 66) -> str:
    """Horizontal stacked bars, one per run — the shape of the paper's Fig. 7.

    Phases alternate between two fill characters (the paper alternates
    shading); the final (post-threshold) phase is the long tail whose
    halving produces the dynamic savings.
    """
    scale = max(run.total for run in runs)
    fills = "█▒"
    lines = []
    for run in runs:
        bar = []
        for i, phase_time in enumerate(run.phase_times):
            cells = max(1, int(round(width * phase_time / scale)))
            bar.append(fills[i % 2] * cells)
        label = f"{run.case} {run.label}"
        lines.append(f"{label:<22} {''.join(bar)} {run.total / 3600:.1f}h")
    lines.append(f"{'':<22} (alternating shades = adaptation phases)")
    return "\n".join(lines)


def render_fig7(runs: list[QuadflowRun] | None = None) -> str:
    if runs is None:
        runs = run_fig7()
    headers = ["Case", "Scenario", "Cores", "Phases [h]", "Total [h]", "Saving vs static-16"]
    static16 = {r.case: r.total for r in runs if r.label == "static-16"}
    body = []
    for r in runs:
        saving = ""
        if r.label == "dynamic":
            base = static16[r.case]
            saving = f"{100 * (base - r.total) / base:.1f}% ({(base - r.total) / 3600:.1f} h)"
        body.append(
            [
                r.case,
                r.label,
                r.cores,
                " + ".join(f"{t / 3600:.2f}" for t in r.phase_times),
                f"{r.total / 3600:.2f}",
                saving,
            ]
        )
    table = render_table(
        headers, body, title="Fig. 7 — Quadflow execution times by adaptation phase"
    )
    return table + "\n\n" + render_fig7_bars(runs)
