"""Fig. 12 — overhead of dynamic allocation of 1-10 nodes.

The paper times the full ``tm_dynget`` round-trip on the real cluster, with
(i) an otherwise empty batch system and (ii) a rigid workload queued and a
``ReservationDelayDepth`` of 5 — the loaded case pays for delay measurement
against the planned queue.  The analogous quantity here is the wall-clock
time the scheduler spends in its dynamic-request path (allocation search,
profile construction, delay measurement, fairness evaluation, grant), which
the scheduler accumulates in ``stats["dyn_handle_seconds"]``.

Absolute numbers are not comparable to the paper's (no RPCs, no daemons) but
the shape must hold: sub-second everywhere, loaded > empty, and a mild growth
with the number of nodes requested.
"""

from __future__ import annotations

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import Allocation, ResourceRequest
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import MauiConfig
from repro.metrics.report import render_table
from repro.rms.tm import TMContext
from repro.system import BatchSystem
from repro.units import hours

__all__ = ["OverheadProbe", "setup_overhead_scenario", "measure_overhead", "run_fig12", "render_fig12"]

PPN = 8


class _HoldApp:
    """Runs forever (until walltime); exposes its TM context to the probe."""

    def __init__(self) -> None:
        self.ctx: TMContext | None = None

    def launch(self, ctx: TMContext) -> None:
        self.ctx = ctx


class OverheadProbe:
    """A prepared scenario with a pending requester ready to call tm_dynget."""

    def __init__(self, system: BatchSystem, app: _HoldApp) -> None:
        self.system = system
        self.app = app
        self.grant: Allocation | None = None

    def request(self, nodes: int) -> float:
        """Issue the request and return the scheduler's handling time [s]."""
        assert self.app.ctx is not None, "requester job did not start"
        before = self.system.scheduler.stats["dyn_handle_seconds"]
        granted: list[Allocation | None] = []
        self.app.ctx.tm_dynget(
            ResourceRequest(nodes=nodes, ppn=PPN), granted.append
        )
        self.system.run(until=self.system.now)  # drain same-timestamp events
        if not granted:
            raise RuntimeError("dynamic request was not resolved")
        self.grant = granted[0]
        return self.system.scheduler.stats["dyn_handle_seconds"] - before


def setup_overhead_scenario(*, loaded: bool, num_nodes: int = 15) -> OverheadProbe:
    """One job on one node; optionally a rigid background workload.

    The loaded variant keeps 4 nodes busy with running rigid jobs and queues
    10 more jobs that cannot start, so the dynamic path must measure delays
    for a populated StartNow/StartLater plan (ReservationDelayDepth = 5)
    while 10 nodes stay idle for the grant.
    """
    config = MauiConfig(reservation_depth=5, reservation_delay_depth=5)
    system = BatchSystem(num_nodes=num_nodes, cores_per_node=PPN, config=config)
    app = _HoldApp()
    requester = Job(
        request=ResourceRequest(nodes=1, ppn=PPN),
        walltime=hours(10),
        user="dynuser",
        flexibility=JobFlexibility.EVOLVING,
    )
    system.submit(requester, app)
    if loaded:
        for i in range(4):
            system.submit(
                Job(
                    request=ResourceRequest(nodes=1, ppn=PPN),
                    walltime=hours(9),
                    user=f"bg{i % 3:02d}",
                ),
                FixedRuntimeApp(hours(9)),
            )
        for i in range(10):
            # oversized requests that must wait => reservations + delay math
            system.submit(
                Job(
                    request=ResourceRequest(cores=12 * PPN),
                    walltime=hours(1),
                    user=f"q{i % 5:02d}",
                ),
                FixedRuntimeApp(hours(1)),
            )
    system.run(until=system.now)  # let everything start / reserve
    return OverheadProbe(system, app)


def measure_overhead(nodes: int, *, loaded: bool) -> float:
    """Fig. 12 single data point: seconds to serve one dynamic request."""
    probe = setup_overhead_scenario(loaded=loaded)
    seconds = probe.request(nodes)
    if probe.grant is None or probe.grant.total_cores != nodes * PPN:
        raise RuntimeError(
            f"expected a grant of {nodes} nodes, got {probe.grant!r}"
        )
    return seconds


def run_fig12(repeats: int = 5) -> list[dict]:
    """Both curves, 1-10 nodes, best-of-``repeats`` per point."""
    rows = []
    for nodes in range(1, 11):
        empty = min(measure_overhead(nodes, loaded=False) for _ in range(repeats))
        loaded = min(measure_overhead(nodes, loaded=True) for _ in range(repeats))
        rows.append(
            {"nodes": nodes, "empty_ms": empty * 1e3, "loaded_ms": loaded * 1e3}
        )
    return rows


def render_fig12(rows: list[dict] | None = None) -> str:
    if rows is None:
        rows = run_fig12()
    headers = ["Nodes", "No workload [ms]", "Rigid workload, RDD=5 [ms]"]
    body = [
        [r["nodes"], f"{r['empty_ms']:.3f}", f"{r['loaded_ms']:.3f}"] for r in rows
    ]
    return render_table(
        headers, body, title="Fig. 12 — dynamic allocation overhead (wall-clock)"
    )
