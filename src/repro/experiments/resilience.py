"""Resilience experiment: the ESP configurations under failure injection.

Reruns the four canonical DFS policy configurations (Table II) with a
seeded :class:`repro.faults.FaultModel` driving node failures and
transient grant-delivery drops, and reports utilization, throughput,
lost work, requeue counts and the effective MTTR per configuration —
how much of the paper's fault-tolerance claim (Section I: dynamic
allocation helps "by allocating spare nodes to affected jobs") each
policy actually delivers.

Everything is deterministic: same (workload seed, fault seed) ⇒
byte-identical rows, serial or parallel, which the CI fault-injection
golden check (`cmp` of two exports) relies on.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.configs import all_configurations
from repro.faults import FaultModel
from repro.metrics.report import render_table

__all__ = [
    "default_fault_model",
    "run_resilience",
    "render_resilience",
    "export_resilience_json",
]

#: mirrors the experiment defaults exposed by the CLI: a node fails
#: roughly every 100 minutes of uptime, repairs take ~15 minutes, and
#: one in twenty grant deliveries is dropped (then retried)
DEFAULT_MTBF = 6000.0
DEFAULT_MTTR = 900.0
DEFAULT_DELIVERY_FAILURE_RATE = 0.05


def default_fault_model(
    fault_seed: int = 2014,
    *,
    mtbf: float | None = DEFAULT_MTBF,
    mttr: float = DEFAULT_MTTR,
    distribution: str = "exponential",
    burst_probability: float = 0.0,
    delivery_failure_rate: float = DEFAULT_DELIVERY_FAILURE_RATE,
) -> FaultModel:
    """The fault model the CLI builds from its flags."""
    return FaultModel(
        seed=fault_seed,
        mtbf=mtbf,
        mttr=mttr,
        distribution=distribution,
        burst_probability=burst_probability,
        grant_delivery_failure_rate=delivery_failure_rate,
    )


def run_resilience(
    seed: int = 2014,
    *,
    fault_model: FaultModel | None = None,
    workers: int = 1,
    telemetry=None,
) -> list[dict]:
    """Run every configuration under the fault model; rows in config order."""
    from repro.exec import map_specs
    from repro.exec.specs import ResilienceRunSpec, run_resilience_row

    if fault_model is None:
        fault_model = default_fault_model()
    specs = [
        ResilienceRunSpec(cfg.name, seed, fault_model)
        for cfg in all_configurations()
    ]
    return map_specs(
        run_resilience_row,
        specs,
        workers=workers,
        telemetry=telemetry,
        label="resilience",
    )


def render_resilience(
    rows: list[dict], *, title: str = "Resilience — ESP under failure injection"
) -> str:
    headers = [
        "Config",
        "Time[min]",
        "Util[%]",
        "TP[jobs/min]",
        "Fails",
        "Requeues",
        "Lost[core-h]",
        "MTTR_eff[s]",
        "Drops",
        "Degraded",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row["config"],
                f"{row['time_min']:.2f}",
                f"{row['util_pct']:.2f}",
                f"{row['throughput']:.2f}",
                row["node_failures"],
                row["jobs_requeued"],
                f"{row['lost_core_seconds'] / 3600.0:.2f}",
                f"{row['effective_mttr']:.0f}",
                row["delivery_drops"],
                row["delivery_degraded"],
            ]
        )
    return render_table(headers, body, title=title)


def export_resilience_json(
    rows: list[dict], out_dir: str | Path, *, fault_model: FaultModel, seed: int
) -> Path:
    """Write the rows (plus the generating model) as canonical JSON.

    Key order and float formatting are fully determined by the row
    values, so identical runs produce byte-identical files — the CI
    determinism check ``cmp``'s two of these.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "resilience.json"
    document = {
        "schema": "repro.resilience/1",
        "seed": seed,
        "fault_model": {
            "seed": fault_model.seed,
            "mtbf": fault_model.mtbf,
            "mttr": fault_model.mttr,
            "distribution": fault_model.distribution,
            "weibull_shape": fault_model.weibull_shape,
            "burst_probability": fault_model.burst_probability,
            "burst_size": fault_model.burst_size,
            "horizon": fault_model.horizon,
            "grant_delivery_failure_rate": fault_model.grant_delivery_failure_rate,
            "delivery_max_retries": fault_model.delivery_max_retries,
            "delivery_retry_backoff": fault_model.delivery_retry_backoff,
        },
        "rows": rows,
    }
    path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
    return path
