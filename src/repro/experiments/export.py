"""Machine-readable export of every reproduced artifact.

Downstream users replotting the paper's figures with their own tooling need
data, not ASCII art.  :func:`export_all` collects every table/figure into
one JSON-serialisable dict; the CLI exposes it as ``repro-batchsim export``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.experiments.fig7 import run_fig7
from repro.experiments.fig12 import run_fig12
from repro.experiments.runner import run_esp_configuration_cached
from repro.experiments.table1 import table1_rows
from repro.experiments.waits import wait_comparison

__all__ = ["export_all", "export_json"]

ALL_CONFIGS = ["Static", "Dyn-HP", "Dyn-500", "Dyn-600"]


def export_all(seed: int = 2014, *, include_fig12: bool = True) -> dict[str, Any]:
    """Every artifact's underlying data, keyed by paper label."""
    results = {name: run_esp_configuration_cached(name, seed=seed) for name in ALL_CONFIGS}
    baseline = results["Static"]

    table2 = []
    for name in ALL_CONFIGS:
        row = results[name].table2_row(baseline)
        row["paper_reference"] = results[name].configuration.paper_reference
        table2.append(row)

    _, wait_rows = wait_comparison(ALL_CONFIGS, seed=seed)
    waits = [
        {
            "index": r["index"],
            "type": r["type"],
            **{name: r[name] for name in ALL_CONFIGS},
        }
        for r in wait_rows
    ]

    quadflow = [
        {
            "case": run.case,
            "scenario": run.label,
            "cores": run.cores,
            "phase_times_s": list(run.phase_times),
            "total_s": run.total,
            "expanded_at_phase": run.expanded_at_phase,
        }
        for run in run_fig7()
    ]

    data: dict[str, Any] = {
        "paper": "A Batch System with Fair Scheduling for Evolving Applications (ICPP 2014)",
        "seed": seed,
        "table1": table1_rows(),
        "table2": table2,
        "fig7_quadflow": quadflow,
        "fig8_to_11_waits": waits,
    }
    if include_fig12:
        data["fig12_overhead_ms"] = run_fig12(repeats=3)
    return data


def export_json(seed: int = 2014, *, indent: int = 2, include_fig12: bool = True) -> str:
    """The export as pretty-printed JSON text."""
    return json.dumps(export_all(seed, include_fig12=include_fig12), indent=indent)
