"""Fig. 10 — waiting times: Static vs Dyn-HP vs Dyn-500.

The restrictive fairness setting makes waits markedly more uniform with
respect to the static baseline, at the price of fewer satisfied dynamic
requests (Table II).
"""

from __future__ import annotations

from repro.experiments.waits import render_wait_comparison, wait_comparison

__all__ = ["run_fig10", "render_fig10"]

CONFIGS = ["Static", "Dyn-HP", "Dyn-500"]


def run_fig10(seed: int = 2014):
    return wait_comparison(CONFIGS, seed=seed)


def render_fig10(seed: int = 2014) -> str:
    return render_wait_comparison(
        "Fig. 10 — waiting times: Static vs Dyn-HP vs Dyn-500", CONFIGS, seed=seed
    )
