"""Run one ESP configuration end to end and collect its metrics."""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from functools import lru_cache

from repro.experiments.configs import ESPConfiguration
from repro.metrics.collector import WorkloadMetrics
from repro.system import BatchSystem
from repro.workloads.esp import make_esp_workload

__all__ = [
    "ESPResult",
    "run_esp_configuration",
    "run_esp_configuration_cached",
    "run_esp_configuration_via_service",
]

#: the paper's testbed: 15 compute nodes × 2× quad-core Xeon X5570
DEFAULT_NODES = 15
DEFAULT_CORES_PER_NODE = 8
DEFAULT_SEED = 2014


@dataclass(frozen=True)
class ESPResult:
    """Outcome of one configuration run."""

    configuration: ESPConfiguration
    metrics: WorkloadMetrics
    scheduler_stats: dict
    #: the run's telemetry facade and trace, kept only for instrumented runs
    telemetry: object | None = None
    trace: object | None = None
    #: fault-injector report (``FaultInjector.report()``) when the run was
    #: executed under a fault model, else None
    resilience: dict | None = None

    @property
    def name(self) -> str:
        return self.configuration.name

    def table2_row(self, baseline: "ESPResult | None" = None) -> dict:
        """The Table II row for this run (throughput increase vs baseline)."""
        m = self.metrics
        row = {
            "config": self.name,
            "time_min": m.workload_time_minutes,
            "satisfied_dyn_jobs": m.satisfied_dyn_jobs,
            "util_pct": 100.0 * m.utilization,
            "throughput_jobs_per_min": m.throughput_jobs_per_minute,
        }
        if baseline is not None and baseline is not self:
            row["tp_increase_pct"] = m.throughput_increase_vs(baseline.metrics)
        return row


def run_esp_configuration(
    configuration: ESPConfiguration,
    *,
    num_nodes: int = DEFAULT_NODES,
    cores_per_node: int = DEFAULT_CORES_PER_NODE,
    seed: int = DEFAULT_SEED,
    walltime_factor: float = 1.0,
    telemetry=None,
    trace_maxlen: int | None = None,
    fault_model=None,
) -> ESPResult:
    """Simulate the (dynamic) ESP workload under one configuration.

    Pass a :class:`repro.obs.Telemetry` to collect live metrics, sampled
    time series and spans for the run; ``trace_maxlen`` bounds the event
    trace to a ring of that many events.  ``fault_model`` runs the
    workload under seeded fault injection (``repro.faults``).
    """
    system = BatchSystem(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        config=configuration.maui,
        telemetry=telemetry,
        trace_maxlen=trace_maxlen,
        fault_model=fault_model,
    )
    workload = make_esp_workload(
        total_cores=num_nodes * cores_per_node,
        dynamic=configuration.dynamic_workload,
        seed=seed,
        walltime_factor=walltime_factor,
    )
    workload.submit_to(system)
    system.run(max_events=10_000_000 if fault_model is not None else 5_000_000)
    if system.server.queue or system.server.active_count:
        raise RuntimeError(
            f"{configuration.name}: workload did not drain "
            f"({len(system.server.queue)} queued)"
        )
    return ESPResult(
        configuration=configuration,
        metrics=system.metrics(),
        scheduler_stats=dict(system.scheduler.stats),
        telemetry=telemetry,
        trace=system.trace if telemetry is not None else None,
        resilience=(
            system.fault_injector.report()
            if system.fault_injector is not None
            else None
        ),
    )


def run_esp_configuration_via_service(
    configuration: ESPConfiguration,
    *,
    num_nodes: int = DEFAULT_NODES,
    cores_per_node: int = DEFAULT_CORES_PER_NODE,
    seed: int = DEFAULT_SEED,
    walltime_factor: float = 1.0,
    telemetry=None,
    trace_maxlen: int | None = None,
    fault_model=None,
) -> ESPResult:
    """The same ESP run, driven through the scheduler service.

    Submits every spec through :class:`repro.service.SchedulerService` on
    the simulator backend and drains — the service's bit-identity contract
    says the returned result is indistinguishable from
    :func:`run_esp_configuration` (same schedules, same stats, byte-equal
    trace/ledger exports); the ``table2 --via-service`` CI golden check and
    ``tests/test_service.py`` both compare the two paths.
    """
    from repro.service import SchedulerService, SimBackend

    backend = SimBackend(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        config=configuration.maui,
        telemetry=telemetry,
        trace_maxlen=trace_maxlen,
        fault_model=fault_model,
    )
    workload = make_esp_workload(
        total_cores=num_nodes * cores_per_node,
        dynamic=configuration.dynamic_workload,
        seed=seed,
        walltime_factor=walltime_factor,
    )

    async def _drive() -> None:
        async with SchedulerService(backend) as service:
            for spec in workload:
                await service.submit(spec)
            await service.drain()

    asyncio.run(_drive())
    core = backend.core
    if core.server.queue or core.server.active_count:
        raise RuntimeError(
            f"{configuration.name}: workload did not drain through the service "
            f"({len(core.server.queue)} queued)"
        )
    return ESPResult(
        configuration=configuration,
        metrics=backend.metrics(),
        scheduler_stats=dict(core.scheduler.stats),
        telemetry=telemetry,
        trace=core.trace if telemetry is not None else None,
        resilience=(
            core.fault_injector.report() if core.fault_injector is not None else None
        ),
    )


@lru_cache(maxsize=16)
def _cached(config_name: str, num_nodes: int, cores_per_node: int, seed: int) -> ESPResult:
    from repro.experiments.configs import all_configurations

    configuration = next(
        c for c in all_configurations() if c.name == config_name
    )
    return run_esp_configuration(
        configuration, num_nodes=num_nodes, cores_per_node=cores_per_node, seed=seed
    )


def run_esp_configuration_cached(
    config_name: str,
    *,
    num_nodes: int = DEFAULT_NODES,
    cores_per_node: int = DEFAULT_CORES_PER_NODE,
    seed: int = DEFAULT_SEED,
) -> ESPResult:
    """Memoised runner for the four canonical configurations.

    The figure harnesses (8-11) share runs with Table II instead of
    re-simulating the same workload several times.
    """
    return _cached(config_name, num_nodes, cores_per_node, seed)
