"""Fig. 8 — waiting times, Static vs Dynamic-HP.

The paper's observation: most waits shrink under Dyn-HP, but a contiguous
band of mid-submission jobs waits *longer* than in the static run — the
unfairness the DFS policies exist to bound.
"""

from __future__ import annotations

from repro.experiments.waits import render_wait_comparison, wait_comparison

__all__ = ["run_fig8", "render_fig8"]

CONFIGS = ["Static", "Dyn-HP"]


def run_fig8(seed: int = 2014):
    """Results plus per-job rows for Static and Dyn-HP."""
    return wait_comparison(CONFIGS, seed=seed)


def render_fig8(seed: int = 2014) -> str:
    text = render_wait_comparison(
        "Fig. 8 — waiting times per job: Static vs Dyn-HP", CONFIGS, seed=seed
    )
    _, rows = run_fig8(seed)
    worse = [
        r["index"]
        for r in rows
        if r["Static"] is not None
        and r["Dyn-HP"] is not None
        and r["Dyn-HP"] > r["Static"] + 1.0
    ]
    if worse:
        text += (
            f"\n  jobs waiting longer under Dyn-HP: {len(worse)} "
            f"(indices {worse[0]}..{worse[-1]})"
        )
    return text
