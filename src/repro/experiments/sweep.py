"""Seed sweeps: statistical robustness for the Table II comparison.

The paper evaluates a single run per configuration; the exact ESP job order
is unpublished, so this reproduction's default seed is one draw from the
order distribution.  :func:`run_seed_sweep` replays every configuration over
many seeds and reports mean ± stdev per metric, plus how often each of the
paper's qualitative orderings holds — the honest way to state which results
are order-robust and which are single-run artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.configs import all_configurations
from repro.experiments.runner import run_esp_configuration
from repro.metrics.report import render_table

__all__ = ["SweepResult", "run_seed_sweep", "render_sweep"]


@dataclass
class SweepResult:
    """Per-configuration samples across seeds."""

    seeds: list[int]
    #: config name -> list of per-seed metric dicts
    samples: dict[str, list[dict]] = field(default_factory=dict)

    def stats(self, config: str, metric: str) -> tuple[float, float]:
        values = np.array([s[metric] for s in self.samples[config]], dtype=float)
        return float(values.mean()), float(values.std())

    def ordering_holds(self, metric: str, better: str, worse: str, *, larger_is_better: bool) -> float:
        """Fraction of seeds where ``better`` beats ``worse`` on ``metric``."""
        wins = 0
        for sample_b, sample_w in zip(self.samples[better], self.samples[worse]):
            if larger_is_better:
                wins += sample_b[metric] > sample_w[metric]
            else:
                wins += sample_b[metric] < sample_w[metric]
        return wins / len(self.seeds)


def run_seed_sweep(
    seeds: list[int] | None = None,
    *,
    trace_maxlen: int | None = None,
    workers: int = 1,
    telemetry=None,
) -> SweepResult:
    """All four configurations over the given seeds (default: 8 seeds).

    ``trace_maxlen`` bounds each run's event trace to a ring of that many
    events (default: unbounded, the historical behaviour); bounded runs get
    a per-run telemetry facade so utilization stays exact via the live
    busy-core integral instead of trace replay.

    ``workers`` fans the (configuration, seed) grid out over worker
    processes through :func:`repro.exec.map_specs`; results come back in
    grid order, so the :class:`SweepResult` is bit-identical to a serial
    run.  ``telemetry`` (parent-side) surfaces sweep progress/ETA gauges.
    """
    from repro.exec import map_specs
    from repro.exec.specs import SweepRunSpec, run_sweep_row

    if seeds is None:
        seeds = [1, 2, 3, 7, 42, 99, 1234, 2014]
    configurations = all_configurations()
    specs = [
        SweepRunSpec(configuration.name, seed, trace_maxlen)
        for configuration in configurations
        for seed in seeds
    ]
    rows = map_specs(
        run_sweep_row, specs, workers=workers, telemetry=telemetry, label="sweep"
    )
    result = SweepResult(seeds=list(seeds))
    for i, configuration in enumerate(configurations):
        result.samples[configuration.name] = rows[i * len(seeds) : (i + 1) * len(seeds)]
    return result


def render_sweep(result: SweepResult) -> str:
    headers = ["Config", "Time[min]", "Satisfied", "Util[%]", "TP[jobs/min]"]
    body = []
    for name in result.samples:
        cells = [name]
        for metric in ("time_min", "satisfied", "util_pct", "throughput"):
            mean, std = result.stats(name, metric)
            cells.append(f"{mean:.2f} ± {std:.2f}")
        body.append(cells)
    table = render_table(
        headers, body, title=f"Table II over {len(result.seeds)} workload orders (mean ± std)"
    )
    checks = [
        ("Dyn-HP faster than Static", "time_min", "Dyn-HP", "Static", False),
        ("Dyn-500 faster than Static", "time_min", "Dyn-500", "Static", False),
        ("Dyn-600 faster than Static", "time_min", "Dyn-600", "Static", False),
        ("Dyn-HP higher util than Static", "util_pct", "Dyn-HP", "Static", True),
        ("Dyn-600 higher util than Dyn-500", "util_pct", "Dyn-600", "Dyn-500", True),
        ("Dyn-HP higher util than Dyn-600", "util_pct", "Dyn-HP", "Dyn-600", True),
    ]
    lines = [table, "", "ordering robustness (fraction of seeds where it holds):"]
    for label, metric, better, worse, larger in checks:
        frac = result.ordering_holds(metric, better, worse, larger_is_better=larger)
        lines.append(f"  {label:<36} {frac:.0%}")
    return "\n".join(lines)
