"""Fig. 9 — waiting times of type-L jobs across all four configurations.

Type L (user08, 36 jobs) is the paper's showcase victim: half its jobs wait
longer under Dyn-HP, and the DFS configurations pull those waits back down.
"""

from __future__ import annotations

from repro.experiments.waits import render_wait_comparison, wait_comparison

__all__ = ["run_fig9", "render_fig9"]

CONFIGS = ["Static", "Dyn-HP", "Dyn-500", "Dyn-600"]


def run_fig9(seed: int = 2014):
    results, rows = wait_comparison(CONFIGS, seed=seed)
    return results, [r for r in rows if r["type"] == "L"]


def render_fig9(seed: int = 2014) -> str:
    return render_wait_comparison(
        "Fig. 9 — waiting times of type L jobs (all configurations)",
        CONFIGS,
        seed=seed,
        esp_type="L",
    )
