"""Fig. 11 — waiting times: Static vs Dyn-HP vs Dyn-600.

The moderate fairness setting recovers most of Dyn-HP's system performance
while still damping the unfair wait inflation of the mid-range jobs.
"""

from __future__ import annotations

from repro.experiments.waits import render_wait_comparison, wait_comparison

__all__ = ["run_fig11", "render_fig11"]

CONFIGS = ["Static", "Dyn-HP", "Dyn-600"]


def run_fig11(seed: int = 2014):
    return wait_comparison(CONFIGS, seed=seed)


def render_fig11(seed: int = 2014) -> str:
    return render_wait_comparison(
        "Fig. 11 — waiting times: Static vs Dyn-HP vs Dyn-600", CONFIGS, seed=seed
    )
