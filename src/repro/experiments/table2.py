"""Table II — performance comparison of the four evaluation configurations."""

from __future__ import annotations

from repro.experiments.configs import all_configurations
from repro.experiments.runner import ESPResult, run_esp_configuration_cached
from repro.metrics.report import render_table

__all__ = ["run_table2", "render_table2"]


def run_table2(seed: int = 2014) -> list[ESPResult]:
    """Run (or reuse) all four configurations; Static is the baseline row."""
    return [
        run_esp_configuration_cached(cfg.name, seed=seed)
        for cfg in all_configurations()
    ]


def render_table2(results: list[ESPResult] | None = None, seed: int = 2014) -> str:
    if results is None:
        results = run_table2(seed=seed)
    baseline = results[0]
    headers = [
        "Config",
        "Time[min]",
        "Satisfied Dyn Jobs",
        "Util[%]",
        "TP[jobs/min]",
        "TP increase[%]",
        "paper Time",
        "paper Sat",
        "paper Util",
    ]
    body = []
    for result in results:
        row = result.table2_row(baseline)
        ref = result.configuration.paper_reference
        body.append(
            [
                row["config"],
                f"{row['time_min']:.2f}",
                row["satisfied_dyn_jobs"],
                f"{row['util_pct']:.2f}",
                f"{row['throughput_jobs_per_min']:.2f}",
                "-" if "tp_increase_pct" not in row else f"{row['tp_increase_pct']:.1f}",
                f"{ref['time_min']:.2f}",
                ref["satisfied"],
                f"{ref['util_pct']:.2f}",
            ]
        )
    return render_table(
        headers, body, title="Table II — performance comparison (measured vs paper)"
    )
