"""Table II — performance comparison of the four evaluation configurations."""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.experiments.configs import all_configurations
from repro.experiments.runner import (
    ESPResult,
    run_esp_configuration,
    run_esp_configuration_cached,
    run_esp_configuration_via_service,
)
from repro.metrics.report import render_table

__all__ = ["run_table2", "run_table2_instrumented", "render_table2", "with_shards"]


def with_shards(configuration, shards: int | None):
    """Return the configuration with a scheduler-shard-count override."""
    if shards is None:
        return configuration
    return dataclasses.replace(
        configuration,
        maui=dataclasses.replace(configuration.maui, scheduler_shards=shards),
    )


def run_table2(
    seed: int = 2014, *, workers: int = 1, telemetry=None, shards: int | None = None
) -> list[ESPResult]:
    """Run (or reuse) all four configurations; Static is the baseline row.

    Serial runs go through the on-disk result cache as before.  With
    ``workers > 1`` the four configurations run as fresh simulations in
    worker processes (the pickle cache is a per-process optimisation;
    results are identical either way).  ``shards`` overrides the scheduler
    shard count (0 = the monolithic oracle pass); shard-overridden runs
    bypass the result cache so they never alias the default entries.
    """
    from repro.exec import map_specs, resolve_workers
    from repro.exec.specs import Table2RunSpec, run_table2_result

    if resolve_workers(workers) == 1:
        if shards is None:
            return [
                run_esp_configuration_cached(cfg.name, seed=seed)
                for cfg in all_configurations()
            ]
        return [
            run_esp_configuration(with_shards(cfg, shards), seed=seed)
            for cfg in all_configurations()
        ]
    specs = [
        Table2RunSpec(cfg.name, seed, shards=shards) for cfg in all_configurations()
    ]
    return map_specs(
        run_table2_result, specs, workers=workers, telemetry=telemetry, label="table2"
    )


def _run_instrumented_config(
    config_name: str,
    seed: int,
    out_dir: str | Path | None,
    *,
    decision_ledger: bool = False,
    profile: bool = False,
    window_width: float = 600.0,
    shards: int | None = None,
    slo: tuple[str, ...] | None = None,
    via_service: bool = False,
) -> ESPResult:
    """Run one configuration with full telemetry and write its dumps.

    This is the single implementation behind both the serial loop and the
    parallel exec-engine worker (``Table2InstrumentedSpec``) — one writer
    is what makes ``-j N`` dumps byte-identical to serial ones.  With
    ``via_service`` the run is driven through the scheduler service on the
    simulator backend instead of directly — by the service's bit-identity
    contract the dumps must stay byte-identical (the CI golden check).
    """
    from repro.obs import Telemetry, export_jsonl, to_prometheus_text

    cfg = next(c for c in all_configurations() if c.name == config_name)
    telemetry = Telemetry(
        decision_ledger=decision_ledger,
        profiling=profile,
        windows=window_width if (profile or slo) else None,
        slo=list(slo) if slo else None,
    )
    runner = run_esp_configuration_via_service if via_service else run_esp_configuration
    result = runner(with_shards(cfg, shards), seed=seed, telemetry=telemetry)
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        export_jsonl(result.trace, out / f"{cfg.name}.trace.jsonl")
        (out / f"{cfg.name}.metrics.prom").write_text(
            to_prometheus_text(telemetry.registry)
        )
        if telemetry.ledger is not None:
            telemetry.ledger.export_jsonl(out / f"{cfg.name}.ledger.jsonl")
        if telemetry.profiler is not None:
            with open(out / f"{cfg.name}.phases.jsonl", "w") as fp:
                telemetry.profiler.export_phases_jsonl(fp)
        if telemetry.windows is not None:
            with open(out / f"{cfg.name}.windows.jsonl", "w") as fp:
                telemetry.windows.export_jsonl(fp)
        if telemetry.fairness is not None:
            with open(out / f"{cfg.name}.fairness.jsonl", "w") as fp:
                telemetry.fairness.export_jsonl(fp)
        if telemetry.slo is not None:
            with open(out / f"{cfg.name}.slo.jsonl", "w") as fp:
                telemetry.slo.export_jsonl(fp)
    return result


def run_table2_instrumented(
    seed: int = 2014,
    out_dir: str | Path | None = None,
    *,
    decision_ledger: bool = False,
    profile: bool = False,
    window_width: float = 600.0,
    shards: int | None = None,
    slo: tuple[str, ...] | None = None,
    workers: int = 1,
    via_service: bool = False,
) -> list[ESPResult]:
    """Table II with full telemetry: fresh runs, one Telemetry each.

    When ``out_dir`` is given, each configuration dumps its event trace as
    ``<config>.trace.jsonl`` and its metrics registry as
    ``<config>.metrics.prom`` (Prometheus text exposition) into it.  With
    ``decision_ledger=True`` the scheduler's causal decision ledger is
    recorded too and dumped as ``<config>.ledger.jsonl`` — deterministic
    per (config, seed), so two runs produce byte-identical files (the CI
    golden-ledger check relies on this).  With ``profile=True`` the phase
    profiler and windowed aggregates run too, dumped as
    ``<config>.phases.jsonl`` and ``<config>.windows.jsonl``
    (``window_width`` sim-seconds per tumbling window); both are readable
    by the ``perf-report`` subcommand.  With ``slo`` (a sequence of
    objective strings like ``"p99_wait < 4h"``) the fairness observatory
    and SLO engine run over the same windows and dump
    ``<config>.fairness.jsonl`` and ``<config>.slo.jsonl`` — also
    byte-identical per (config, seed), and per worker count: with
    ``workers > 1`` the configurations run in exec-engine worker
    processes through the same single writer (the CI serial-vs-``-j 2``
    golden check relies on this).  ``shards`` overrides the scheduler
    shard count — the CI sharded-vs-unsharded golden check runs this twice
    (``shards=1`` vs ``shards=0``) and byte-compares the dumps.
    ``via_service`` drives each run through the scheduler service on the
    simulator backend (``repro.service``); the CI service golden check
    byte-compares its dumps against the direct path's.
    """
    from repro.exec import map_specs, resolve_workers

    if resolve_workers(workers) == 1:
        return [
            _run_instrumented_config(
                cfg.name,
                seed,
                out_dir,
                decision_ledger=decision_ledger,
                profile=profile,
                window_width=window_width,
                shards=shards,
                slo=slo,
                via_service=via_service,
            )
            for cfg in all_configurations()
        ]
    from repro.exec.specs import Table2InstrumentedSpec, run_table2_instrumented_result

    specs = [
        Table2InstrumentedSpec(
            cfg.name,
            seed,
            None if out_dir is None else str(out_dir),
            decision_ledger=decision_ledger,
            profile=profile,
            window_width=window_width,
            shards=shards,
            slo=tuple(slo) if slo else None,
            via_service=via_service,
        )
        for cfg in all_configurations()
    ]
    return map_specs(
        run_table2_instrumented_result,
        specs,
        workers=workers,
        label="table2-instrumented",
    )


def render_table2(results: list[ESPResult] | None = None, seed: int = 2014) -> str:
    if results is None:
        results = run_table2(seed=seed)
    baseline = results[0]
    headers = [
        "Config",
        "Time[min]",
        "Satisfied Dyn Jobs",
        "Util[%]",
        "TP[jobs/min]",
        "TP increase[%]",
        "paper Time",
        "paper Sat",
        "paper Util",
    ]
    body = []
    for result in results:
        row = result.table2_row(baseline)
        ref = result.configuration.paper_reference
        body.append(
            [
                row["config"],
                f"{row['time_min']:.2f}",
                row["satisfied_dyn_jobs"],
                f"{row['util_pct']:.2f}",
                f"{row['throughput_jobs_per_min']:.2f}",
                "-" if "tp_increase_pct" not in row else f"{row['tp_increase_pct']:.1f}",
                f"{ref['time_min']:.2f}",
                ref["satisfied"],
                f"{ref['util_pct']:.2f}",
            ]
        )
    return render_table(
        headers, body, title="Table II — performance comparison (measured vs paper)"
    )
