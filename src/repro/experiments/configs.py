"""The paper's four evaluation configurations (Section IV-B).

* **Static** — F-J jobs acquire no dynamic resources (plain Algorithm 1);
* **Dyn-HP** — dynamic allocation with fairness disabled: dynamic requests
  effectively have the highest priority;
* **Dyn-500** — cumulative delay per static user capped at 500 s per 1 h
  interval (``DFSTargetDelay``);
* **Dyn-600** — same with a 600 s cap.

All four use ``ReservationDepth = ReservationDelayDepth = 5``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.maui.config import DFSConfig, MauiConfig

__all__ = [
    "ESPConfiguration",
    "STATIC",
    "DYN_HP",
    "DYN_500",
    "DYN_600",
    "all_configurations",
    "dynamic_target_config",
]


@dataclass(frozen=True)
class ESPConfiguration:
    """A named (scheduler config, workload variant) pair."""

    name: str
    maui: MauiConfig
    #: True → types F-J evolve (issue dynamic requests); False → all rigid
    dynamic_workload: bool
    paper_reference: dict[str, float] = field(default_factory=dict)


def _base_maui(**overrides) -> MauiConfig:
    return MauiConfig(reservation_depth=5, reservation_delay_depth=5, **overrides)


def dynamic_target_config(limit_seconds: float) -> MauiConfig:
    """Dyn-<limit>: cumulative per-user delay cap per one-hour interval."""
    return _base_maui(
        dfs=DFSConfig.target_delay_for_all(limit_seconds, interval=3600.0, decay=0.0)
    )


STATIC = ESPConfiguration(
    name="Static",
    maui=_base_maui(dynamic_enabled=False),
    dynamic_workload=False,
    paper_reference={
        "time_min": 265.78,
        "satisfied": 0,
        "util_pct": 77.45,
        "throughput": 0.86,
    },
)

DYN_HP = ESPConfiguration(
    name="Dyn-HP",
    maui=_base_maui(),  # DFSPolicy defaults to NONE: highest priority
    dynamic_workload=True,
    paper_reference={
        "time_min": 238.78,
        "satisfied": 43,
        "util_pct": 85.02,
        "throughput": 0.96,
        "tp_increase_pct": 11.3,
    },
)

DYN_500 = ESPConfiguration(
    name="Dyn-500",
    maui=dynamic_target_config(500.0),
    dynamic_workload=True,
    paper_reference={
        "time_min": 248.85,
        "satisfied": 20,
        "util_pct": 82.26,
        "throughput": 0.92,
        "tp_increase_pct": 6.8,
    },
)

DYN_600 = ESPConfiguration(
    name="Dyn-600",
    maui=dynamic_target_config(600.0),
    dynamic_workload=True,
    paper_reference={
        "time_min": 241.06,
        "satisfied": 27,
        "util_pct": 83.57,
        "throughput": 0.95,
        "tp_increase_pct": 10.2,
    },
)


def all_configurations() -> list[ESPConfiguration]:
    """Table II rows in paper order."""
    return [STATIC, DYN_HP, DYN_500, DYN_600]
