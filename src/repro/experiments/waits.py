"""Shared machinery for the waiting-time figures (Figs. 8-11).

Each figure compares per-job waiting times across configurations, with jobs
on the x-axis in submission order.  Because every configuration replays the
same seeded workload, submission indices are directly comparable between
runs.
"""

from __future__ import annotations

from repro.experiments.runner import ESPResult, run_esp_configuration_cached
from repro.metrics.plot import render_xy_plot
from repro.metrics.report import render_table

__all__ = ["wait_comparison", "render_wait_comparison"]


def wait_comparison(
    config_names: list[str], seed: int = 2014
) -> tuple[list[ESPResult], list[dict]]:
    """Per-job waits for the named configurations.

    Returns the results plus one dict per submission index:
    ``{"index": i, "type": letter, "<config>": wait_seconds, ...}``.
    """
    results = [run_esp_configuration_cached(name, seed=seed) for name in config_names]
    base_records = results[0].metrics.records
    rows: list[dict] = []
    for i, record in enumerate(base_records):
        row: dict = {"index": i, "type": record.esp_type}
        for result in results:
            rec = result.metrics.records[i]
            if rec.esp_type != record.esp_type:
                raise RuntimeError(
                    "workload replay mismatch: differing job order between runs"
                )
            row[result.name] = rec.wait_time
        rows.append(row)
    return results, rows


def render_wait_comparison(
    title: str,
    config_names: list[str],
    seed: int = 2014,
    *,
    every: int = 10,
    esp_type: str | None = None,
) -> str:
    """A figure as an aligned table (optionally filtered to one job type)."""
    results, rows = wait_comparison(config_names, seed=seed)
    if esp_type is not None:
        rows = [r for r in rows if r["type"] == esp_type]
        shown = rows
    else:
        shown = rows[::every]
    headers = ["Job#", "Type"] + [f"{n} wait[s]" for n in config_names]
    body = [
        [r["index"], r["type"] or "-"]
        + [("-" if r[n] is None else f"{r[n]:.0f}") for n in config_names]
        for r in shown
    ]
    summary_lines = []
    for result in results:
        m = result.metrics
        summary_lines.append(
            f"  {result.name}: mean wait {m.mean_wait:.0f}s over "
            f"{len(m.records)} jobs, per-user wait fairness "
            f"{m.wait_fairness_index:.3f} (Jain)"
        )
    table = render_table(headers, body, title=title)
    plot = render_xy_plot(
        {
            name: [
                (r["index"], r[name]) for r in rows if r[name] is not None
            ]
            for name in config_names
        },
        title="",
        x_label="job (submission order)",
        y_label="wait [s]",
        height=18,
    )
    return table + "\n" + "\n".join(summary_lines) + "\n\n" + plot
