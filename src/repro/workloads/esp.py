"""The ESP benchmark and its dynamic (evolving-job) variant — paper Table I.

The original ESP system-utilization benchmark (Wong et al., SC 2000) runs
230 jobs of 14 types; every type occupies a fixed fraction of the machine
and runs a fixed time.  The paper modifies it so job types F, G, H, I and J
(69 jobs, 30 %) are *evolving*: each requests 4 extra cores after 16 % of
its static execution time (SET), retries at 25 % if rejected, and — on a
grant — finishes early per the linear speedup model (Table I's dynamic
execution time, DET).

Every rigid type is owned by a distinct user and all evolving types by
``user06``, reproducing the paper's per-user fairness accounting exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile, EvolutionStep
from repro.workloads.spec import JobSpec, Workload
from repro.workloads.submission import esp_submission_times

__all__ = [
    "ESPJobType",
    "ESP_JOB_TYPES",
    "esp_core_count",
    "expected_dynamic_runtime",
    "make_esp_workload",
]


@dataclass(frozen=True, slots=True)
class ESPJobType:
    """One row of Table I."""

    letter: str
    user: str
    fraction: float
    count: int
    #: static execution time in seconds (SET)
    static_execution_time: float
    #: the paper's reference dynamic execution time (DET); None for rigid jobs
    paper_det: float | None = None

    @property
    def is_evolving(self) -> bool:
        return self.paper_det is not None


#: Table I of the paper, verbatim.
ESP_JOB_TYPES: tuple[ESPJobType, ...] = (
    ESPJobType("A", "user01", 0.03125, 75, 267.0),
    ESPJobType("B", "user02", 0.06250, 9, 322.0),
    ESPJobType("C", "user03", 0.50000, 3, 534.0),
    ESPJobType("D", "user04", 0.25000, 3, 616.0),
    ESPJobType("E", "user05", 0.50000, 3, 315.0),
    ESPJobType("F", "user06", 0.06250, 9, 1846.0, 1230.0),
    ESPJobType("G", "user06", 0.12500, 6, 1334.0, 1067.0),
    ESPJobType("H", "user06", 0.15820, 6, 1067.0, 896.0),
    ESPJobType("I", "user06", 0.03125, 24, 1432.0, 716.0),
    ESPJobType("J", "user06", 0.06250, 24, 725.0, 483.0),
    ESPJobType("K", "user07", 0.09570, 15, 487.0),
    ESPJobType("L", "user08", 0.12500, 36, 366.0),
    ESPJobType("M", "user09", 0.25000, 15, 187.0),
    ESPJobType("Z", "user10", 1.00000, 2, 100.0),
)

#: extra cores each evolving job requests (paper: "4 additional cores each")
ESP_EXTRA_CORES = 4
#: first request after 16 % of SET, retry after 25 % (Cylinder-derived)
ESP_REQUEST_FRACTION = 0.16
ESP_RETRY_FRACTION = 0.25


def esp_core_count(fraction: float, total_cores: int) -> int:
    """Cores for an ESP size fraction on a machine of ``total_cores``."""
    return max(1, round(fraction * total_cores))


def expected_dynamic_runtime(
    set_seconds: float, base_cores: int, extra_cores: int, granted_at_fraction: float
) -> float:
    """Runtime under the linear model with a grant at the given fraction.

    A grant at fraction *f* leaves ``(1-f)·SET`` of work to run at speedup
    ``(c+k)/c``: total = ``f·SET + (1-f)·SET·c/(c+k)``.  With ``f = 0`` this
    is the whole-run DET, ``SET·c/(c+k)``.
    """
    c, k = base_cores, extra_cores
    return set_seconds * (granted_at_fraction + (1 - granted_at_fraction) * c / (c + k))


def make_esp_workload(
    total_cores: int = 120,
    *,
    dynamic: bool = True,
    seed: int = 2014,
    burst: int = 50,
    interval: float = 30.0,
    walltime_factor: float = 1.0,
    negotiation_timeout: float | None = None,
) -> Workload:
    """Build the (dynamic) ESP workload for a machine of ``total_cores``.

    :param dynamic: with False, types F-J are plain rigid jobs — the paper's
        "Static" workload configuration.
    :param seed: deterministic shuffle of the 228 regular jobs ("submitted in
        a particular order"); the 2 Z jobs always come last, 30 minutes after
        the final regular submission.
    :param walltime_factor: requested walltime as a multiple of SET (users
        typically over-request; 1.0 reproduces ESP's exact-walltime runs).
    :param negotiation_timeout: when set, evolving jobs use the negotiation
        protocol with this window instead of the paper's 25 % retry (the
        Section III-C outlook, studied by the negotiation ablation bench).
    """
    if walltime_factor < 1.0:
        raise ValueError("walltime must cover the static execution time")
    regular_types = [t for t in ESP_JOB_TYPES if t.letter != "Z"]
    z_type = next(t for t in ESP_JOB_TYPES if t.letter == "Z")

    ordered: list[ESPJobType] = []
    for jtype in regular_types:
        ordered.extend([jtype] * jtype.count)
    rng = np.random.default_rng(seed)
    rng.shuffle(ordered)  # the fixed "particular order" for this seed

    regular_times, z_times = esp_submission_times(
        len(ordered), z_type.count, burst=burst, interval=interval
    )

    specs: list[JobSpec] = []
    for submit_time, jtype in zip(regular_times, ordered):
        specs.append(
            _make_spec(
                jtype, submit_time, total_cores, dynamic, walltime_factor,
                negotiation_timeout,
            )
        )
    for k, submit_time in enumerate(z_times):
        specs.append(
            JobSpec(
                submit_time=submit_time,
                request=ResourceRequest(cores=esp_core_count(z_type.fraction, total_cores)),
                walltime=z_type.static_execution_time * walltime_factor,
                user=z_type.user,
                esp_type="Z",
                top_priority=True,
                app_factory=_fixed_app_factory(z_type.static_execution_time),
            )
        )
    name = "dynamic-esp" if dynamic else "static-esp"
    return Workload(specs=specs, name=name)


def _make_spec(
    jtype: ESPJobType,
    submit_time: float,
    total_cores: int,
    dynamic: bool,
    walltime_factor: float,
    negotiation_timeout: float | None = None,
) -> JobSpec:
    cores = esp_core_count(jtype.fraction, total_cores)
    runtime = jtype.static_execution_time
    evolution = None
    app_factory = _fixed_app_factory(runtime)
    if dynamic and jtype.is_evolving:
        retries = () if negotiation_timeout is not None else (ESP_RETRY_FRACTION,)
        evolution = EvolutionProfile(
            steps=(
                EvolutionStep(
                    at_fraction=ESP_REQUEST_FRACTION,
                    request=ResourceRequest(cores=ESP_EXTRA_CORES),
                    retry_fractions=retries,
                ),
            )
        )
        app_factory = _evolving_app_factory(runtime, negotiation_timeout)
    return JobSpec(
        submit_time=submit_time,
        request=ResourceRequest(cores=cores),
        walltime=runtime * walltime_factor,
        user=jtype.user,
        esp_type=jtype.letter,
        evolution=evolution,
        app_factory=app_factory,
    )


def _fixed_app_factory(runtime: float):
    return lambda: FixedRuntimeApp(runtime)


def _evolving_app_factory(set_seconds: float, negotiation_timeout: float | None = None):
    return lambda: EvolvingWorkApp(
        set_seconds, negotiation_timeout=negotiation_timeout
    )
