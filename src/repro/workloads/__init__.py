"""Workload generation: the (dynamic) ESP benchmark and synthetic mixes."""

from repro.workloads.evolve import evolving_ify
from repro.workloads.esp import (
    ESP_JOB_TYPES,
    ESPJobType,
    esp_core_count,
    make_esp_workload,
)
from repro.workloads.random_workload import make_diurnal_workload, make_random_workload
from repro.workloads.spec import JobSpec, Workload
from repro.workloads.submission import esp_submission_times
from repro.workloads.swf import from_swf, to_swf

__all__ = [
    "ESPJobType",
    "ESP_JOB_TYPES",
    "JobSpec",
    "Workload",
    "esp_core_count",
    "esp_submission_times",
    "evolving_ify",
    "from_swf",
    "to_swf",
    "make_diurnal_workload",
    "make_esp_workload",
    "make_random_workload",
]
