"""Randomised mixed workloads (extension beyond the paper's ESP runs).

Useful for stress tests and for exploring fairness-policy behaviour on
workloads the paper did not publish: Poisson arrivals, log-uniform runtimes
and sizes, and a configurable evolving-job share whose requests follow the
dynamic-ESP pattern.
"""

from __future__ import annotations

import numpy as np

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.workloads.spec import JobSpec, Workload

__all__ = [
    "make_random_workload",
    "make_diurnal_workload",
    "run_random_campaign",
    "DEFAULT_CAMPAIGN_TRACE_MAXLEN",
]

#: campaign runs keep a bounded event trace by default: long random
#: campaigns otherwise accumulate millions of events nobody replays —
#: utilization stays exact via the telemetry busy-core integral
DEFAULT_CAMPAIGN_TRACE_MAXLEN = 100_000


def make_random_workload(
    num_jobs: int,
    total_cores: int,
    *,
    evolving_share: float = 0.3,
    mean_interarrival: float = 60.0,
    runtime_range: tuple[float, float] = (120.0, 3600.0),
    size_range: tuple[int, int] = (1, 32),
    extra_cores: int = 4,
    num_users: int = 8,
    walltime_factor: float = 1.2,
    seed: int = 0,
) -> Workload:
    """A reproducible random mix of rigid and evolving jobs.

    Sizes and runtimes are log-uniform (heavy on small jobs, as production
    traces are); arrivals are exponential.  Each user owns an equal slice of
    the job stream so fairness ledgers have several principals to track.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if not 0.0 <= evolving_share <= 1.0:
        raise ValueError("evolving_share must be in [0, 1]")
    if size_range[0] < 1 or size_range[1] > total_cores:
        raise ValueError("size_range outside machine capacity")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=num_jobs))
    runtimes = np.exp(
        rng.uniform(np.log(runtime_range[0]), np.log(runtime_range[1]), size=num_jobs)
    )
    sizes = np.exp(
        rng.uniform(np.log(size_range[0]), np.log(size_range[1]), size=num_jobs)
    ).round().astype(int)
    sizes = np.clip(sizes, size_range[0], size_range[1])
    evolving = rng.random(num_jobs) < evolving_share

    specs: list[JobSpec] = []
    for i in range(num_jobs):
        user = f"ruser{int(rng.integers(num_users)):02d}"
        runtime = float(runtimes[i])
        cores = int(sizes[i])
        if evolving[i]:
            specs.append(
                JobSpec(
                    submit_time=float(arrivals[i]),
                    request=ResourceRequest(cores=cores),
                    walltime=runtime * walltime_factor,
                    user=user,
                    evolution=EvolutionProfile.esp_default(extra_cores),
                    app_factory=(lambda rt=runtime: EvolvingWorkApp(rt)),
                )
            )
        else:
            specs.append(
                JobSpec(
                    submit_time=float(arrivals[i]),
                    request=ResourceRequest(cores=cores),
                    walltime=runtime * walltime_factor,
                    user=user,
                    app_factory=(lambda rt=runtime: FixedRuntimeApp(rt)),
                )
            )
    return Workload(specs=specs, name=f"random-{num_jobs}")


def run_random_campaign(
    num_jobs: int,
    *,
    num_nodes: int = 15,
    cores_per_node: int = 8,
    config=None,
    seeds: list[int] | None = None,
    trace_maxlen: int | None = DEFAULT_CAMPAIGN_TRACE_MAXLEN,
    evolving_share: float = 0.3,
    mean_interarrival: float = 60.0,
    workers: int = 1,
    telemetry=None,
) -> list[dict]:
    """Run the random workload over several seeds with bounded telemetry.

    Each seed gets its own :class:`~repro.obs.Telemetry` and a ring-buffer
    trace of ``trace_maxlen`` events (pass ``None`` for an unbounded trace).
    Returns one summary dict per seed — utilization comes from the live
    busy-core integral, so it is exact even after the ring has dropped the
    start of the run.

    ``workers`` fans the seeds out over worker processes (serial and
    parallel runs share one worker function, so the rows are identical);
    ``telemetry`` is the *parent-side* facade for campaign progress gauges,
    distinct from the per-seed facades created inside each run.
    """
    from repro.exec import map_specs
    from repro.exec.specs import CampaignRunSpec, run_campaign_row

    if seeds is None:
        seeds = [0, 1, 2]
    specs = [
        CampaignRunSpec(
            num_jobs,
            seed,
            num_nodes,
            cores_per_node,
            config,
            trace_maxlen,
            evolving_share,
            mean_interarrival,
        )
        for seed in seeds
    ]
    return map_specs(
        run_campaign_row, specs, workers=workers, telemetry=telemetry, label="campaign"
    )


def make_diurnal_workload(
    num_days: int,
    total_cores: int,
    *,
    jobs_per_day: int = 120,
    day_fraction: float = 0.75,
    evolving_share: float = 0.3,
    runtime_range: tuple[float, float] = (300.0, 7200.0),
    size_range: tuple[int, int] = (1, 32),
    extra_cores: int = 4,
    num_users: int = 10,
    walltime_factor: float = 1.3,
    seed: int = 0,
) -> Workload:
    """A multi-day workload with a day/night arrival cycle.

    Production traces are strongly diurnal; ``day_fraction`` of each day's
    submissions land in the 12 "working hours", the rest overnight.  The
    pattern matters to the dynamic fairness policies: ``DFSInterval`` windows
    and ``DFSDecay`` carry-over interact with busy days and quiet nights —
    a decay of 1.0 lets daytime delay debt suppress grants all night, a
    decay of 0.0 resets the ledger every interval regardless of load.
    """
    if num_days <= 0 or jobs_per_day <= 0:
        raise ValueError("num_days and jobs_per_day must be positive")
    if not 0.0 <= day_fraction <= 1.0:
        raise ValueError("day_fraction must be in [0, 1]")
    if not 0.0 <= evolving_share <= 1.0:
        raise ValueError("evolving_share must be in [0, 1]")
    rng = np.random.default_rng(seed)
    day = 86_400.0
    working_start, working_end = 8 * 3600.0, 20 * 3600.0

    arrivals: list[float] = []
    for d in range(num_days):
        n_day = int(round(jobs_per_day * day_fraction))
        n_night = jobs_per_day - n_day
        day_times = rng.uniform(working_start, working_end, size=n_day)
        night_a = rng.uniform(0.0, working_start, size=n_night // 2)
        night_b = rng.uniform(working_end, day, size=n_night - n_night // 2)
        for t in (*day_times, *night_a, *night_b):
            arrivals.append(d * day + float(t))
    arrivals.sort()

    runtimes = np.exp(
        rng.uniform(
            np.log(runtime_range[0]), np.log(runtime_range[1]), size=len(arrivals)
        )
    )
    sizes = np.clip(
        np.exp(
            rng.uniform(np.log(size_range[0]), np.log(size_range[1]), size=len(arrivals))
        ).round().astype(int),
        size_range[0],
        min(size_range[1], total_cores),
    )
    evolving = rng.random(len(arrivals)) < evolving_share

    specs: list[JobSpec] = []
    for i, submit in enumerate(arrivals):
        user = f"duser{int(rng.integers(num_users)):02d}"
        runtime = float(runtimes[i])
        cores = int(sizes[i])
        if evolving[i]:
            specs.append(
                JobSpec(
                    submit_time=submit,
                    request=ResourceRequest(cores=cores),
                    walltime=runtime * walltime_factor,
                    user=user,
                    evolution=EvolutionProfile.esp_default(extra_cores),
                    app_factory=(lambda rt=runtime: EvolvingWorkApp(rt)),
                )
            )
        else:
            specs.append(
                JobSpec(
                    submit_time=submit,
                    request=ResourceRequest(cores=cores),
                    walltime=runtime * walltime_factor,
                    user=user,
                    app_factory=(lambda rt=runtime: FixedRuntimeApp(rt)),
                )
            )
    return Workload(specs=specs, name=f"diurnal-{num_days}d")
