"""Workload specifications: declarative job lists bound to a system at run time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.rms.server import Application

if TYPE_CHECKING:  # import-time cycle: system -> service -> backend -> spec
    from repro.system import BatchSystem

__all__ = ["JobSpec", "Workload"]


@dataclass(frozen=True)
class JobSpec:
    """One job to be submitted at a fixed time.

    ``app_factory`` builds a fresh application instance per submission so a
    spec can be reused across runs without shared mutable state.
    """

    submit_time: float
    request: ResourceRequest
    walltime: float
    user: str
    group: str = "users"
    #: fairness principal for share accounting; None keeps the Job default
    #: ("default"), which makes the fairness observatory fall back to user
    account: str | None = None
    esp_type: str | None = None
    evolution: EvolutionProfile | None = None
    #: mark the job evolving even without an EvolutionProfile (used by apps
    #: that grow through channels other than tm_dynget, e.g. the SLURM-style
    #: helper-job baseline)
    evolving: bool = False
    top_priority: bool = False
    app_factory: Callable[[], Application] | None = None

    def build_job(self) -> Job:
        flexibility = (
            JobFlexibility.EVOLVING
            if (self.evolution is not None or self.evolving)
            else JobFlexibility.RIGID
        )
        metadata = {}
        if self.esp_type is not None:
            metadata["esp_type"] = self.esp_type
        return Job(
            request=self.request,
            walltime=self.walltime,
            user=self.user,
            group=self.group,
            account=self.account if self.account is not None else "default",
            flexibility=flexibility,
            evolution=self.evolution,
            top_priority=self.top_priority,
            metadata=metadata,
        )


@dataclass
class Workload:
    """An ordered collection of job specs."""

    specs: list[JobSpec] = field(default_factory=list)
    name: str = "workload"

    def __post_init__(self) -> None:
        self.specs = sorted(self.specs, key=lambda s: s.submit_time)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.specs)

    @property
    def total_jobs(self) -> int:
        return len(self.specs)

    @property
    def evolving_jobs(self) -> int:
        return sum(1 for s in self.specs if s.evolution is not None)

    def submit_to(self, system: BatchSystem) -> list[Job]:
        """Schedule every spec's submission on the system's engine.

        Returns the job objects in spec order, so callers can correlate
        results back to the workload definition.
        """
        jobs: list[Job] = []
        for spec in self.specs:
            job = spec.build_job()
            app = spec.app_factory() if spec.app_factory is not None else None
            if spec.submit_time <= system.engine.now:
                system.submit(job, app)
            else:
                system.submit_at(spec.submit_time, job, app)
            jobs.append(job)
        return jobs

    def __repr__(self) -> str:
        return (
            f"<Workload {self.name!r}: {self.total_jobs} jobs, "
            f"{self.evolving_jobs} evolving>"
        )
