"""Seeded transforms that make a trace workload dynamic.

Real traces (SWF logs) describe rigid jobs only; the paper's subject is
*evolving* applications.  :func:`evolving_ify` bridges the two: it takes any
:class:`~repro.workloads.spec.Workload` and converts a seeded fraction of its
jobs into evolving applications that grow mid-run via ``tm_dynget``, so
trace-driven experiments (the streaming replay benchmark, Section V-style
studies) exercise the dynamic-fairness machinery.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.apps.synthetic import EvolvingWorkApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.workloads.spec import JobSpec, Workload

__all__ = ["evolving_ify"]


def evolving_ify(
    workload: Workload,
    fraction: float,
    seed: int,
    *,
    extra_cores: int = 4,
    at_fraction: float = 0.16,
    retry_fraction: float = 0.25,
) -> Workload:
    """Convert a seeded fraction of a workload's jobs to evolving jobs.

    Selection is deterministic in ``seed``: the same (workload, fraction,
    seed) triple always evolves the same jobs.  Each converted job gets the
    dynamic-ESP growth shape — one ``tm_dynget`` for ``extra_cores`` cores at
    ``at_fraction`` of its work, one retry at ``retry_fraction`` — and an
    :class:`EvolvingWorkApp` carrying the spec's original runtime as its SET.
    Jobs that already evolve are left untouched (and are not double-counted
    in the selection pool).

    Returns a new :class:`Workload`; the input is not modified.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {fraction}")
    eligible = [
        i for i, spec in enumerate(workload.specs)
        if spec.evolution is None and not spec.evolving
    ]
    count = round(fraction * len(eligible))
    rng = np.random.default_rng(seed)
    chosen = set(
        rng.choice(len(eligible), size=count, replace=False).tolist()
    ) if count else set()
    picked = {eligible[i] for i in chosen}

    specs: list[JobSpec] = []
    for i, spec in enumerate(workload.specs):
        if i not in picked:
            specs.append(spec)
            continue
        # the SET (work integral) comes from the app when it knows better
        # than the walltime — FixedRuntimeApp runs for exactly .runtime
        runtime = spec.walltime
        if spec.app_factory is not None:
            app = spec.app_factory()
            runtime = getattr(app, "runtime", None) or getattr(
                app, "static_runtime", spec.walltime
            )
        profile = EvolutionProfile.single(
            at_fraction,
            ResourceRequest(cores=extra_cores),
            (retry_fraction,),
        )
        specs.append(
            dataclasses.replace(
                spec,
                evolution=profile,
                app_factory=lambda rt=runtime: EvolvingWorkApp(rt),
            )
        )
    return Workload(specs=specs, name=f"{workload.name}+evolving{fraction:g}")
