"""The ESP submission protocol (paper Section IV-B).

"Jobs are submitted in a particular order with the first 50 jobs submitted
instantly.  Thereafter, jobs are submitted one by one with an interval of 30
seconds between each job submission. […] After submitting the other 228
jobs, the Z jobs are submitted 30 minutes after the last job submission."
"""

from __future__ import annotations

from repro.units import minutes

__all__ = ["esp_submission_times"]


def esp_submission_times(
    num_regular: int,
    num_z: int,
    *,
    burst: int = 50,
    interval: float = 30.0,
    z_gap: float = minutes(30),
    z_spacing: float = 30.0,
) -> tuple[list[float], list[float]]:
    """Submission times for the regular jobs and the Z jobs.

    :returns: ``(regular_times, z_times)`` — regular job *i* (0-based) is
        submitted at 0 for ``i < burst`` and at ``(i - burst + 1) * interval``
        after that; Z jobs follow ``z_gap`` after the last regular submission,
        spaced ``z_spacing`` apart.
    """
    if num_regular < 0 or num_z < 0:
        raise ValueError("job counts cannot be negative")
    regular = [
        0.0 if i < burst else (i - burst + 1) * interval for i in range(num_regular)
    ]
    last = regular[-1] if regular else 0.0
    z_times = [last + z_gap + k * z_spacing for k in range(num_z)]
    return regular, z_times
