"""Standard Workload Format (SWF) interoperability.

SWF is the Parallel Workloads Archive's 18-field per-job trace format — the
lingua franca of batch-scheduling research.  Two directions:

* :func:`to_swf` exports a finished run's job records, so results from this
  simulator can be analysed by existing SWF tooling;
* :func:`from_swf` imports an SWF trace as a rigid :class:`Workload`, so
  archived production traces can be replayed through the dynamic batch
  system (e.g. to study DFS policies on real job mixes).

Field reference: http://www.cs.huji.ac.il/labs/parallel/workload/swf.html
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import JobState
from repro.metrics.collector import WorkloadMetrics
from repro.workloads.spec import JobSpec, Workload

__all__ = ["to_swf", "from_swf"]

def _swf_status(record) -> int:
    """SWF field 11 for a job record: 1=completed, 0=failed, 5=cancelled.

    An aborted job that never started is a cancellation (``qdel`` while
    queued); an aborted job with a start is a failure/kill (walltime
    overrun, operator abort, node loss).  A job left PREEMPTED at export
    time was requeued and then never ran again, which SWF also calls a
    failure.  Anything non-terminal (still queued/running when the trace
    was cut) stays ``-1``, "unknown".
    """
    if record.state == JobState.COMPLETED.value:
        return 1
    if record.state == JobState.ABORTED.value:
        return 5 if record.start_time is None else 0
    if record.state == JobState.PREEMPTED.value:
        return 0
    return -1


def to_swf(metrics: WorkloadMetrics, *, comments: bool = True) -> str:
    """Export job records as SWF text (one line per job, 18 fields)."""
    lines: list[str] = []
    if comments:
        lines.append("; SWF export from repro (ICPP 2014 reproduction)")
        lines.append(f"; MaxProcs: {metrics.total_cores}")
        lines.append(f"; Jobs: {len(metrics.records)}")
    users: dict[str, int] = {}
    for i, record in enumerate(metrics.records, start=1):
        user_id = users.setdefault(record.user, len(users) + 1)
        wait = -1 if record.wait_time is None else int(round(record.wait_time))
        if record.start_time is not None and record.end_time is not None:
            runtime = int(round(record.end_time - record.start_time))
        else:
            runtime = -1
        submit = int(round(record.submit_time))
        status = _swf_status(record)
        req_time = int(round(record.walltime)) if record.walltime > 0 else -1
        fields = [
            i,                      # 1 job number
            submit,                 # 2 submit time
            wait,                   # 3 wait time
            runtime,                # 4 run time
            record.cores_requested, # 5 allocated processors (request size)
            -1,                     # 6 average CPU time used
            -1,                     # 7 used memory
            record.cores_requested, # 8 requested processors
            req_time,               # 9 requested time (the job's walltime)
            -1,                     # 10 requested memory
            status,                 # 11 status
            user_id,                # 12 user id
            user_id,                # 13 group id (1:1 with users here)
            -1,                     # 14 executable id
            -1,                     # 15 queue id
            -1,                     # 16 partition id
            -1,                     # 17 preceding job
            -1,                     # 18 think time
        ]
        lines.append(" ".join(str(f) for f in fields))
    return "\n".join(lines) + "\n"


#: characters read per chunk when streaming an SWF trace from a file
_CHUNK_SIZE = 1 << 16


def _iter_lines(source: str | IO[str] | Iterable[str], chunk_size: int) -> Iterator[str]:
    """Lines of an SWF source, streamed.

    Accepts the whole trace as a string, an open text-mode file (read in
    ``chunk_size``-character chunks; a record spanning a chunk boundary is
    carried over and reassembled), or any iterable of lines.  File and
    iterable sources are consumed lazily, so ``max_jobs`` imports of a
    million-job archive never materialise the full text.
    """
    if isinstance(source, str):
        yield from source.splitlines()
        return
    read = getattr(source, "read", None)
    if read is not None:
        tail = ""
        while True:
            chunk = read(chunk_size)
            if not chunk:
                break
            lines = (tail + chunk).split("\n")
            tail = lines.pop()  # partial record: completed by the next chunk
            yield from lines
        if tail:
            yield tail
        return
    yield from source


def from_swf(
    source: str | IO[str] | Iterable[str],
    *,
    max_jobs: int | None = None,
    walltime_factor: float = 1.2,
    default_walltime: float = 3600.0,
    chunk_size: int = _CHUNK_SIZE,
) -> Workload:
    """Parse an SWF trace into a rigid workload.

    ``source`` may be the full trace text, an open text-mode file, or an
    iterable of lines; files are streamed in chunks (see :func:`_iter_lines`)
    so archive-scale traces need not fit in memory, and ``max_jobs`` stops
    reading as soon as enough jobs parsed.

    Uses requested processors (field 8, falling back to field 5), run time
    (field 4) and requested time (field 9, falling back to
    ``runtime * walltime_factor``).  Jobs with unusable size or runtime are
    skipped — SWF archives mark missing data with ``-1``.
    """
    specs: list[JobSpec] = []
    for raw in _iter_lines(source, chunk_size):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) < 18:
            raise ValueError(f"SWF line has {len(fields)} fields, expected 18: {raw!r}")
        (
            _job,
            submit,
            _wait,
            runtime,
            alloc_procs,
            _cpu,
            _mem,
            req_procs,
            req_time,
            _req_mem,
            _status,
            user_id,
            group_id,
            *_rest,
        ) = (float(f) for f in fields[:13])
        procs = int(req_procs if req_procs > 0 else alloc_procs)
        if procs <= 0 or runtime <= 0:
            continue
        if req_time > 0:
            walltime = float(req_time)
        else:
            walltime = max(runtime * walltime_factor, default_walltime)
        walltime = max(walltime, runtime)  # SWF traces contain overruns
        specs.append(
            JobSpec(
                submit_time=float(submit),
                request=ResourceRequest(cores=procs),
                walltime=walltime,
                user=f"swf_user{int(user_id) if user_id > 0 else 0:03d}",
                group=f"swf_group{int(group_id) if group_id > 0 else 0:03d}",
                app_factory=(lambda rt=float(runtime): FixedRuntimeApp(rt)),
            )
        )
        if max_jobs is not None and len(specs) >= max_jobs:
            break
    return Workload(specs=specs, name="swf-import")
