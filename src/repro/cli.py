"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    repro-batchsim table1
    repro-batchsim table2 [--seed N] [--telemetry-out DIR] [--ledger] [-j N]
    repro-batchsim fig7 | fig8 | fig9 | fig10 | fig11 | fig12
    repro-batchsim sweep | campaign [-j N]       # multi-seed campaigns
    repro-batchsim trace | timeline | metrics   # live telemetry views
    repro-batchsim trace --trace-file FILE       # render a recorded dump
    repro-batchsim ledger [--ledger-file FILE]   # decision-ledger tail
    repro-batchsim why [--job ID] [--ledger-file FILE]
    repro-batchsim serve [--backend sim|--replay-from FILE] [--max-open N]
    repro-batchsim fairness                      # per-account share tables
    repro-batchsim slo [--slo OBJ ...]           # SLO verdicts + breach->why
    repro-batchsim resilience [--mtbf S] [--mttr S] [--fault-seed N]
                              [--delivery-failure-rate P] [--out DIR] [-j N]
    repro-batchsim perf-report [--phases FILE] [--windows FILE]
    repro-batchsim bench-trend --baseline FILE --current FILE
                               [--tolerance F] [--fail-on-regress]
    repro-batchsim all

``resilience`` (and ``table2 --faults``) reruns the Table II
configurations under seeded fault injection (``repro.faults``): node
failures drawn per-node from an exponential/Weibull MTBF with
exponential repairs, plus transient grant-delivery drops retried with
exponential backoff.  ``--out DIR`` writes canonical ``resilience.json``
(byte-identical per seed; the CI determinism check ``cmp``'s two of
them).  See docs/RESILIENCE.md.

``-j/--jobs N`` fans multi-run campaigns (``sweep``, ``table2``,
``campaign``) out over N worker processes (0 = every CPU); results are
bit-identical to serial runs.

``trace``/``timeline``/``metrics`` run the Dyn-HP configuration once with
telemetry enabled and render, respectively: the tail of the event trace, a
utilization sparkline over the sampled time series, and the full metrics
registry (Prometheus text) plus the per-user DFS delay ledger.

``ledger`` and ``why`` run the same Dyn-HP configuration with the causal
decision ledger enabled: ``ledger`` prints the verdict summary and tail,
``why`` explains one job (``--job``, default: the job dynamic grants
delayed the most) — its wait decomposed into attributed components plus
every decision that causally touched it.

``fairness`` runs Dyn-HP with the fairness observatory: per-account
share-usage vs fair-share targets (Jain's index over normalized shares)
plus per-account wait/slowdown/stretch distributions from the windowed
P² sketches.  ``slo`` additionally evaluates declarative objectives
(``--slo "p99_wait < 2h"``, repeatable; sensible defaults otherwise) as
each window closes and explains the first wait breach through the causal
decision ledger.  ``table2 --telemetry-out DIR --slo OBJ`` dumps
``<config>.fairness.jsonl`` and ``<config>.slo.jsonl`` — byte-identical
per seed, serial or ``-j N`` (a CI golden check ``cmp``'s them).

``serve`` demos the always-on scheduler service (``repro.service``): it
starts the asyncio service on the chosen backend, drives a workload
through the submit/query API (a compact dynamic ESP workload on ``sim``,
a recorded trace with ``--replay-from``), optionally throttles admissions
per account (``--max-open``), and reports a clean shutdown.  ``table2
--via-service`` reruns Table II through the service — by the service's
bit-identity contract the results and ``--telemetry-out`` dumps match the
direct path byte for byte (a CI golden check ``cmp``'s them).

Subcommands that read artifact files (``trace --trace-file``, ``ledger``/
``why --ledger-file``, ``perf-report --phases/--windows``, ``metrics
--windows``, ``bench-trend``, ``serve --replay-from``) exit 2 with a
one-line error naming the file when it is missing or malformed.

``perf-report`` renders the performance observatory: the phase-profiler
tree (where scheduler iterations spend their wall-clock) and the windowed
streaming aggregates.  Given ``--phases``/``--windows`` JSONL dumps (from
``table2 --telemetry-out DIR --profile``) it reports offline; otherwise it
runs Dyn-HP once with profiling enabled.  ``bench-trend`` diffs a
``BENCH_*.json`` snapshot against a committed baseline within a relative
tolerance band (the CI perf-regression gate).  ``metrics --windows FILE``
additionally prints whole-run percentile rows from a windows dump.
"""

from __future__ import annotations

import argparse
import logging
import sys
from functools import lru_cache

__all__ = ["main", "CliInputError"]


class CliInputError(Exception):
    """A user-supplied input file is missing or unparsable.

    Raised by the subcommands that read JSONL/JSON artifacts; ``main``
    catches it and exits 2 with a one-line error naming the file instead
    of dumping a traceback.
    """


def _load_input(path: str, loader, what: str):
    """Run ``loader(path)`` and normalise failures into CliInputError."""
    try:
        return loader(path)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise CliInputError(f"cannot read {what} {path!r}: {reason}") from exc
    except (ValueError, KeyError, TypeError) as exc:
        # json.JSONDecodeError is a ValueError; schema/shape errors land
        # here too (missing keys, wrong field types, bad enum values)
        raise CliInputError(f"malformed {what} {path!r}: {exc}") from exc


def _cmd_table1(args) -> str:
    from repro.experiments.table1 import render_table1

    return render_table1(total_cores=args.cores)


def _fault_model_from_args(args):
    from repro.experiments.resilience import default_fault_model

    return default_fault_model(
        fault_seed=args.fault_seed,
        mtbf=args.mtbf,
        mttr=args.mttr,
        distribution=args.fault_dist,
        burst_probability=args.burst_probability,
        delivery_failure_rate=args.delivery_failure_rate,
    )


def _cmd_resilience(args) -> str:
    from repro.experiments.resilience import (
        export_resilience_json,
        render_resilience,
        run_resilience,
    )

    model = _fault_model_from_args(args)
    rows = run_resilience(seed=args.seed, fault_model=model, workers=args.jobs)
    out = render_resilience(rows)
    if args.out:
        path = export_resilience_json(
            rows, args.out, fault_model=model, seed=args.seed
        )
        out += f"\n\nresilience rows written to {path}"
    return out


def _cmd_table2(args) -> str:
    from repro.experiments.table2 import render_table2

    if getattr(args, "faults", False):
        from repro.experiments.resilience import render_resilience, run_resilience

        rows = run_resilience(
            seed=args.seed,
            fault_model=_fault_model_from_args(args),
            workers=args.jobs,
        )
        return render_resilience(
            rows, title="Table II configurations under failure injection"
        )
    slo = getattr(args, "slo", None)
    if getattr(args, "telemetry_out", None) or getattr(args, "profile", False) or slo:
        from repro.experiments.table2 import run_table2_instrumented

        results = run_table2_instrumented(
            seed=args.seed,
            out_dir=args.telemetry_out,
            decision_ledger=args.ledger,
            profile=args.profile,
            window_width=args.window_width,
            shards=getattr(args, "shards", None),
            slo=tuple(slo) if slo else None,
            workers=args.jobs,
            via_service=getattr(args, "via_service", False),
        )
        if args.telemetry_out is None:
            return render_table2(results)
        suffixes = ".trace.jsonl and .metrics.prom" + (
            " and .ledger.jsonl" if args.ledger else ""
        ) + (" and .phases.jsonl" if args.profile else "") + (
            " and .windows.jsonl" if args.profile or slo else ""
        ) + (" and .fairness.jsonl and .slo.jsonl" if slo else "")
        return (
            render_table2(results)
            + f"\n\ntelemetry written to {args.telemetry_out}/<config>{suffixes}"
        )
    if getattr(args, "via_service", False):
        from repro.experiments.configs import all_configurations
        from repro.experiments.runner import run_esp_configuration_via_service

        return render_table2(
            [
                run_esp_configuration_via_service(cfg, seed=args.seed)
                for cfg in all_configurations()
            ]
        )
    from repro.experiments.table2 import run_table2

    return render_table2(
        run_table2(
            seed=args.seed, workers=args.jobs, shards=getattr(args, "shards", None)
        )
    )


def _cmd_fig7(args) -> str:
    from repro.experiments.fig7 import render_fig7

    return render_fig7()


def _cmd_fig8(args) -> str:
    from repro.experiments.fig8 import render_fig8

    return render_fig8(seed=args.seed)


def _cmd_fig9(args) -> str:
    from repro.experiments.fig9 import render_fig9

    return render_fig9(seed=args.seed)


def _cmd_fig10(args) -> str:
    from repro.experiments.fig10 import render_fig10

    return render_fig10(seed=args.seed)


def _cmd_fig11(args) -> str:
    from repro.experiments.fig11 import render_fig11

    return render_fig11(seed=args.seed)


def _cmd_fig12(args) -> str:
    from repro.experiments.fig12 import render_fig12

    return render_fig12()


def _cmd_baselines(args) -> str:
    from repro.baselines import run_guaranteeing_esp, run_slurm_esp
    from repro.experiments.runner import run_esp_configuration_cached
    from repro.metrics.report import render_table

    static = run_esp_configuration_cached("Static", seed=args.seed).metrics
    dyn_hp = run_esp_configuration_cached("Dyn-HP", seed=args.seed).metrics
    slurm = run_slurm_esp(seed=args.seed)
    guaranteed = run_guaranteeing_esp(seed=args.seed)
    rows = [
        ["Static", f"{static.workload_time_minutes:.1f}", 0, f"{static.mean_wait:.0f}", ""],
        ["Dyn-HP (paper)", f"{dyn_hp.workload_time_minutes:.1f}",
         dyn_hp.satisfied_dyn_jobs, f"{dyn_hp.mean_wait:.0f}", ""],
        ["SLURM-style", f"{slurm.workload_time_minutes:.1f}",
         slurm.satisfied_dyn_jobs, f"{slurm.mean_wait:.0f}",
         "helper jobs in static queue"],
        ["Guaranteeing", f"{guaranteed.metrics.workload_time_minutes:.1f}", 69,
         f"{guaranteed.metrics.mean_wait:.0f}",
         f"{guaranteed.wasted_reserved_core_seconds / 3600:.0f} core-h reserved idle"],
    ]
    return render_table(
        ["Approach", "Time[min]", "Satisfied", "Mean wait[s]", "Notes"],
        rows,
        title="Baselines — approaches to evolving-job support (Sections II-B, V)",
    )


def _cmd_export(args) -> str:
    from repro.experiments.export import export_json

    return export_json(seed=args.seed)


def _cmd_sweep(args) -> str:
    from repro.experiments.sweep import render_sweep, run_seed_sweep

    return render_sweep(run_seed_sweep(workers=args.jobs))


def _cmd_campaign(args) -> str:
    from repro.metrics.report import render_table
    from repro.workloads.random_workload import run_random_campaign

    rows = run_random_campaign(args.num_jobs, workers=args.jobs)
    body = [
        [
            row["seed"],
            row["completed"],
            row["satisfied"],
            f"{row['util_pct']:.2f}",
            f"{row['mean_wait']:.0f}",
            row["trace_events"],
            row["trace_dropped"],
        ]
        for row in rows
    ]
    return render_table(
        ["Seed", "Completed", "Satisfied", "Util[%]", "Mean wait[s]",
         "Trace events", "Dropped"],
        body,
        title=f"Random mixed-workload campaign ({args.num_jobs} jobs per seed)",
    )


def _cmd_gantt(args) -> str:
    from repro.maui.config import MauiConfig
    from repro.metrics.gantt import render_gantt
    from repro.system import BatchSystem
    from repro.workloads.esp import make_esp_workload

    telemetry = None
    if args.ledger:
        from repro.obs import Telemetry

        telemetry = Telemetry(decision_ledger=True)
    system = BatchSystem(
        15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5),
        telemetry=telemetry,
    )
    make_esp_workload(120, dynamic=True, seed=args.seed).submit_to(system)
    system.run(max_events=5_000_000)
    ledger = telemetry.ledger if telemetry is not None else None
    return (
        "Dynamic ESP schedule (Dyn-HP), one row per node:\n"
        + render_gantt(system.trace, system.cluster, width=100, ledger=ledger)
    )


@lru_cache(maxsize=4)
def _instrumented_dyn_hp(
    seed: int,
    sample_interval: float,
    trace_maxlen: int | None,
    with_ledger: bool = False,
):
    """One telemetry-enabled Dyn-HP run, shared by trace/timeline/metrics."""
    from repro.experiments.configs import all_configurations
    from repro.experiments.runner import run_esp_configuration
    from repro.obs import Telemetry

    configuration = next(c for c in all_configurations() if c.name == "Dyn-HP")
    telemetry = Telemetry(
        sample_interval=sample_interval, decision_ledger=with_ledger
    )
    return run_esp_configuration(
        configuration, seed=seed, telemetry=telemetry, trace_maxlen=trace_maxlen
    )


def _cmd_trace(args) -> str:
    from repro.obs.console import render_event_tail

    if args.trace_file:
        # offline mode: render a recorded trace dump instead of simulating
        from repro.obs.exporters import read_jsonl

        trace = _load_input(args.trace_file, read_jsonl, "trace dump")
        return (
            f"trace dump {args.trace_file} — last {args.tail} of "
            f"{len(trace)} events:\n" + render_event_tail(trace, n=args.tail)
        )
    result = _instrumented_dyn_hp(args.seed, args.sample_interval, args.trace_maxlen)
    return (
        f"Dyn-HP ESP run (seed {args.seed}) — last {args.tail} trace events:\n"
        + render_event_tail(result.trace, n=args.tail)
    )


def _cmd_timeline(args) -> str:
    from repro.obs.console import render_series_sparkline

    result = _instrumented_dyn_hp(args.seed, args.sample_interval, args.trace_maxlen)
    series = result.telemetry.series
    lines = [
        f"Dyn-HP ESP run (seed {args.seed}) — sampled every "
        f"{args.sample_interval:.0f}s of sim time:"
    ]
    for name, lo, hi in (
        ("utilization", 0.0, 1.0),
        ("queue_depth", 0.0, None),
        ("dyn_queue_depth", 0.0, None),
        ("running_jobs", 0.0, None),
    ):
        lines.append(render_series_sparkline(name, series.get(name, []), lo=lo, hi=hi))
    return "\n".join(lines)


def _cmd_metrics(args) -> str:
    from repro.obs import to_prometheus_text
    from repro.obs.console import render_ledger_table

    if args.windows:
        # offline mode: percentile rows from a windowed-aggregates dump
        from repro.obs.console import render_window_percentiles, render_window_table

        dump = _load_input(args.windows, _read_windows_file, "windows dump")
        return "\n".join(
            [
                f"windowed metrics dump {args.windows}:",
                render_window_percentiles(dump["totals"]),
                "",
                render_window_table(dump["windows"]),
            ]
        )
    from repro.obs.console import render_fairness_table

    result = _fairness_dyn_hp(args.seed, args.sample_interval, args.trace_maxlen)
    telemetry = result.telemetry
    ledger = {}
    for instrument in telemetry.registry.collect():
        if instrument.name == "repro_dfs_ledger_delay_seconds":
            labels = dict(instrument.labels)
            ledger[(labels["kind"], labels["principal"])] = instrument.value
    return "\n".join(
        [
            f"Dyn-HP ESP run (seed {args.seed}) — metrics registry:",
            to_prometheus_text(telemetry.registry).rstrip(),
            "",
            render_ledger_table(ledger),
            "",
            render_fairness_table(telemetry.fairness.account_rows()),
            "",
            telemetry.tracer.render_summary(),
        ]
    )


def _read_windows_file(path: str):
    from repro.obs.windows import read_windows_jsonl

    with open(path) as fp:
        return read_windows_jsonl(fp)


def _read_phases_file(path: str):
    from repro.obs.perf import read_phases_jsonl

    with open(path) as fp:
        return read_phases_jsonl(fp)


def _cmd_perf_report(args) -> str:
    from repro.obs.console import (
        render_phase_tree,
        render_window_percentiles,
        render_window_table,
    )

    sections: list[str] = []
    if args.phases or args.windows:
        if args.phases:
            from repro.obs.perf import aggregate_phase_records, stats_tree

            records = _load_input(args.phases, _read_phases_file, "phases dump")
            sections.append(
                f"phase breakdown ({len(records)} records from {args.phases}):"
            )
            sections.append(render_phase_tree(stats_tree(aggregate_phase_records(records))))
        if args.windows:
            dump = _load_input(args.windows, _read_windows_file, "windows dump")
            if sections:
                sections.append("")
            sections.append(render_window_percentiles(dump["totals"]))
            sections.append("")
            sections.append(
                render_window_table(
                    dump["windows"], title=f"windowed aggregates ({args.windows}):"
                )
            )
        return "\n".join(sections)
    # live mode: one profiled Dyn-HP run
    from repro.experiments.configs import all_configurations
    from repro.experiments.runner import run_esp_configuration
    from repro.obs import Telemetry

    configuration = next(c for c in all_configurations() if c.name == "Dyn-HP")
    telemetry = Telemetry(profiling=True, windows=args.window_width)
    run_esp_configuration(configuration, seed=args.seed, telemetry=telemetry)
    prof = telemetry.profiler
    windows = telemetry.windows
    coverage = prof.child_coverage(("engine_dispatch", "sched_iteration"))
    return "\n".join(
        [
            f"Dyn-HP ESP run (seed {args.seed}) — phase profile "
            f"({prof.total_phase_count()} phases recorded):",
            render_phase_tree(prof.tree()),
            f"  direct children cover {coverage:.1%} of sched_iteration wall time",
            "",
            render_window_percentiles(windows.totals_dict()),
            "",
            render_window_table(
                [f.to_dict(windows.total_cores) for f in windows.frames],
                title=f"windowed aggregates ({args.window_width:.0f}s tumbling):",
            ),
        ]
    )


def _cmd_bench_trend(args) -> str:
    from repro.obs.benchtrend import (
        diff_snapshots,
        load_snapshot,
        regressions,
        render_trend,
    )

    if not args.baseline or not args.current:
        raise SystemExit("bench-trend requires --baseline FILE and --current FILE")
    rows = diff_snapshots(
        _load_input(args.baseline, load_snapshot, "bench snapshot"),
        _load_input(args.current, load_snapshot, "bench snapshot"),
        tolerance=args.tolerance,
    )
    out = (
        f"bench trend: {args.current} vs baseline {args.baseline}\n"
        + render_trend(rows, tolerance=args.tolerance)
    )
    if args.fail_on_regress and regressions(rows):
        print(out)
        raise SystemExit(1)
    return out


def _cmd_ledger(args) -> str:
    from repro.obs.console import render_decision_summary, render_decision_tail

    if args.ledger_file:
        # offline mode: summarise a recorded ledger dump
        from repro.obs.ledger import load_ledger_jsonl

        ledger = _load_input(args.ledger_file, load_ledger_jsonl, "ledger dump")
        header = f"ledger dump {args.ledger_file} — causal decision ledger:"
    else:
        result = _instrumented_dyn_hp(
            args.seed, args.sample_interval, args.trace_maxlen, True
        )
        ledger = result.telemetry.ledger
        header = f"Dyn-HP ESP run (seed {args.seed}) — causal decision ledger:"
    return "\n".join(
        [
            header,
            render_decision_summary(ledger),
            "",
            f"last {args.tail} decisions:",
            render_decision_tail(ledger, n=args.tail),
        ]
    )


def _cmd_why(args) -> str:
    from repro.obs.console import render_attribution, render_causal_chain

    if args.ledger_file:
        from repro.obs.ledger import load_ledger_jsonl

        ledger = _load_input(args.ledger_file, load_ledger_jsonl, "ledger dump")
        source = f"ledger dump {args.ledger_file}"
    else:
        result = _instrumented_dyn_hp(
            args.seed, args.sample_interval, args.trace_maxlen, True
        )
        ledger = result.telemetry.ledger
        source = f"Dyn-HP ESP run (seed {args.seed})"
    job_id = args.job or ledger.most_delayed_job()
    if job_id is None:
        return "no jobs recorded"
    chain = ledger.causal_chain(job_id)
    header = (
        f"{source} — why {job_id}"
        + ("" if args.job else " (most dyn-delayed job)")
        + ":"
    )
    attribution = ledger.attribution(job_id)
    sections = [header]
    if attribution is not None:
        sections.append(render_attribution(attribution))
    else:
        # a dump carries decisions, not wait timelines (those follow the
        # lifecycle trace) — the causal chain below still explains the job
        sections.append(
            "  (wait attribution unavailable offline — timelines live in "
            "the trace, not the ledger dump)"
        )
    sections.extend(
        [
            "",
            f"causal chain ({len(chain)} decisions):",
            render_causal_chain(chain),
        ]
    )
    return "\n".join(sections)


#: default objectives for the ``slo`` subcommand — tuned so a stock
#: Dyn-HP run demonstrates both verdicts: the tail-wait and fairness
#: objectives breach under the ESP burst, the mean-wait one holds
_DEFAULT_SLO = (
    "p99_wait < 100m",
    "mean_wait < 2h",
    "jain >= 0.6",
    "share_error < 0.15",
)


@lru_cache(maxsize=2)
def _fairness_dyn_hp(
    seed: int,
    sample_interval: float,
    trace_maxlen: int | None,
    slo: tuple[str, ...] | None = None,
):
    """Dyn-HP with the fairness observatory (+ SLO engine + ledger)."""
    from repro.experiments.configs import all_configurations
    from repro.experiments.runner import run_esp_configuration
    from repro.obs import Telemetry

    configuration = next(c for c in all_configurations() if c.name == "Dyn-HP")
    telemetry = Telemetry(
        sample_interval=sample_interval,
        decision_ledger=slo is not None,
        windows=600.0,
        fairness=True,
        slo=list(slo) if slo else None,
    )
    return run_esp_configuration(
        configuration, seed=seed, telemetry=telemetry, trace_maxlen=trace_maxlen
    )


def _cmd_fairness(args) -> str:
    from repro.obs.console import render_fairness_table, render_group_table

    result = _fairness_dyn_hp(args.seed, args.sample_interval, args.trace_maxlen)
    telemetry = result.telemetry
    fair = telemetry.fairness
    summary = fair.summary()
    return "\n".join(
        [
            f"Dyn-HP ESP run (seed {args.seed}) — fairness observatory:",
            f"  accounts={summary['accounts']} samples={summary['samples']} "
            f"(every {fair.sample_interval:.0f}s, {fair.decimations} decimations)",
            f"  jain_index={summary['jain']:.4f} "
            f"max_share_error={summary['max_share_error']:.4f}",
            "",
            render_fairness_table(fair.account_rows()),
            "",
            render_group_table(telemetry.windows.group_totals()),
        ]
    )


def _cmd_slo(args) -> str:
    from repro.obs.console import (
        render_breach_tail,
        render_causal_chain,
        render_slo_summary,
    )

    objectives = tuple(args.slo) if args.slo else _DEFAULT_SLO
    result = _fairness_dyn_hp(
        args.seed, args.sample_interval, args.trace_maxlen, objectives
    )
    telemetry = result.telemetry
    engine = telemetry.slo
    sections = [
        f"Dyn-HP ESP run (seed {args.seed}) — SLO engine "
        f"({len(engine.breaches)} breaches over "
        f"{len(telemetry.windows.closed)} closed windows):",
        render_slo_summary(engine.summary()),
        "",
        f"last {args.tail} breaches:",
        render_breach_tail(engine.breaches, n=args.tail),
    ]
    # breach -> why: explain the first wait breach through the causal
    # chain of the window's worst-wait job
    anchored = next((b for b in engine.breaches if b["job_id"]), None)
    if anchored is not None and telemetry.ledger is not None:
        chain = telemetry.ledger.causal_chain(anchored["job_id"])
        sections.extend(
            [
                "",
                f"why {anchored['job_id']} (worst wait in window "
                f"{anchored['window']}, breached {anchored['objective']!r}):",
                render_causal_chain(chain[-args.tail :]),
            ]
        )
    return "\n".join(sections)


def _cmd_serve(args) -> str:
    """Demo the always-on scheduler service end to end.

    Starts a :class:`~repro.service.SchedulerService` on the chosen
    backend, drives a workload through the public API — a compact dynamic
    ESP workload on ``sim``, a recorded trace on ``--replay-from`` — and
    shuts down cleanly.  The CI service-smoke job runs this and greps for
    the final ``service shutdown: clean`` line.
    """
    import asyncio

    from repro.maui.config import MauiConfig
    from repro.service import AdmissionPolicy, SchedulerService, make_backend
    from repro.workloads.esp import make_esp_workload

    backend_kind = "replay" if args.replay_from else args.backend
    backend = make_backend(
        backend_kind, config=MauiConfig(), trace_maxlen=args.trace_maxlen
    )
    admission = None
    if args.max_open is not None:
        admission = AdmissionPolicy(max_open_per_account=args.max_open)

    if args.replay_from:
        from repro.obs.exporters import read_jsonl

        recorded = _load_input(args.replay_from, read_jsonl, "trace dump")
        specs = backend.ingest(recorded)
        source = f"replayed {len(specs)} submissions from {args.replay_from}"
        workload = None
    else:
        workload = make_esp_workload(
            total_cores=120, dynamic=True, seed=args.seed
        )
        source = f"dynamic ESP workload, {len(workload)} jobs (seed {args.seed})"

    async def _drive() -> list[str]:
        lines: list[str] = []
        throttled = 0
        async with SchedulerService(backend, admission=admission) as service:
            if workload is not None:
                from repro.service import AdmissionError

                for spec in workload:
                    try:
                        await service.submit(spec)
                    except AdmissionError:
                        throttled += 1
            queued = await service.queue_info()
            processed = await service.drain()
            final = await service.queue_info()
            metrics = service.metrics()
            lines.append(f"scheduler service on backend {backend.name!r} — {source}")
            if workload is not None:
                lines.append(
                    f"  admitted {service.stats['submitted']} jobs"
                    + (f", throttled {throttled}" if throttled else "")
                    + f"; {queued.pending_events} events pending at drain start"
                )
            else:
                lines.append(
                    f"  {queued.pending_events} events pending at drain start"
                )
            lines.append(
                f"  drained {processed} engine events over "
                f"{service.stats['cycles']} batches (t={final.now:.0f}s)"
            )
            lines.append(
                f"  final queue: {final.queued} queued, {final.running} running, "
                f"{final.finished} finished of {final.total_jobs} total"
            )
            lines.append(
                f"  completed {metrics.completed_jobs} jobs, "
                f"utilization {100.0 * metrics.utilization:.2f}%"
            )
        lines.append("service shutdown: clean")
        return lines

    return "\n".join(asyncio.run(_drive()))


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "baselines": _cmd_baselines,
    "gantt": _cmd_gantt,
    "sweep": _cmd_sweep,
    "campaign": _cmd_campaign,
    "export": _cmd_export,
    "trace": _cmd_trace,
    "timeline": _cmd_timeline,
    "metrics": _cmd_metrics,
    "ledger": _cmd_ledger,
    "why": _cmd_why,
    "fairness": _cmd_fairness,
    "slo": _cmd_slo,
    "resilience": _cmd_resilience,
    "perf-report": _cmd_perf_report,
    "bench-trend": _cmd_bench_trend,
    "serve": _cmd_serve,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive: {text}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive: {text}")
    return value


def _jobs_count(text: str) -> int:
    """Worker-count validator: N >= 1, or 0 meaning "use every CPU"."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 1 (or 0 for all CPUs): {text}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-batchsim",
        description=(
            "Reproduce the tables and figures of 'A Batch System with Fair "
            "Scheduling for Evolving Applications' (ICPP 2014)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=[*_COMMANDS, "all"],
        help="which table/figure to regenerate ('all' prints everything)",
    )
    parser.add_argument(
        "--seed", type=int, default=2014, help="workload-order seed (default 2014)"
    )
    parser.add_argument(
        "--cores", type=int, default=120, help="machine size in cores (default 120)"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="component logging on stderr (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "--tail",
        type=int,
        default=20,
        help="events shown by the trace view (default 20)",
    )
    parser.add_argument(
        "--sample-interval",
        type=_positive_float,
        default=60.0,
        help="telemetry sampling period in sim seconds (default 60)",
    )
    parser.add_argument(
        "--trace-maxlen",
        type=_positive_int,
        default=None,
        help="bound the event trace to a ring of N events (default unbounded)",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="table2 only: dump per-config JSONL traces and Prometheus metrics",
    )
    parser.add_argument(
        "--ledger",
        action="store_true",
        help=(
            "table2/gantt: record the causal decision ledger "
            "(table2 --telemetry-out also dumps <config>.ledger.jsonl; "
            "gantt adds the per-grant attribution overlay)"
        ),
    )
    parser.add_argument(
        "--job",
        default=None,
        metavar="ID",
        help="why only: job to explain (default: the most dyn-delayed job)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=_jobs_count,
        default=None,
        metavar="N",
        help=(
            "worker processes for sweep/table2/campaign "
            "(0 = all CPUs; default: serial)"
        ),
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="table2: rerun the configurations under seeded fault injection",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "table2: override the scheduler shard count "
            "(0 = legacy monolithic pass; default: config value)"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=2014,
        help="resilience/--faults: failure-trace seed (default 2014)",
    )
    parser.add_argument(
        "--mtbf",
        type=_positive_float,
        default=6000.0,
        help="resilience/--faults: per-node mean time between failures [s]",
    )
    parser.add_argument(
        "--mttr",
        type=_positive_float,
        default=900.0,
        help="resilience/--faults: mean time to repair [s]",
    )
    parser.add_argument(
        "--fault-dist",
        choices=["exponential", "weibull"],
        default="exponential",
        help="resilience/--faults: failure inter-arrival distribution",
    )
    parser.add_argument(
        "--burst-probability",
        type=float,
        default=0.0,
        help="resilience/--faults: chance a failure takes neighbours down too",
    )
    parser.add_argument(
        "--delivery-failure-rate",
        type=float,
        default=0.05,
        help="resilience/--faults: transient grant-delivery drop rate",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="resilience only: write machine-readable resilience.json to DIR",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="OBJ",
        help=(
            "table2/slo: declare an SLO objective like 'p99_wait < 4h' "
            "(repeatable; table2 --telemetry-out also dumps "
            "<config>.fairness.jsonl and <config>.slo.jsonl)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "table2: enable the phase profiler + windowed aggregates "
            "(--telemetry-out also dumps <config>.phases.jsonl and "
            "<config>.windows.jsonl)"
        ),
    )
    parser.add_argument(
        "--window-width",
        type=_positive_float,
        default=600.0,
        metavar="S",
        help="perf-report/table2 --profile: tumbling window width in sim "
        "seconds (default 600)",
    )
    parser.add_argument(
        "--phases",
        default=None,
        metavar="FILE",
        help="perf-report: phase-trace JSONL dump to analyse offline",
    )
    parser.add_argument(
        "--windows",
        default=None,
        metavar="FILE",
        help="perf-report/metrics: windowed-aggregates JSONL dump to render",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="bench-trend: committed baseline BENCH_*.json",
    )
    parser.add_argument(
        "--current",
        default=None,
        metavar="FILE",
        help="bench-trend: freshly generated BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=_positive_float,
        default=0.5,
        help="bench-trend: relative tolerance band (default 0.5)",
    )
    parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="bench-trend: exit 1 when a directional metric regressed",
    )
    parser.add_argument(
        "--num-jobs",
        type=_positive_int,
        default=200,
        metavar="N",
        help="campaign only: jobs per random workload seed (default 200)",
    )
    parser.add_argument(
        "--via-service",
        action="store_true",
        help=(
            "table2: drive the runs through the always-on scheduler service "
            "on the simulator backend (results and --telemetry-out dumps are "
            "byte-identical to the direct path)"
        ),
    )
    parser.add_argument(
        "--trace-file",
        default=None,
        metavar="FILE",
        help="trace: render a recorded .trace.jsonl dump instead of simulating",
    )
    parser.add_argument(
        "--ledger-file",
        default=None,
        metavar="FILE",
        help="ledger/why: read a recorded .ledger.jsonl dump instead of simulating",
    )
    parser.add_argument(
        "--backend",
        choices=["sim", "replay"],
        default="sim",
        help="serve: scheduler-service backend (default sim)",
    )
    parser.add_argument(
        "--replay-from",
        default=None,
        metavar="FILE",
        help="serve: shadow-schedule a recorded .trace.jsonl through the "
        "replay backend",
    )
    parser.add_argument(
        "--max-open",
        type=_positive_int,
        default=None,
        metavar="N",
        help="serve: admission throttle — max open jobs per account",
    )
    return parser


def _configure_logging(verbosity: int) -> None:
    """Attach a stderr handler to the ``repro`` logger tree.

    Library code only emits records; handlers are the application's call —
    this is the application.
    """
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    logger.addHandler(handler)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    if args.artifact == "all":
        # bench-trend needs explicit snapshot paths; everything else renders
        names = [n for n in _COMMANDS if n != "bench-trend"]
    else:
        names = [args.artifact]
    for i, name in enumerate(names):
        if i:
            print("\n" + "=" * 72 + "\n")
        try:
            print(_COMMANDS[name](args))
        except CliInputError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
