"""Backfill: run low-priority jobs out of order without disturbing reservations.

Maui's FIRSTFIT backfill, constrained by the reservations of the top
``ReservationDepth`` blocked jobs (a small depth gives optimistic backfill,
a large depth conservative backfill — paper Section III-A).  Backfill is
suspended entirely while an ESP Z-type job is queued.
"""

from __future__ import annotations

from repro.cluster.profile import AvailabilityProfile
from repro.jobs.job import Job
from repro.maui.reservations import PlannedJob

__all__ = ["select_backfill"]


def select_backfill(
    candidates: list[Job],
    profile: AvailabilityProfile,
    now: float,
) -> list[PlannedJob]:
    """Choose backfill starts among ``candidates`` (priority order).

    ``profile`` must already contain the claims of every started job and of
    the protected reservations; it is mutated as candidates are accepted so
    that one backfill choice cannot invalidate the next.  A job is accepted
    iff it fits *now* for its full walltime — i.e. it provably cannot delay
    any protected reservation.
    """
    chosen: list[PlannedJob] = []
    for job in candidates:
        alloc = profile.fits_at(now, job.walltime, job.request)
        if alloc is None:
            continue
        profile.add_claim(now, now + job.walltime, alloc)
        chosen.append(PlannedJob(job, now, alloc))
    return chosen
