"""Backfill: run low-priority jobs out of order without disturbing reservations.

Maui's FIRSTFIT backfill, constrained by the reservations of the top
``ReservationDepth`` blocked jobs (a small depth gives optimistic backfill,
a large depth conservative backfill — paper Section III-A).  Backfill is
suspended entirely while an ESP Z-type job is queued.

Each start chosen here becomes a ``backfill_start`` decision in the
ledger (when enabled), naming the higher-priority jobs it jumped and the
hole it filled (``hole_until`` — the earliest protected-reservation
start); jobs that fit by core count but are rejected by ``fits_at``
accrue wait under the ``backfill_blocked`` attribution component.
"""

from __future__ import annotations

from repro.cluster.profile import AvailabilityProfile
from repro.jobs.job import Job
from repro.maui.reservations import PlannedJob

__all__ = ["select_backfill"]


def select_backfill(
    candidates: list[Job],
    profile: AvailabilityProfile,
    now: float,
) -> list[PlannedJob]:
    """Choose backfill starts among ``candidates`` (priority order).

    ``profile`` must already contain the claims of every started job and of
    the protected reservations; it is mutated as candidates are accepted so
    that one backfill choice cannot invalidate the next.  A job is accepted
    iff it fits *now* for its full walltime — i.e. it provably cannot delay
    any protected reservation.
    """
    chosen: list[PlannedJob] = []
    free_now = profile.free_total_at(now)
    for job in candidates:
        # necessary condition, O(nodes): a window starting now can never
        # offer more cores than are free at this instant, so hopeless
        # candidates are discarded without scanning their whole window
        if job.request.total_cores > free_now:
            continue
        alloc = profile.fits_at(now, job.walltime, job.request)
        if alloc is None:
            continue
        profile.add_claim(now, now + job.walltime, alloc)
        free_now -= alloc.total_cores
        chosen.append(PlannedJob(job, now, alloc))
    return chosen
