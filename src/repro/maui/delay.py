"""Delay measurement for dynamic requests (Algorithm 2, lines 11-14).

Before granting a dynamic request, the scheduler measures how much later
each planned queued job would start if the requested cores were held by the
evolving job until the *rest of its walltime* (Section III-D: "dynamic
reservations are also made until the rest of the walltime of the evolving
job").  The measurement plans the prioritised queue twice — once against the
current profile and once against the profile with the hypothetical claim —
and reports per-job start-time differences as fairness victims.

Delays are clipped at zero: adding a claim can only push starts later, and
tiny negative numerical artefacts must not corrupt the fairness ledgers.
"""

from __future__ import annotations

from repro.cluster.allocation import Allocation
from repro.cluster.profile import AvailabilityProfile
from repro.jobs.job import Job
from repro.maui.fairness import Victim
from repro.maui.reservations import StaticPlan, plan_static

__all__ = ["measure_delays"]


def measure_delays(
    ordered_jobs: list[Job],
    profile: AvailabilityProfile,
    claim: Allocation,
    claim_end: float,
    now: float,
    depth: int,
    *,
    claim_start: float | None = None,
    baseline: StaticPlan | None = None,
) -> list[Victim]:
    """Per-victim delays a grant of ``claim`` (held over
    ``[claim_start, claim_end)``, default from ``now``) would cause to the
    first ``depth``-StartLater prefix of the queue.

    Resource grants claim from ``now``; walltime extensions claim a *future*
    window — the job's own cores held past its original walltime end.

    ``profile`` is not mutated.  ``baseline`` may carry a pre-computed
    priority pass over the *unclaimed* profile (it must come from
    ``plan_static(ordered_jobs, profile.copy(), now, depth)`` on exactly
    these inputs); the scheduler reuses one baseline across every dynamic
    request resolved under an unchanged state instead of re-planning per
    request.  Jobs planned in the baseline but unschedulable under the
    hypothesis (cannot happen with finite claims, since every claim ends)
    would surface as missing keys and are ignored.
    """
    if not ordered_jobs:
        return []
    start = now if claim_start is None else max(claim_start, now)
    if baseline is None:
        baseline = plan_static(ordered_jobs, profile.copy(), now, depth)
    hypothetical_profile = profile.copy()
    if claim_end > start:
        hypothetical_profile.add_claim(start, claim_end, claim)
    hypothetical = plan_static(ordered_jobs, hypothetical_profile, now, depth)
    base_starts = baseline.starts_by_job()
    hyp_starts = hypothetical.starts_by_job()
    victims: list[Victim] = []
    for planned in baseline.start_now + baseline.start_later:
        job_id = planned.job.job_id
        if job_id not in hyp_starts:
            continue
        delay = max(0.0, hyp_starts[job_id] - base_starts[job_id])
        victims.append(
            Victim(
                job=planned.job,
                delay=delay,
                planned_start=base_starts[job_id],
                delayed_start=hyp_starts[job_id],
            )
        )
    return victims
