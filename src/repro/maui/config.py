"""Scheduler configuration, including the paper's dynamic fairness parameters.

Two entry points:

* build a :class:`MauiConfig` programmatically (what the experiment harness
  does), or
* parse Maui's configuration-file dialect with :func:`parse_maui_config` —
  the exact format of the paper's Fig. 6, with ``USERCFG[...]`` /
  ``GROUPCFG[...]`` lines, ``HH:MM:SS`` durations, ``\\`` line continuations
  and ``#`` comments.

Limit semantics follow Fig. 6: a configured delay-time of **0 means
unlimited** (user01 may be delayed arbitrarily long per job; user03 has no
cumulative cap).  Internally we normalise that to ``UNLIMITED`` so arithmetic
can't confuse "zero seconds allowed" with "no cap".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.units import UNLIMITED, parse_duration

__all__ = [
    "DFSPolicy",
    "PrincipalLimits",
    "DFSConfig",
    "MauiConfig",
    "parse_maui_config",
]


class DFSPolicy(enum.Enum):
    """The ``DFSPolicy`` parameter (paper Section III-D)."""

    NONE = "NONE"
    SINGLE_JOB_DELAY = "DFSSINGLEJOBDELAY"
    TARGET_DELAY = "DFSTARGETDELAY"
    SINGLE_AND_TARGET_DELAY = "DFSSINGLEANDTARGETDELAY"

    @classmethod
    def parse(cls, text: str) -> "DFSPolicy":
        token = text.strip().upper()
        aliases = {
            "DFSSINGLETARGETDELAY": cls.SINGLE_AND_TARGET_DELAY,  # paper's alt name
        }
        if token in aliases:
            return aliases[token]
        for member in cls:
            if member.value == token:
                return member
        raise ValueError(f"unknown DFSPolicy: {text!r}")

    @property
    def checks_single(self) -> bool:
        return self in (DFSPolicy.SINGLE_JOB_DELAY, DFSPolicy.SINGLE_AND_TARGET_DELAY)

    @property
    def checks_target(self) -> bool:
        return self in (DFSPolicy.TARGET_DELAY, DFSPolicy.SINGLE_AND_TARGET_DELAY)


@dataclass(frozen=True, slots=True)
class PrincipalLimits:
    """DFS limits for one principal (user, group, account, class or QoS).

    :param dyn_delay_perm: may this principal's jobs be delayed by dynamic
        allocations at all (``DFSDYNDELAYPERM``, default allow)?
    :param target_delay_time: cumulative delay cap per DFS interval
        (``DFSTARGETDELAYTIME``); :data:`~repro.units.UNLIMITED` = no cap.
    :param single_delay_time: per-job delay cap (``DFSSINGLEDELAYTIME``).
    """

    dyn_delay_perm: bool = True
    target_delay_time: float = UNLIMITED
    single_delay_time: float = UNLIMITED


def _normalise_limit(value: float) -> float:
    """Fig. 6 semantics: a configured 0 disables the limit."""
    return UNLIMITED if value == 0 else value


@dataclass
class DFSConfig:
    """The dynamic fairness configuration block."""

    policy: DFSPolicy = DFSPolicy.NONE
    #: ``DFSINTERVAL`` — accounting interval for cumulative (target) delays.
    interval: float = 3600.0
    #: ``DFSDECAY`` — fraction of the accumulated delay carried into the next
    #: interval (paper example: 3600 s × 0.2 → 720 s carried over).
    decay: float = 0.0
    users: dict[str, PrincipalLimits] = field(default_factory=dict)
    groups: dict[str, PrincipalLimits] = field(default_factory=dict)
    accounts: dict[str, PrincipalLimits] = field(default_factory=dict)
    classes: dict[str, PrincipalLimits] = field(default_factory=dict)
    qos: dict[str, PrincipalLimits] = field(default_factory=dict)
    #: applied to users with no explicit USERCFG entry
    default_user: PrincipalLimits = field(default_factory=PrincipalLimits)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"DFSInterval must be positive: {self.interval}")
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError(f"DFSDecay must be in [0, 1]: {self.decay}")

    @classmethod
    def target_delay_for_all(
        cls, limit_seconds: float, interval: float = 3600.0, decay: float = 0.0
    ) -> "DFSConfig":
        """The paper's Dyn-500 / Dyn-600 setup: one cumulative cap for every
        static user per interval."""
        return cls(
            policy=DFSPolicy.TARGET_DELAY,
            interval=interval,
            decay=decay,
            default_user=PrincipalLimits(target_delay_time=limit_seconds),
        )

    def limits_for(
        self,
        *,
        user: str,
        group: str | None = None,
        account: str | None = None,
        job_class: str | None = None,
        qos: str | None = None,
    ) -> list[tuple[str, str, PrincipalLimits]]:
        """All configured limit records applying to a job, most-specific first.

        Each entry is ``(kind, name, limits)``.  The user entry always exists
        (falling back to ``default_user``); group/account/class/qos entries
        appear only when explicitly configured — "when user and group limits
        are specified …, the most restrictive limits are used" (Section III-D).
        """
        records: list[tuple[str, str, PrincipalLimits]] = [
            ("user", user, self.users.get(user, self.default_user))
        ]
        for kind, name, table in (
            ("group", group, self.groups),
            ("account", account, self.accounts),
            ("class", job_class, self.classes),
            ("qos", qos, self.qos),
        ):
            if name is not None and name in table:
                records.append((kind, name, table[name]))
        return records


@dataclass
class MauiConfig:
    """Full scheduler configuration."""

    #: number of StartLater jobs that receive reservations (backfill control)
    reservation_depth: int = 1
    #: number of StartLater jobs whose delays are measured (paper's new knob)
    reservation_delay_depth: int = 1
    dfs: DFSConfig = field(default_factory=DFSConfig)
    #: False → plain Maui (Algorithm 1): every dynamic request is rejected.
    dynamic_enabled: bool = True
    backfill_enabled: bool = True
    #: preempt backfilled jobs to serve dynamic requests (Section II-B)
    preemption_for_dynamic: bool = False
    #: shrink running malleable jobs to serve dynamic requests (Section
    #: II-B resource source #3); tried after idle resources, before
    #: preemption
    malleable_steal_for_dynamic: bool = False
    #: reserve the "dynamic" partition for dynamic requests (Section II-B)
    use_dynamic_partition: bool = False
    #: throttling policies (Maui MAXJOB / MAXIJOB, the "minimum scheduling
    #: criterion" of Algorithm 1 step 6): caps per user on running jobs and
    #: on queued jobs considered for scheduling; None = unlimited
    max_running_jobs_per_user: int | None = None
    max_eligible_jobs_per_user: int | None = None
    #: ordering of pending dynamic requests: "fifo" (the paper's choice),
    #: "fairshare" (users with the least decayed usage first — the outlook's
    #: "fair prioritization mechanism between dynamic requests"), or
    #: "smallest_first" (cheapest requests first, maximising grant count)
    dynamic_request_order: str = "fifo"
    weights: "PriorityWeightsConfig" = field(default_factory=lambda: PriorityWeightsConfig())
    #: per-partition scheduler sharding: number of shards each static
    #: partition is split into (``repro.maui.shards``).  1 (the default)
    #: runs the sharded pass over a single shard — bit-identical to the
    #: monolithic scheduler; >= 2 plans each shard independently with a
    #: cross-shard merge for spanning jobs; 0 keeps the legacy monolithic
    #: pass (the A/B oracle for the equivalence tests).
    scheduler_shards: int = 1
    #: optional periodic wake-up (Maui's polling timer); None = purely
    #: event-driven, which is sufficient for deterministic simulation.
    timer_interval: float | None = None
    #: standing administrative reservations (maintenance windows); static
    #: scheduling plans around them and dynamic grants avoid their nodes
    admin_reservations: tuple = ()

    def __post_init__(self) -> None:
        if self.reservation_depth < 0 or self.reservation_delay_depth < 0:
            raise ValueError("depths must be non-negative")
        if self.scheduler_shards < 0:
            raise ValueError(
                f"scheduler_shards must be >= 0: {self.scheduler_shards}"
            )
        for cap in (self.max_running_jobs_per_user, self.max_eligible_jobs_per_user):
            if cap is not None and cap < 1:
                raise ValueError(f"throttling caps must be >= 1: {cap}")
        if self.dynamic_request_order not in ("fifo", "fairshare", "smallest_first"):
            raise ValueError(
                f"unknown dynamic_request_order: {self.dynamic_request_order!r}"
            )

    @property
    def plan_depth(self) -> int:
        """StartLater jobs to plan: max(ReservationDepth, ReservationDelayDepth)."""
        return max(self.reservation_depth, self.reservation_delay_depth)


@dataclass(frozen=True)
class PriorityWeightsConfig:
    """Weights for the static priority factors (after Maui's factor model).

    * ``queue_time`` — seconds waited (FIFO pressure);
    * ``expansion_factor`` — Maui's XFactor, ``(wait + walltime)/walltime``:
      boosts short jobs that have waited disproportionately long;
    * ``fairshare`` — bonus for users with little recent decayed usage;
    * ``service`` — size-proportional boost (favours wide jobs);
    * ``credential`` — scales per-user weights from ``user_priorities``.
    """

    queue_time: float = 1.0
    expansion_factor: float = 0.0
    fairshare: float = 0.0
    service: float = 0.0
    credential: float = 0.0
    user_priorities: dict = field(default_factory=dict)
    fairshare_interval: float = 24 * 3600.0
    fairshare_decay: float = 0.5


# ----------------------------------------------------------------------
# Maui configuration-file dialect (Fig. 6)
# ----------------------------------------------------------------------

_CFG_TABLES = {
    "USERCFG": "users",
    "GROUPCFG": "groups",
    "ACCOUNTCFG": "accounts",
    "CLASSCFG": "classes",
    "QOSCFG": "qos",
}


def _parse_principal_tokens(tokens: list[str], base: PrincipalLimits) -> PrincipalLimits:
    limits = base
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"expected KEY=VALUE, got {token!r}")
        key, _, value = token.partition("=")
        key = key.strip().upper()
        value = value.strip()
        if key == "DFSDYNDELAYPERM":
            if value not in ("0", "1"):
                raise ValueError(f"DFSDYNDELAYPERM must be 0 or 1, got {value!r}")
            limits = replace(limits, dyn_delay_perm=value == "1")
        elif key == "DFSTARGETDELAYTIME":
            limits = replace(
                limits, target_delay_time=_normalise_limit(parse_duration(value))
            )
        elif key == "DFSSINGLEDELAYTIME":
            limits = replace(
                limits, single_delay_time=_normalise_limit(parse_duration(value))
            )
        else:
            raise ValueError(f"unknown principal parameter: {key}")
    return limits


def parse_maui_config(text: str, base: MauiConfig | None = None) -> MauiConfig:
    """Parse Maui-dialect configuration text into a :class:`MauiConfig`.

    Supports the parameters used in the paper: ``DFSPOLICY``,
    ``DFSINTERVAL``, ``DFSDECAY``, ``RESERVATIONDEPTH``,
    ``RESERVATIONDELAYDEPTH``, ``BACKFILLPOLICY`` (``FIRSTFIT``/``NONE``) and
    the per-principal ``USERCFG[...]`` / ``GROUPCFG[...]`` /
    ``ACCOUNTCFG[...]`` / ``CLASSCFG[...]`` / ``QOSCFG[...]`` tables.
    Unknown top-level parameters raise ``ValueError`` — silent typos in
    fairness configuration are how starvation bugs ship.
    """
    config = base if base is not None else MauiConfig()
    dfs = config.dfs

    # join continuation lines, strip comments
    logical_lines: list[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        logical_lines.append((pending + line).strip())
        pending = ""
    if pending.strip():
        logical_lines.append(pending.strip())

    for line in logical_lines:
        if not line:
            continue
        parts = line.split()
        keyword = parts[0].upper()
        rest = parts[1:]
        # principal names keep their original case; only the prefix folds
        table_match = next(
            (
                (attr, parts[0][len(prefix) + 1 : -1])
                for prefix, attr in _CFG_TABLES.items()
                if keyword.startswith(prefix + "[") and keyword.endswith("]")
            ),
            None,
        )
        if table_match is not None:
            attr, name = table_match
            if not name:
                raise ValueError(f"empty principal name in {line!r}")
            table: dict[str, PrincipalLimits] = getattr(dfs, attr)
            table[name] = _parse_principal_tokens(rest, table.get(name, PrincipalLimits()))
            continue
        if len(rest) != 1:
            raise ValueError(f"expected one value for {keyword}: {line!r}")
        value = rest[0]
        if keyword == "DFSPOLICY":
            dfs.policy = DFSPolicy.parse(value)
        elif keyword == "DFSINTERVAL":
            dfs.interval = parse_duration(value)
        elif keyword == "DFSDECAY":
            dfs.decay = float(value)
        elif keyword == "RESERVATIONDEPTH":
            config.reservation_depth = int(value)
        elif keyword == "RESERVATIONDELAYDEPTH":
            config.reservation_delay_depth = int(value)
        elif keyword == "SCHEDULERSHARDS":
            config.scheduler_shards = int(value)
        elif keyword == "BACKFILLPOLICY":
            policy = value.upper()
            if policy not in ("FIRSTFIT", "NONE"):
                raise ValueError(f"unsupported BACKFILLPOLICY: {value!r}")
            config.backfill_enabled = policy != "NONE"
        else:
            raise ValueError(f"unknown configuration parameter: {keyword}")
    # re-validate mutated dataclasses
    DFSConfig.__post_init__(dfs)
    MauiConfig.__post_init__(config)
    return config
