"""Dynamic-partition support (Section II-B, option 2).

A site may fence off a set of nodes as a *dynamic partition* reserved for
serving dynamic requests: static jobs never start there, so evolving jobs
find resources with high probability, at the cost of idling the partition in
workloads with little evolution.  The helpers here centralise the partition
arithmetic so the scheduler stays readable.
"""

from __future__ import annotations

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.maui.config import MauiConfig

__all__ = ["static_partitions", "find_dynamic_allocation"]


def static_partitions(config: MauiConfig) -> tuple[str, ...] | None:
    """Partitions available to static jobs (None = all)."""
    return ("batch",) if config.use_dynamic_partition else None


def find_dynamic_allocation(
    cluster: Cluster,
    request: ResourceRequest,
    config: MauiConfig,
    *,
    exclude_nodes: set[int] | frozenset[int] = frozenset(),
) -> Allocation | None:
    """Idle resources for a dynamic request, honouring the partition policy.

    With the dynamic partition enabled, the partition is tried first and the
    general idle pool second; without it, any idle cores qualify.  A single
    request never spans the partition boundary — mixing fenced and unfenced
    nodes would let a static-job drain strand half the grant.
    ``exclude_nodes`` removes nodes under administrative reservations.
    """
    if config.use_dynamic_partition:
        alloc = cluster.find_allocation(
            request, partitions=("dynamic",), exclude_nodes=exclude_nodes
        )
        if alloc is not None:
            return alloc
    return cluster.find_allocation(
        request, partitions=static_partitions(config), exclude_nodes=exclude_nodes
    )
