"""Dynamic fairness (DFS) policy evaluation and accounting.

This is the core fairness mechanism of the paper (Section III-D).  When the
scheduler contemplates granting a dynamic request, it first measures the
delay the hypothetical grant would inflict on each planned queued job (the
*victims*).  The :class:`DFSLedger` then decides whether the grant is fair:

* ``DFSDynDelayPerm`` — a victim whose user (or group/account/class/QoS) is
  not delayable vetoes the grant outright;
* ``DFSSingleJobDelay`` — each victim job's *total* accumulated delay must
  stay within the most restrictive ``DFSSingleDelayTime`` applying to it;
* ``DFSTargetDelay`` — each principal's *cumulative* delay within the current
  ``DFSInterval`` must stay within its ``DFSTargetDelayTime``;
* victims owned by the requesting user are exempt ("when the evolving job and
  the static job are from the same user, the delay is not considered").

At every interval boundary the cumulative ledgers decay by ``DFSDecay``
(paper example: 3600 s accumulated, decay 0.2 → 720 s carried forward,
leaving 4080 s of headroom against a 4800 s target).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jobs.job import Job
from repro.maui.config import DFSConfig, DFSPolicy
from repro.units import UNLIMITED

__all__ = ["DFSLedger", "FairnessDecision", "Victim"]

#: delays below this are scheduling-noise, not fairness-relevant
_EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Victim:
    """A queued job delayed by a hypothetical dynamic allocation.

    ``planned_start``/``delayed_start`` carry the baseline and hypothetical
    plan starts the delay was measured from (None when the caller built the
    victim without a plan); the decision ledger records them as causal
    evidence alongside the delay itself.
    """

    job: Job
    delay: float
    planned_start: float | None = None
    delayed_start: float | None = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative delay for {self.job.job_id}: {self.delay}")


@dataclass(frozen=True, slots=True)
class FairnessDecision:
    """Outcome of a policy evaluation, with a human-readable reason."""

    allowed: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.allowed


class DFSLedger:
    """Tracks cumulative dynamic-allocation delays per principal."""

    def __init__(self, config: DFSConfig, start_time: float = 0.0) -> None:
        self.config = config
        self.interval_start = float(start_time)
        self.intervals_rolled = 0
        # cumulative delay in the current interval, per (kind, name)
        self._cumulative: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # interval roll-over
    # ------------------------------------------------------------------
    def roll(self, now: float) -> int:
        """Advance interval boundaries up to ``now``; returns intervals rolled.

        Each roll multiplies every cumulative delay by ``DFSDecay``; with the
        default decay of 0 the ledger resets completely.
        """
        rolled = 0
        while now >= self.interval_start + self.config.interval:
            self.interval_start += self.config.interval
            rolled += 1
            if self.config.decay == 0.0:
                self._cumulative.clear()
            else:
                for key in list(self._cumulative):
                    self._cumulative[key] *= self.config.decay
                    if self._cumulative[key] < _EPSILON:
                        del self._cumulative[key]
        self.intervals_rolled += rolled
        return rolled

    def cumulative_delay(self, kind: str, name: str) -> float:
        """Current-interval accumulated delay for a principal."""
        return self._cumulative.get((kind, name), 0.0)

    def snapshot(self) -> dict[tuple[str, str], float]:
        """Copy of the current-interval ledger, keyed by (kind, name)."""
        return dict(self._cumulative)

    # ------------------------------------------------------------------
    # policy evaluation
    # ------------------------------------------------------------------
    def _principal_records(self, job: Job):
        return self.config.limits_for(
            user=job.user,
            group=job.group,
            account=job.account,
            job_class=job.job_class,
            qos=job.qos,
        )

    def evaluate(
        self, victims: list[Victim], requesting_user: str, now: float
    ) -> FairnessDecision:
        """Would charging these delays violate any configured limit?

        Must be called with the ledger already rolled to ``now``.  With
        ``DFSPolicy.NONE`` every grant is allowed and delays are ignored
        ("dynamic requests will have the highest priority over the static
        jobs", Section III-D).
        """
        policy = self.config.policy
        if policy is DFSPolicy.NONE:
            return FairnessDecision(True, "DFS disabled")
        relevant = [
            v
            for v in victims
            if v.delay > _EPSILON and v.job.user != requesting_user
        ]
        if not relevant:
            return FairnessDecision(True, "no foreign job delayed")
        # proposed additional delay per principal in this grant
        proposed: dict[tuple[str, str], float] = {}
        for victim in relevant:
            records = self._principal_records(victim.job)
            for kind, name, limits in records:
                # permission veto applies under every enabled policy
                if not limits.dyn_delay_perm:
                    return FairnessDecision(
                        False,
                        f"{kind} {name} may not be delayed (DFSDynDelayPerm=0)",
                    )
            if policy.checks_single:
                single_cap = min(limits.single_delay_time for _, _, limits in records)
                if single_cap != UNLIMITED and (
                    victim.job.accrued_delay + victim.delay > single_cap
                ):
                    return FairnessDecision(
                        False,
                        f"job {victim.job.job_id} single-delay cap exceeded "
                        f"({victim.job.accrued_delay + victim.delay:.0f}s > {single_cap:.0f}s)",
                    )
            if policy.checks_target:
                for kind, name, _limits in records:
                    key = (kind, name)
                    proposed[key] = proposed.get(key, 0.0) + victim.delay
        if policy.checks_target:
            for (kind, name), extra in proposed.items():
                limits = self._limits_of(kind, name)
                if limits.target_delay_time == UNLIMITED:
                    continue
                if self.cumulative_delay(kind, name) + extra > limits.target_delay_time:
                    return FairnessDecision(
                        False,
                        f"{kind} {name} target-delay cap exceeded "
                        f"({self.cumulative_delay(kind, name) + extra:.0f}s > "
                        f"{limits.target_delay_time:.0f}s per interval)",
                    )
        return FairnessDecision(True, "within limits")

    def _limits_of(self, kind: str, name: str):
        table = {
            "user": self.config.users,
            "group": self.config.groups,
            "account": self.config.accounts,
            "class": self.config.classes,
            "qos": self.config.qos,
        }[kind]
        if kind == "user":
            return table.get(name, self.config.default_user)
        return table[name]

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def commit(self, victims: list[Victim], requesting_user: str) -> float:
        """Charge the grant's delays to the ledgers and the victim jobs.

        Returns the total foreign delay charged.  Same-user victims are
        exempt.  Must only be called after a successful :meth:`evaluate` at
        the same timestamp.
        """
        if self.config.policy is DFSPolicy.NONE:
            return 0.0
        total = 0.0
        for victim in victims:
            if victim.delay <= _EPSILON or victim.job.user == requesting_user:
                continue
            victim.job.accrued_delay += victim.delay
            total += victim.delay
            for kind, name, _limits in self._principal_records(victim.job):
                key = (kind, name)
                self._cumulative[key] = self._cumulative.get(key, 0.0) + victim.delay
        return total

    def __repr__(self) -> str:
        return (
            f"<DFSLedger {self.config.policy.value} interval_start="
            f"{self.interval_start:.0f} entries={len(self._cumulative)}>"
        )
