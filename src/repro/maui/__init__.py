"""The Maui-style scheduler with the paper's dynamic extensions.

* :mod:`repro.maui.scheduler` — Algorithm 1 (static iteration) and
  Algorithm 2 (extended iteration with dynamic requests)
* :mod:`repro.maui.fairness` — the dynamic fairness (DFS) policies
* :mod:`repro.maui.delay` — delay measurement against hypothetical grants
* :mod:`repro.maui.reservations` — priority scheduling plan,
  StartNow/StartLater classification
* :mod:`repro.maui.backfill` — reservation-respecting backfill
* :mod:`repro.maui.priority` — job prioritisation and static fairshare
* :mod:`repro.maui.config` — configuration model + Maui config-file parser
* :mod:`repro.maui.preemption`, :mod:`repro.maui.partition` — optional
  resource sources for dynamic requests (paper Section II-B)
"""

from repro.maui.config import (
    DFSConfig,
    DFSPolicy,
    MauiConfig,
    PrincipalLimits,
    parse_maui_config,
)
from repro.maui.fairness import DFSLedger
from repro.maui.priority import FairshareTracker, PriorityWeights, Prioritizer
from repro.maui.reservations import AdminReservation, PlannedJob, StaticPlan, plan_static
from repro.maui.scheduler import MauiScheduler

__all__ = [
    "AdminReservation",
    "DFSConfig",
    "DFSLedger",
    "DFSPolicy",
    "FairshareTracker",
    "MauiConfig",
    "MauiScheduler",
    "PlannedJob",
    "PrincipalLimits",
    "Prioritizer",
    "PriorityWeights",
    "StaticPlan",
    "parse_maui_config",
    "plan_static",
]
