"""Job prioritisation and static fairshare.

Maui computes a weighted sum of priority factors per job (queue time,
fairshare, service, …; Jackson et al., JSSPP 2001).  The ESP experiments run
a FIFO-ish policy (queue-time weight only) with the special ESP rule that a
queued Z-type job outranks everything; the static fairshare tracker is
provided for sites that weight historical usage, and for the SLURM-style
baseline which prioritises dynamic requests through *static* fairshare
(paper Section V).

Two implementations of the ranking pass:

* the scalar :meth:`Prioritizer.priority` / :meth:`Prioritizer.order_scalar`
  per-job loop — the readable reference, and what :meth:`MauiScheduler.explain`
  uses for a single job;
* a vectorized pass (:class:`JobColumns` + :meth:`Prioritizer.order`) that
  gathers the job state into numpy columns (submit time, walltime, cores,
  per-user fairshare usage, credential priority, Z-flag) and computes every
  job's score in one sweep of elementwise operations, in *exactly* the same
  order of floating-point operations as the scalar chain — so the scores,
  and therefore the ordering, are bit-identical
  (``tests/test_priority_vectorized.py``).

The fairshare decay roll is likewise one vectorized multiply per interval
instead of a per-user Python loop; per-user values are independent factor
chains, so elementwise decay reproduces the scalar results exactly.
"""

from __future__ import annotations

import numpy as np

from repro.jobs.job import Job
from repro.maui.config import PriorityWeightsConfig

__all__ = ["PriorityWeights", "Prioritizer", "FairshareTracker", "JobColumns"]

# re-export under the historical name used across the package
PriorityWeights = PriorityWeightsConfig

#: below this many jobs the numpy column gather costs more than it saves
#: (measured crossover for multi-factor weight configs; with only the
#: queue-time factor active the scalar key is two arithmetic ops and
#: ``sorted`` wins at every realistic queue depth, so single-factor
#: configs never vectorize — see :meth:`Prioritizer.order`)
_VECTORIZE_MIN_JOBS = 32


class FairshareTracker:
    """Decayed per-user historical usage in core-seconds.

    Usage is accrued continuously by the scheduler's statistics update and
    decays by ``fairshare_decay`` every ``fairshare_interval`` — Maui's
    sliding-window fairshare in its simplest faithful form.
    """

    def __init__(self, interval: float, decay: float, start_time: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError("fairshare interval must be positive")
        if not 0.0 <= decay <= 1.0:
            raise ValueError("fairshare decay must be in [0, 1]")
        self.interval = interval
        self.decay = decay
        self.window_start = float(start_time)
        self._usage: dict[str, float] = {}

    def add_usage(self, user: str, core_seconds: float) -> None:
        if core_seconds < 0:
            raise ValueError("usage cannot be negative")
        self._usage[user] = self._usage.get(user, 0.0) + core_seconds

    def roll(self, now: float) -> None:
        """Roll accounting windows past ``now``, decaying every user once
        per window.

        One elementwise multiply per window replaces the per-user loop.
        Users are dropped once their usage decays below 1e-9; since decay
        is ≤ 1, a value below the floor can never rise back above it, so
        filtering once at the end selects exactly the users the per-step
        deletion would have kept — with bit-identical surviving values
        (each survivor's value is the same chain of multiplies).
        """
        interval = self.interval
        if now < self.window_start + interval:
            return
        usage = self._usage
        if not usage:
            while now >= self.window_start + interval:
                self.window_start += interval
            return
        values = np.fromiter(usage.values(), dtype=np.float64, count=len(usage))
        decay = self.decay
        while now >= self.window_start + interval:
            self.window_start += interval
            values *= decay
        self._usage = {
            user: value
            for user, value in zip(usage, values.tolist())
            if value >= 1e-9
        }

    def usage(self, user: str) -> float:
        return self._usage.get(user, 0.0)

    @property
    def total_usage(self) -> float:
        return sum(self._usage.values())

    def normalized_usage(self, user: str) -> float:
        """This user's share of all tracked usage, in [0, 1]."""
        total = self.total_usage
        return self._usage.get(user, 0.0) / total if total > 0 else 0.0


class JobColumns:
    """Numpy job-state columns for one ranking pass.

    Gathered once per scheduler iteration from the eligible job list:
    every priority factor then reads a contiguous ``float64`` column
    instead of chasing per-job Python attributes.
    """

    __slots__ = ("jobs", "submit", "walltime", "cores", "seq", "users", "top")

    def __init__(self, jobs: list[Job]) -> None:
        n = len(jobs)
        self.jobs = jobs
        for job in jobs:
            if job.submit_time is None:
                raise ValueError(f"{job.job_id} was never submitted")
        self.submit = np.fromiter(
            (job.submit_time for job in jobs), dtype=np.float64, count=n
        )
        self.walltime = np.fromiter(
            (job.walltime for job in jobs), dtype=np.float64, count=n
        )
        self.cores = np.fromiter(
            (job.request.total_cores for job in jobs), dtype=np.float64, count=n
        )
        self.seq = np.fromiter((job.seq for job in jobs), dtype=np.int64, count=n)
        self.users = [job.user for job in jobs]
        self.top = np.fromiter(
            (job.top_priority for job in jobs), dtype=np.bool_, count=n
        )

    def user_column(self, table: dict[str, float]) -> np.ndarray:
        """Per-job values looked up by user name (0.0 for absent users)."""
        get = table.get
        return np.fromiter(
            (get(user, 0.0) for user in self.users),
            dtype=np.float64,
            count=len(self.users),
        )


class Prioritizer:
    """Orders eligible jobs for the priority-scheduling pass."""

    def __init__(self, weights: PriorityWeightsConfig, fairshare: FairshareTracker) -> None:
        self.weights = weights
        self.fairshare = fairshare
        #: A/B toggle: ``None`` picks per call (vectorize only when the
        #: queue is deep *and* scoring is multi-factor), ``True`` forces
        #: the numpy pass, ``False`` forces the scalar per-job loop
        self.vectorized: bool | None = None

    def priority(self, job: Job, now: float) -> float:
        """Scalar priority; larger runs earlier.

        Z-type (``top_priority``) jobs dominate every other factor, per the
        ESP benchmark definition.
        """
        if job.submit_time is None:
            raise ValueError(f"{job.job_id} was never submitted")
        w = self.weights
        wait = now - job.submit_time
        score = w.queue_time * wait
        if w.expansion_factor:
            score += w.expansion_factor * (wait + job.walltime) / job.walltime
        if w.fairshare:
            score += w.fairshare * (1.0 - self.fairshare.normalized_usage(job.user))
        if w.service:
            score += w.service * job.request.total_cores
        if w.credential:
            score += w.credential * w.user_priorities.get(job.user, 0.0)
        if job.top_priority:
            score += 1e15
        return score

    def scores(self, cols: JobColumns, now: float) -> np.ndarray:
        """Vectorized priorities for every job in ``cols`` at once.

        Mirrors :meth:`priority` factor by factor *in the same order of
        floating-point operations*: every term is an elementwise map of
        the scalar expression, and per-job accumulation chains are
        independent, so each score is bit-identical to the scalar one.
        """
        w = self.weights
        wait = now - cols.submit
        score = w.queue_time * wait
        if w.expansion_factor:
            if not cols.walltime.all():
                raise ZeroDivisionError("float division by zero")
            score += w.expansion_factor * (wait + cols.walltime) / cols.walltime
        if w.fairshare:
            total = self.fairshare.total_usage
            usage = cols.user_column(self.fairshare._usage)
            normalized = usage / total if total > 0 else np.zeros_like(usage)
            score += w.fairshare * (1.0 - normalized)
        if w.service:
            score += w.service * cols.cores
        if w.credential:
            score += w.credential * cols.user_column(w.user_priorities)
        if cols.top.any():
            # masked in-place add: non-Z scores keep their exact bits
            # (x + 0.0 would rewrite -0.0 to +0.0)
            score[cols.top] += 1e15
        return score

    def order(self, jobs: list[Job], now: float) -> list[Job]:
        """Jobs sorted by descending priority; ties resolve in submit order."""
        vectorize = self.vectorized
        if vectorize is None:
            # the column gather only pays off when the scalar score chain
            # is expensive: fairshare recomputes the O(users) usage total
            # per job, and every extra factor adds per-job Python work.
            # A queue-time-only config (the ESP runs) scores in two
            # arithmetic ops, and sorted() beats numpy at any depth.
            w = self.weights
            vectorize = len(jobs) >= _VECTORIZE_MIN_JOBS and bool(
                w.expansion_factor or w.fairshare or w.service or w.credential
            )
        if not vectorize:
            return self.order_scalar(jobs, now)
        cols = JobColumns(jobs)
        scores = self.scores(cols, now)
        # same total order as the scalar key (-priority, submit, seq):
        # seq is unique, so any stable algorithm yields the identical list
        ranked = np.lexsort((cols.seq, cols.submit, -scores))
        return [jobs[i] for i in ranked.tolist()]

    def order_scalar(self, jobs: list[Job], now: float) -> list[Job]:
        """The per-job reference implementation of :meth:`order`."""
        return sorted(
            jobs,
            key=lambda j: (-self.priority(j, now), j.submit_time, j.seq),
        )
