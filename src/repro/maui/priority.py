"""Job prioritisation and static fairshare.

Maui computes a weighted sum of priority factors per job (queue time,
fairshare, service, …; Jackson et al., JSSPP 2001).  The ESP experiments run
a FIFO-ish policy (queue-time weight only) with the special ESP rule that a
queued Z-type job outranks everything; the static fairshare tracker is
provided for sites that weight historical usage, and for the SLURM-style
baseline which prioritises dynamic requests through *static* fairshare
(paper Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jobs.job import Job
from repro.maui.config import PriorityWeightsConfig

__all__ = ["PriorityWeights", "Prioritizer", "FairshareTracker"]

# re-export under the historical name used across the package
PriorityWeights = PriorityWeightsConfig


class FairshareTracker:
    """Decayed per-user historical usage in core-seconds.

    Usage is accrued continuously by the scheduler's statistics update and
    decays by ``fairshare_decay`` every ``fairshare_interval`` — Maui's
    sliding-window fairshare in its simplest faithful form.
    """

    def __init__(self, interval: float, decay: float, start_time: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError("fairshare interval must be positive")
        if not 0.0 <= decay <= 1.0:
            raise ValueError("fairshare decay must be in [0, 1]")
        self.interval = interval
        self.decay = decay
        self.window_start = float(start_time)
        self._usage: dict[str, float] = {}

    def add_usage(self, user: str, core_seconds: float) -> None:
        if core_seconds < 0:
            raise ValueError("usage cannot be negative")
        self._usage[user] = self._usage.get(user, 0.0) + core_seconds

    def roll(self, now: float) -> None:
        while now >= self.window_start + self.interval:
            self.window_start += self.interval
            for user in list(self._usage):
                self._usage[user] *= self.decay
                if self._usage[user] < 1e-9:
                    del self._usage[user]

    def usage(self, user: str) -> float:
        return self._usage.get(user, 0.0)

    @property
    def total_usage(self) -> float:
        return sum(self._usage.values())

    def normalized_usage(self, user: str) -> float:
        """This user's share of all tracked usage, in [0, 1]."""
        total = self.total_usage
        return self._usage.get(user, 0.0) / total if total > 0 else 0.0


class Prioritizer:
    """Orders eligible jobs for the priority-scheduling pass."""

    def __init__(self, weights: PriorityWeightsConfig, fairshare: FairshareTracker) -> None:
        self.weights = weights
        self.fairshare = fairshare

    def priority(self, job: Job, now: float) -> float:
        """Scalar priority; larger runs earlier.

        Z-type (``top_priority``) jobs dominate every other factor, per the
        ESP benchmark definition.
        """
        if job.submit_time is None:
            raise ValueError(f"{job.job_id} was never submitted")
        w = self.weights
        wait = now - job.submit_time
        score = w.queue_time * wait
        if w.expansion_factor:
            score += w.expansion_factor * (wait + job.walltime) / job.walltime
        if w.fairshare:
            score += w.fairshare * (1.0 - self.fairshare.normalized_usage(job.user))
        if w.service:
            score += w.service * job.request.total_cores
        if w.credential:
            score += w.credential * w.user_priorities.get(job.user, 0.0)
        if job.top_priority:
            score += 1e15
        return score

    def order(self, jobs: list[Job], now: float) -> list[Job]:
        """Jobs sorted by descending priority; ties resolve in submit order."""
        return sorted(
            jobs,
            key=lambda j: (-self.priority(j, now), j.submit_time, j.seq),
        )
