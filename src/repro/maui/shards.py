"""Per-partition scheduler shards.

A :class:`ShardMap` splits the static-partition nodes into contiguous
shards.  Each shard owns its own :class:`~repro.cluster.profile.
AvailabilityProfile` matrix, incremental-maintenance base, reservation
counter and pass fingerprint inside :class:`~repro.maui.scheduler.
MauiScheduler`, so planning, backfill scans and ``earliest_fit`` run over
a shard-sized node set — and a wake-up in one partition never re-plans
the others.

Two invariants make the decomposition exact rather than approximate:

* **Contiguity.**  Every shard is a contiguous run of the ascending node
  index order, and shards are emitted in that same order.  Concatenating
  shard node tuples therefore reproduces the global node order, which is
  the tie-breaking order of ``AvailabilityProfile._fit_from_min`` — a
  plan computed on a merged view picks the same nodes the monolithic
  scheduler would.
* **Static membership.**  Shard membership is fixed at construction
  (DOWN nodes included); availability is rediscovered per pass from the
  cluster's free map, exactly like the monolithic profile build.

Jobs whose request no single shard can satisfy (full-machine ESP Z jobs,
oversized shaped requests) return ``None`` from :meth:`ShardMap.route`
and go through the scheduler's explicit cross-shard merge step instead.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.cluster.node import NodeState

__all__ = ["SchedulerShard", "ShardMap"]


class SchedulerShard:
    """One contiguous slice of the static node set."""

    __slots__ = ("index", "partition", "nodes", "node_set", "cache_key")

    def __init__(self, index: int, partition: str, nodes: tuple[int, ...]) -> None:
        self.index = index
        self.partition = partition
        self.nodes = nodes
        self.node_set = frozenset(nodes)
        #: profile-cache key; an int component keeps it disjoint from the
        #: all-string partition tuples the monolithic paths key on
        self.cache_key = ("shard", index)

    def can_host(self, cluster: Cluster, request: ResourceRequest) -> bool:
        """Could this shard's UP capacity ever satisfy ``request``?

        A capacity test, not an availability test: routing must be stable
        while jobs queue, so it ignores what is currently busy.
        """
        if request.is_shaped:
            wide_enough = 0
            for idx in self.nodes:
                node = cluster.node(idx)
                if node.state is NodeState.UP and node.cores >= request.ppn:
                    wide_enough += 1
                    if wide_enough >= request.nodes:
                        return True
            return False
        total = sum(
            cluster.node(idx).cores
            for idx in self.nodes
            if cluster.node(idx).state is NodeState.UP
        )
        return total >= request.cores

    def __repr__(self) -> str:
        return (
            f"<SchedulerShard {self.index} partition={self.partition!r} "
            f"nodes={len(self.nodes)}>"
        )


class ShardMap:
    """The shard decomposition of a cluster's static partitions."""

    def __init__(self, shards: tuple[SchedulerShard, ...]) -> None:
        if not shards:
            raise ValueError("shard map needs at least one shard")
        self.shards = shards
        self.node_to_shard: dict[int, int] = {}
        for shard in shards:
            for idx in shard.nodes:
                if idx in self.node_to_shard:
                    raise ValueError(f"node {idx} assigned to two shards")
                self.node_to_shard[idx] = shard.index

    def __len__(self) -> int:
        return len(self.shards)

    @classmethod
    def build(
        cls,
        cluster: Cluster,
        num_shards: int,
        *,
        partitions: Iterable[str] | None = None,
    ) -> "ShardMap":
        """Split the nodes of the given partitions into ≤ ``num_shards``
        balanced contiguous chunks per partition.

        Partitions never share a shard — that is the point: a dynamic
        partition kept out of ``partitions`` (the scheduler passes
        :func:`~repro.maui.partition.static_partitions`) simply has no
        shard, exactly as it has no column in the monolithic profile.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        wanted = set(partitions) if partitions is not None else None
        by_partition: dict[str, list[int]] = {}
        for node in cluster.nodes:  # ascending index order
            if wanted is None or node.partition in wanted:
                by_partition.setdefault(node.partition, []).append(node.index)
        shards: list[SchedulerShard] = []
        for partition in sorted(by_partition):
            indices = by_partition[partition]
            chunks = min(num_shards, len(indices))
            base, extra = divmod(len(indices), chunks)
            pos = 0
            for c in range(chunks):
                size = base + (1 if c < extra else 0)
                shards.append(
                    SchedulerShard(
                        len(shards), partition, tuple(indices[pos : pos + size])
                    )
                )
                pos += size
        if not shards:
            # degenerate: every node lives outside the static partitions;
            # one empty shard keeps the scheduler's single-shard fast path
            shards = [SchedulerShard(0, "batch", ())]
        return cls(tuple(shards))

    def capable_shards(
        self, cluster: Cluster, request: ResourceRequest
    ) -> tuple[SchedulerShard, ...]:
        """Shards whose UP capacity could satisfy ``request``, in order."""
        return tuple(s for s in self.shards if s.can_host(cluster, request))

    def split_allocation(
        self, allocation: Mapping[int, int]
    ) -> dict[int, Allocation]:
        """Scatter a cross-shard allocation back into per-shard pieces."""
        parts: dict[int, dict[int, int]] = {}
        for idx, count in allocation.items():
            parts.setdefault(self.node_to_shard[idx], {})[idx] = count
        return {sid: Allocation(piece) for sid, piece in parts.items()}
