"""Preemption planning: steal resources from preemptible jobs for dynamic requests.

One of the paper's four resource sources for dynamic requests (Section II-B)
and an explicit option of Algorithm 2 line 12 ("from idle before preemptible
resources").  Only *backfilled* jobs are preemptible — they ran out of order
on opportunistic resources, so reclaiming them cannot violate any priority
guarantee.  Victims are chosen latest-started-first (the least sunk work) and
requeued, restarting from scratch like any requeued batch job.

When the decision ledger is on, each victim this planner selects is
recorded as a ``preemption`` decision carrying the grant that evicted it,
and the victim's renewed wait accrues under the ``requeued`` attribution
component — preempting a backfilled job never charges the grant's DFS
delay budget (the job had no guaranteed start to push back), but the lost
progress stays visible in the ledger.
"""

from __future__ import annotations

from repro.cluster.allocation import ResourceRequest
from repro.cluster.machine import Cluster
from repro.jobs.job import Job

__all__ = ["plan_preemption"]


def plan_preemption(
    cluster: Cluster,
    request: ResourceRequest,
    running_jobs: list[Job],
    *,
    partitions: tuple[str, ...] | None = None,
) -> list[Job] | None:
    """Smallest latest-started-first set of backfilled jobs whose removal
    makes ``request`` satisfiable from idle + freed cores.

    Returns None when even preempting every candidate would not help.  The
    caller preempts the victims through the server and then re-runs the
    normal allocation.
    """
    candidates = [
        j for j in running_jobs if j.backfilled and j.is_active and not j.is_evolving
    ]
    # least sunk work first
    candidates.sort(key=lambda j: (-(j.start_time or 0.0), j.seq))
    free = cluster.free_by_node(partitions=partitions)
    victims: list[Job] = []

    def fits() -> bool:
        if request.is_shaped:
            eligible = sum(1 for f in free.values() if f >= request.ppn)
            return eligible >= request.nodes
        return sum(free.values()) >= request.cores

    if fits():
        return []
    for job in candidates:
        assert job.allocation is not None
        for node, cores in job.allocation.items():
            if node in free:  # node may be outside the allowed partitions
                free[node] += cores
        victims.append(job)
        if fits():
            return victims
    return None
