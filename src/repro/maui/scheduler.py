"""The extended Maui scheduler (paper Algorithms 1 and 2).

One :class:`MauiScheduler` instance attaches to a server and runs a
scheduling iteration whenever job or resource state changes (Maui wake-up
condition (i)), optionally also on a periodic timer.  Each iteration:

1. updates statistics (fairshare usage accrual, DFS interval roll-over);
2. selects and prioritises eligible static jobs and — separately, in FIFO
   order — eligible dynamic requests;
3. for every dynamic request: tries to allocate idle resources (dynamic
   partition first if enabled, preemptible resources last), measures the
   delays a grant would inflict on the planned queue, asks the dynamic
   fairness policies for permission, and grants or rejects;
4. starts static jobs in priority order, creating reservations for the top
   ``ReservationDepth`` blocked jobs;
5. backfills the remaining queue (suspended while an ESP Z-job waits).

With ``dynamic_enabled=False`` the iteration degrades exactly to the
original Algorithm 1 and every dynamic request is rejected — that is the
paper's "Static" baseline configuration.
"""

from __future__ import annotations

import logging
import math

from repro.cluster.allocation import Allocation
from repro.cluster.machine import Cluster
from repro.cluster.profile import AvailabilityProfile, NoFitError
from repro.jobs.job import Job
from repro.jobs.queue import DynRequest
from repro.maui.config import MauiConfig
from repro.maui.delay import measure_delays
from repro.maui.fairness import DFSLedger
from repro.maui.partition import find_dynamic_allocation, static_partitions
from repro.maui.preemption import plan_preemption
from repro.maui.priority import FairshareTracker, Prioritizer
from repro.maui.reservations import StaticPlan, plan_static
from repro.maui.shards import SchedulerShard, ShardMap
from repro.obs.clock import perf_ns as _perf_ns
from repro.rms.server import Server
from repro.sim.engine import Engine, PRIORITY_SCHEDULER
from repro.sim.events import EventKind

__all__ = ["MauiScheduler"]

log = logging.getLogger("repro.maui.scheduler")


class MauiScheduler:
    """Event-driven scheduler daemon."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        server: Server,
        config: MauiConfig | None = None,
        *,
        telemetry=None,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.server = server
        self.config = config if config is not None else MauiConfig()
        self.trace = server.trace
        #: optional :class:`repro.obs.Telemetry` (defaults to the server's)
        self.telemetry = telemetry if telemetry is not None else server.telemetry
        self._obs = None
        #: optional :class:`repro.obs.ledger.DecisionLedger`; None keeps
        #: every ledger hook a single attribute-is-None check (off path)
        self._ledger = None
        #: optional :class:`repro.obs.perf.PhaseProfiler`; same discipline —
        #: every phase hook on the disabled path is one is-None check
        self._prof = None
        #: optional :class:`repro.obs.fairness.FairnessObservatory`; fed
        #: from the statistics update — same single-is-None hook discipline
        self._fair = None
        if self.telemetry is not None and self.telemetry.enabled:
            from repro.obs.instruments import SchedulerInstruments

            self._obs = SchedulerInstruments(self.telemetry)
            self._ledger = getattr(self.telemetry, "ledger", None)
            self._prof = getattr(self.telemetry, "profiler", None)
            self._fair = getattr(self.telemetry, "fairness", None)
        self.fairshare = FairshareTracker(
            self.config.weights.fairshare_interval,
            self.config.weights.fairshare_decay,
            start_time=engine.now,
        )
        self.prioritizer = Prioritizer(self.config.weights, self.fairshare)
        self.dfs = DFSLedger(self.config.dfs, start_time=engine.now)
        self._wake_pending = False
        self._last_stats_time = engine.now
        #: cumulative counters for reports and tests
        self.stats = {
            "iterations": 0,
            "iterations_skipped": 0,
            "dyn_granted": 0,
            "dyn_rejected": 0,
            "dyn_rejected_fairness": 0,
            "dyn_rejected_resources": 0,
            "jobs_started": 0,
            "jobs_backfilled": 0,
            "reservations_created": 0,
            "preemptions": 0,
            "malleable_shrinks": 0,
            "jobs_molded": 0,
            "total_delay_charged": 0.0,
            "dyn_handle_seconds": 0.0,  # wall-clock cost of the dynamic path
            "profile_builds": 0,
            "profile_cache_hits": 0,
            "profile_advances": 0,
            "profile_advance_fallbacks": 0,
            "backfill_quick_rejects": 0,
            "shard_merges": 0,
            "shard_passes_skipped": 0,
        }
        #: per-partition scheduler sharding (:mod:`repro.maui.shards`).
        #: ``scheduler_shards >= 1`` routes the static pass through
        #: shard-sized profiles (1 shard is bit-identical to the monolithic
        #: pass); 0 keeps the legacy monolithic pass as the A/B oracle.
        self.sharded_pass_enabled = self.config.scheduler_shards >= 1
        self._shard_map: ShardMap | None = None
        if self.sharded_pass_enabled:
            self._shard_map = ShardMap.build(
                cluster,
                max(1, self.config.scheduler_shards),
                partitions=static_partitions(self.config),
            )
            if len(self._shard_map) > 1:
                cluster.install_shard_index(
                    self._shard_map.node_to_shard, len(self._shard_map)
                )
        #: per-shard pass skip (multi-shard only): a shard whose cluster
        #: slice, routed queue and active-job walltimes are unchanged since
        #: its last planning pass — and whose earliest planned reservation
        #: is still in the future — reuses that pass's outcome instead of
        #: re-planning.  Disable for A/B equivalence runs.
        self.shard_skip_enabled = True
        self._shard_pass_cache: dict[int, dict] = {}
        #: sticky job -> shard-index assignments, made least-loaded-first
        #: in deterministic pass order and kept while the job queues —
        #: stable routing is what keeps the per-shard routed tuples (and
        #: with them the pass-skip fingerprints) quiescent between passes.
        #: Deliberately NOT keyed on ``Job.seq``: that is a process-global
        #: counter and not stable across runs in one process.
        self._route_assign: dict[str, tuple] = {}
        self._route_memo: dict = {}
        self._route_memo_version = -1
        #: job_id -> (allocation, touched-shard tuple); allocations are
        #: immutable (expansion rebinds ``job.allocation``), so identity
        #: comparison detects any change — see :meth:`_shard_fingerprints`
        self._touched_memo: dict = {}
        #: ((shard versions, walltime epoch), {sid: active-sig tuple});
        #: every active-set or allocation change bumps a shard version and
        #: extensions bump the epoch, so an unchanged key proves the whole
        #: signature structure is current
        self._active_sig_cache: tuple | None = None
        #: availability-profile cache: one profile per partition view, valid
        #: for a single (server state, cluster state, sim time) snapshot.
        #: Disable to benchmark the uncached hot path.
        self.profile_cache_enabled = True
        self._profile_cache: dict[tuple[str, ...] | None, AvailabilityProfile] = {}
        self._profile_state: tuple[int, int, float] | None = None
        #: incremental profile maintenance: when the snapshot goes stale,
        #: advance the previous profile to the new time and apply the
        #: claim/release deltas of jobs that started/finished/changed since,
        #: instead of rebuilding the matrix from scratch.  Disable to force
        #: full rebuilds (A/B tests, the equivalence oracle).
        self.profile_incremental_enabled = True
        #: per partition view: the last built profile plus the active-job
        #: footprints ``job_id -> (alloc items inside the view, walltime end)``
        #: it encodes — the diff source for the next advance
        self._profile_bases: dict[
            tuple[str, ...] | None,
            tuple[AvailabilityProfile, dict[str, tuple[tuple, float]]],
        ] = {}
        #: per view key: job_id -> (allocation, footprint inside the view),
        #: the identity-keyed memo behind :meth:`_active_footprints`
        self._footprint_memos: dict = {}
        #: event-driven activation: wake-ups with no state change since the
        #: last full pass are skipped (statistics still accrue).  Disable to
        #: restore unconditional iterations (A/B tests, benchmarks).
        self.iteration_skip_enabled = True
        #: (server.state_version, cluster.version) at the *start* of the
        #: last full iteration — the quiescence fingerprint.  A pass that
        #: changed anything leaves the live counters past this snapshot and
        #: therefore never arms the skip.
        self._last_pass_state: tuple[int, int] | None = None
        #: set by time-anchored wakes (reservation boundaries, maintenance
        #: window edges) whose whole point is that *time*, not state, changed
        self._force_iteration = False
        #: delay-measurement context (profile, eligible ordering, baseline
        #: plan) shared by every dynamic request handled under one state
        self._delay_ctx: tuple | None = None
        #: pending wake at the next reservation boundary (Maui wake-up
        #: condition (ii)); rescheduled every iteration
        self._boundary_wake = None
        self._next_reservation_start: float | None = None
        if self.telemetry is not None:
            # sampled time series: the live replacements for post-hoc
            # trace reconstruction (utilization, depths, ledger levels)
            self.telemetry.add_source(
                "utilization", lambda: cluster.used_cores / cluster.total_cores
            )
            self.telemetry.add_source("busy_cores", lambda: cluster.used_cores)
            self.telemetry.add_source("queue_depth", lambda: len(server.queue))
            self.telemetry.add_source(
                "dyn_queue_depth", lambda: len(server.dyn_queue)
            )
            self.telemetry.add_source(
                "running_jobs", lambda: server.active_count
            )
            self.telemetry.add_source(
                "dfs_ledger_delay",
                lambda: {
                    f"{kind}:{name}": delay
                    for (kind, name), delay in self.dfs.snapshot().items()
                },
            )
        server.on_state_change = self.request_iteration
        server.on_node_event = self.handle_node_event
        if self.config.timer_interval is not None:
            self.engine.after(self.config.timer_interval, self._timer_tick)
        for reservation in self.config.admin_reservations:
            # both edges of a maintenance window are scheduling opportunities;
            # nothing else changes at an edge, so the wake must be forced
            for edge in (reservation.start, reservation.end):
                if edge > engine.now:
                    self.engine.at(edge, self._forced_wake)

    # ------------------------------------------------------------------
    # wake-up machinery
    # ------------------------------------------------------------------
    def request_iteration(self, force: bool = False) -> None:
        """Coalesced wake-up: at most one iteration is queued at a time.

        ``force`` marks wake-ups whose trigger is the passage of simulated
        time itself (reservation boundaries, maintenance-window edges): they
        must run a full iteration even though no state counter moved.
        """
        if force:
            self._force_iteration = True
        if self._wake_pending:
            return
        self._wake_pending = True
        self.engine.at(
            self.engine.now, self._run_iteration, priority=PRIORITY_SCHEDULER
        )

    def _forced_wake(self) -> None:
        self.request_iteration(force=True)

    def handle_node_event(self, node_index: int) -> None:
        """A node failed or recovered: re-plan on the new node set.

        Reservations (and the boundary wake derived from them) were laid
        out on the *old* node set — a reservation planned on a node that
        just died is unservable, and a recovered node may admit an earlier
        start.  Drop the stale boundary wake and force a full iteration so
        plans are rebuilt from the surviving nodes immediately.
        """
        if self._boundary_wake is not None:
            self._boundary_wake.cancel()
            self._boundary_wake = None
        self._next_reservation_start = None
        # the incremental bases were laid out on the old node set; a changed
        # set needs a from-scratch build (the diff only covers allocations)
        self._profile_bases.clear()
        self._footprint_memos.clear()
        # shard pass outcomes and capability routing were computed on the
        # old node set too
        self._shard_pass_cache.clear()
        self._route_memo.clear()
        self._route_memo_version = -1
        self._touched_memo.clear()
        self._active_sig_cache = None
        self.request_iteration(force=True)

    def _run_iteration(self) -> None:
        self._wake_pending = False
        force = self._force_iteration
        self._force_iteration = False
        if not force and self._quiescent():
            # Nothing a full pass could act on has changed: same job and
            # cluster state, no pending dynamic requests.  Statistics still
            # accrue (so fairshare sums and DFS interval rolls are
            # bit-identical to unconditional iteration), but profile
            # construction, prioritisation, planning and backfill are all
            # skipped — unless an accounting window rolls right now, which
            # decays usage and can reorder priorities without any version
            # bump, so the pass is no longer a provable no-op.
            fairshare_window = self.fairshare.window_start
            dfs_window = self.dfs.interval_start
            self._update_statistics(self.engine.now)
            if (
                self.fairshare.window_start == fairshare_window
                and self.dfs.interval_start == dfs_window
            ):
                self.stats["iterations_skipped"] += 1
                if self._obs is not None:
                    self._obs.note_skip(self.stats["iterations_skipped"])
                log.debug(
                    "iteration skipped t=%.1f (state unchanged)", self.engine.now
                )
                return
        self.iteration()

    def _quiescent(self) -> bool:
        """No schedulable change since the last full pass?

        Conservative on purpose: any pending dynamic request (including
        negotiated requests awaiting fresh availability estimates) forces a
        full iteration, as does any bump of either monotone version counter.
        Time-only effects — a planned reservation becoming startable, a
        maintenance window opening — arrive as *forced* wakes and never
        reach this check.
        """
        return (
            self.iteration_skip_enabled
            and self._last_pass_state is not None
            and not self.server.dyn_queue
            and self._last_pass_state
            == (self.server.state_version, self.cluster.version)
        )

    def _timer_tick(self) -> None:
        self.request_iteration()
        self.engine.after(self.config.timer_interval, self._timer_tick)

    # ------------------------------------------------------------------
    # profile construction
    # ------------------------------------------------------------------
    @staticmethod
    def _view_key(view):
        """Cache key for a profile view: a partitions tuple, None (all
        nodes), or a :class:`SchedulerShard` (its ``cache_key`` carries an
        int, so it can never collide with the all-string partition tuples).
        """
        return view.cache_key if isinstance(view, SchedulerShard) else view

    def _view_free(self, view) -> dict[int, int]:
        """The cluster's free map over a profile view."""
        if isinstance(view, SchedulerShard):
            return self.cluster.free_for_nodes(view.nodes)
        return self.cluster.free_by_node(partitions=view)

    def _build_profile(self, view) -> AvailabilityProfile:
        """Current + future availability over the given view (cached).

        ``view`` is a partitions tuple (or None for all nodes) — the
        monolithic paths — or a :class:`SchedulerShard` for the sharded
        static pass.  Profiles are pure functions of (server state, cluster
        allocation state, simulation time); both state counters are
        monotone, so a three-way snapshot comparison detects staleness in
        O(1).  A cache hit hands out a
        :meth:`~AvailabilityProfile.copy` because every caller mutates its
        working profile with hypothetical claims.
        """
        prof = self._prof
        if prof is None:
            return self._build_profile_cached(view)
        prof.begin("profile_build")
        try:
            return self._build_profile_cached(view)
        finally:
            prof.end()

    def _build_profile_cached(self, view) -> AvailabilityProfile:
        if not self.profile_cache_enabled:
            self.stats["profile_builds"] += 1
            return self._build_profile_uncached(view)
        key = self._view_key(view)
        state = (self.server.state_version, self.cluster.version, self.engine.now)
        if state != self._profile_state:
            self._profile_state = state
            self._profile_cache.clear()
        cached = self._profile_cache.get(key)
        if cached is not None:
            self.stats["profile_cache_hits"] += 1
            return cached.copy()
        profile = self._advance_profile(view)
        if profile is None:
            self.stats["profile_builds"] += 1
            profile = self._build_profile_uncached(view)
            if self._incremental_usable():
                self._profile_bases[key] = (
                    profile, self._active_footprints(set(profile._nodes), key)
                )
        else:
            self.stats["profile_advances"] += 1
        self._profile_cache[key] = profile
        return profile.copy()

    def _incremental_usable(self) -> bool:
        # admin reservations interact with running jobs non-locally (a
        # reservation claim skipped because drained cores were busy must be
        # retried when those jobs finish) — keep those configs on the
        # always-rebuild path
        return self.profile_incremental_enabled and not self.config.admin_reservations

    def _active_footprints(
        self, nodes: set[int], view_key=None
    ) -> dict[str, tuple[tuple, float]]:
        """What each active job contributes to a profile over ``nodes``.

        The node intersection is a pure function of the (immutable)
        allocation, so per view it is memoized on allocation identity —
        expansion rebinds ``job.allocation`` and always misses.  Walltime
        ends are read fresh every call (extensions mutate the job in
        place).  Rebuilding the per-view memo dict each call prunes
        finished jobs for free.
        """
        snap: dict[str, tuple[tuple, float]] = {}
        memo = self._footprint_memos.get(view_key) if view_key is not None else None
        fresh: dict = {}
        for job in self.server.active_jobs():
            alloc = job.allocation
            assert alloc is not None
            cached = memo.get(job.job_id) if memo is not None else None
            if cached is None or cached[0] is not alloc:
                inside = tuple(
                    sorted((n, c) for n, c in alloc.items() if n in nodes)
                )
                cached = (alloc, inside)
            fresh[job.job_id] = cached
            if cached[1]:
                snap[job.job_id] = (cached[1], job.walltime_end)
        if view_key is not None:
            self._footprint_memos[view_key] = fresh
        return snap

    def _advance_profile(self, view) -> AvailabilityProfile | None:
        """Bring the cached base profile up to date by claim/release deltas.

        The base encodes "free cores now + future releases of these active
        jobs" as of the previous snapshot.  Advancing clips the timeline to
        the current sim time, then per job that departed (or changed shape/
        walltime) cancels its scheduled future release and frees its cores
        now, and per job that arrived claims its window — O(changed jobs)
        slice updates instead of an O(active jobs) rebuild.  Departed jobs
        can leave *neutral* breakpoints behind (equal adjacent rows); those
        never change the step function, window minima, or the earliest
        feasible start, so every query stays bit-identical to a from-scratch
        build (pinned by ``tests/test_profile_equivalence.py``).

        Returns None (caller rebuilds) when incremental maintenance is off,
        no base exists, or the post-advance free vector fails to reconcile
        with the cluster — the self-check that keeps this path safe.
        """
        if not self._incremental_usable():
            return None
        key = self._view_key(view)
        base = self._profile_bases.get(key)
        if base is None:
            return None
        profile, old_snap = base
        now = self.engine.now
        new_snap = self._active_footprints(set(profile._nodes), key)
        try:
            profile.advance_to(now)
            for job_id, (footprint, wt_end) in old_snap.items():
                if new_snap.get(job_id) == (footprint, wt_end):
                    continue
                if wt_end <= now:
                    # the scheduled release is already fully in effect
                    continue
                alloc = Allocation(dict(footprint))
                # cancel the future release first, then free the cores now —
                # this order keeps both atomic checks satisfied
                profile.add_claim(wt_end, math.inf, alloc)
                profile.add_release(now, alloc)
            for job_id, entry in new_snap.items():
                if old_snap.get(job_id) == entry:
                    continue
                footprint, wt_end = entry
                profile.add_claim(now, wt_end, Allocation(dict(footprint)))
        except ValueError:
            self._profile_bases.pop(key, None)
            self.stats["profile_advance_fallbacks"] += 1
            return None
        # reconcile: free cores at `now` must equal the cluster's — the
        # invariant every from-scratch build satisfies by construction
        free = self._view_free(view)
        if profile.free_at(now) != free or set(free) != set(profile._nodes):
            self._profile_bases.pop(key, None)
            self.stats["profile_advance_fallbacks"] += 1
            return None
        self._profile_bases[key] = (profile, new_snap)
        return profile

    def _build_profile_uncached(self, view) -> AvailabilityProfile:
        """Current + future availability over the given view.

        Running jobs release their full (possibly expanded) allocation at
        their walltime end — the scheduler plans with walltimes, not with
        the actual completion times it cannot know.
        """
        now = self.engine.now
        free = self._view_free(view)
        capacity = {
            n.index: n.cores for n in self.cluster.nodes if n.index in free
        }
        profile = AvailabilityProfile(sorted(free), free, now, capacity)
        for job in self.server.active_jobs():
            assert job.allocation is not None
            assert job.walltime_end > now, f"{job.job_id} past walltime yet active"
            inside = {n: c for n, c in job.allocation.items() if n in free}
            if inside:
                profile.add_release(job.walltime_end, Allocation(inside))
        for reservation in self.config.admin_reservations:
            if reservation.end <= now:
                continue
            inside = {
                n: c for n, c in reservation.cores_by_node.items() if n in free
            }
            if not inside:
                continue
            try:
                profile.add_claim(
                    max(reservation.start, now), reservation.end, Allocation(inside)
                )
            except ValueError:
                # the reserved cores are (partly) occupied by running jobs:
                # the operator drains them; the profile already shows them
                # busy until those jobs' walltime ends
                pass
        return profile

    # ------------------------------------------------------------------
    # the iteration
    # ------------------------------------------------------------------
    def iteration(self) -> None:
        """One full scheduling cycle (Algorithm 2; Algorithm 1 if static)."""
        obs = self._obs
        if obs is not None:
            wall_start_ns = _perf_ns()
            events_before = self.trace.total_recorded
        now = self.engine.now
        prof = self._prof
        if prof is not None:
            prof.begin("sched_iteration", sim_time=now)
        self.stats["iterations"] += 1
        # fingerprint taken *before* the pass: an iteration that starts,
        # grants or preempts anything bumps the version counters past this
        # snapshot, so the echo wake-up it triggers re-runs a full pass
        # (a fresh start moves where blocked jobs' reservations land, which
        # can unlock further backfill — the fixpoint semantics of the
        # original always-iterate loop).  Only a pass that changed nothing
        # arms the skip, and re-running a provable no-op is safe.
        self._last_pass_state = (self.server.state_version, self.cluster.version)
        self._update_statistics(now)

        if self.server.dyn_queue:
            if self.config.dynamic_enabled:
                self._process_dynamic_requests(now)
            else:
                for dreq in list(self.server.dyn_queue):
                    self._reject(dreq, "dynamic allocation disabled", kind="resources")

        ledger = self._ledger
        exclusions: dict[str, tuple[str, str | None]] | None = (
            {} if ledger is not None else None
        )
        if prof is not None:
            prof.begin("prioritize")
        ordered = self._eligible_static(now, exclusions=exclusions)
        if prof is not None:
            prof.end()
        lockdown = self.server.queue.has_top_priority_job
        outcome: dict[str, tuple[str, str | None]] | None = (
            {} if ledger is not None else None
        )
        started, backfilled = self._start_static(ordered, now, lockdown, outcome=outcome)
        if prof is not None:
            prof.begin("wrap_up")
        if ledger is not None:
            # every still-queued job is classified exactly once per pass:
            # excluded (hold/dependency/throttle) or examined by the start
            # pass (reserved, plain queued, or blocked from backfilling)
            exclusions.update(outcome)
            ledger.observe_queue(now, exclusions)
        self._schedule_boundary_wake()

        self.trace.record(
            now,
            EventKind.SCHED_ITERATION,
            queued=len(self.server.queue),
            dynqueued=len(self.server.dyn_queue),
            started=started,
            backfilled=backfilled,
            lockdown=lockdown,
        )
        log.debug(
            "iteration t=%.1f queued=%d started=%d backfilled=%d",
            now, len(self.server.queue), started, backfilled,
        )
        if prof is not None:
            prof.end()
            prof.end()
        if obs is not None:
            obs.sync_stats(self.stats)
            obs.sync_ledger(self.dfs.snapshot())
            obs.end_iteration(
                now,
                _perf_ns() - wall_start_ns,
                self.trace.total_recorded - events_before,
            )

    def _eligible_static(
        self,
        now: float,
        exclusions: dict[str, tuple[str, str | None]] | None = None,
    ) -> list[Job]:
        """Queued jobs eligible for priority scheduling (Algorithm step 6).

        Three gates, all part of Maui's "minimum scheduling criterion":

        * holds — a held job stays queued but frozen until released;
        * dependencies — unmet dependencies keep the job queued but
          invisible to the planner; a failed ``afterok`` cancels it;
        * throttling — at most ``max_eligible_jobs_per_user`` queued jobs
          per user are considered, and a user at the
          ``max_running_jobs_per_user`` cap contributes no more eligible
          jobs than the cap leaves headroom for.

        ``exclusions`` (diagnostics/ledger only) collects
        ``job_id -> (cause, detail)`` for every job a gate filtered out,
        naming the specific hold kind, dependency target or throttle limit.
        """
        eligible: list[Job] = []
        for job in self.server.queue.snapshot():
            if job.hold is not None:
                if exclusions is not None:
                    exclusions[job.job_id] = (f"{job.hold}_held", f"{job.hold} hold")
                continue
            if self.server.dependency_failed(job):
                self.server.cancel_queued(job, reason="dependency failed")
                continue
            if self.server.dependency_satisfied(job):
                eligible.append(job)
            elif exclusions is not None:
                exclusions[job.job_id] = (
                    "dependency_held",
                    f"dependency on {job.depends_on}",
                )
        ordered = self.prioritizer.order(eligible, now)
        max_running = self.config.max_running_jobs_per_user
        max_eligible = self.config.max_eligible_jobs_per_user
        if max_running is None and max_eligible is None:
            return ordered
        running_count: dict[str, int] = {}
        for job in self.server.active_jobs():
            running_count[job.user] = running_count.get(job.user, 0) + 1
        taken: dict[str, int] = {}
        throttled: list[Job] = []
        for job in ordered:
            user_taken = taken.get(job.user, 0)
            if max_eligible is not None and user_taken >= max_eligible:
                if exclusions is not None:
                    exclusions[job.job_id] = (
                        "throttled",
                        f"throttled by max_eligible_jobs_per_user={max_eligible}",
                    )
                continue
            if max_running is not None:
                headroom = max_running - running_count.get(job.user, 0)
                if user_taken >= headroom:
                    if exclusions is not None:
                        exclusions[job.job_id] = (
                            "throttled",
                            f"throttled by max_running_jobs_per_user={max_running}",
                        )
                    continue
            taken[job.user] = user_taken + 1
            throttled.append(job)
        return throttled

    def _schedule_boundary_wake(self) -> None:
        """Wake at the earliest planned reservation start (condition (ii)).

        Normally job completions wake the scheduler in time to honour its
        reservations, but a reservation can begin at a boundary with no
        completion event — e.g. the end of a maintenance window.  One pending
        wake at the earliest future reservation start covers every such case.
        """
        if self._boundary_wake is not None:
            self._boundary_wake.cancel()
            self._boundary_wake = None
        if self._next_reservation_start is not None and (
            self._next_reservation_start > self.engine.now
        ):
            self._boundary_wake = self.engine.at(
                self._next_reservation_start, self._boundary_fire
            )

    def _boundary_fire(self) -> None:
        self._boundary_wake = None
        self.request_iteration(force=True)

    def _update_statistics(self, now: float) -> None:
        """Maui iteration step 4: accrue usage, roll accounting windows.

        Usage is accrued per job over its overlap with the window since the
        previous iteration — including jobs that finished *within* the
        window, whose final segment would otherwise never be charged.  The
        core count used is the job's latest allocation width (expansions are
        charged at full width from the window start; a second-order
        approximation that errs against the expanding user).
        """
        prof = self._prof
        if prof is not None:
            prof.begin("fairshare_update", sim_time=now)
        fair = self._fair
        last = self._last_stats_time
        if now > last:
            # Only running jobs plus those that finished since the previous
            # accrual window can overlap [last, now] — O(active) instead of
            # O(all jobs ever submitted).  Sorting by submission order keeps
            # the per-user floating-point sums bit-identical to the historic
            # full scan (which walked the submission-ordered job dict).
            chargeable = self.server.active_jobs()
            chargeable += self.server.drain_finished_for_stats()
            chargeable.sort(key=lambda j: j.seq)
            for job in chargeable:
                if job.start_time is None or job.allocation is None:
                    continue
                seg_start = max(last, job.start_time)
                seg_end = now if job.end_time is None else min(now, job.end_time)
                if seg_end > seg_start:
                    used = job.allocation.total_cores * (seg_end - seg_start)
                    self.fairshare.add_usage(job.user, used)
                    if fair is not None:
                        fair.accrue(job, used)
        self._last_stats_time = now
        self.fairshare.roll(now)
        if fair is not None:
            fair.sample(now, self.fairshare)
        if self.dfs.roll(now):
            self.trace.record(
                now, EventKind.DFS_INTERVAL_ROLL, interval_start=self.dfs.interval_start
            )
        if prof is not None:
            prof.end()

    # ------------------------------------------------------------------
    # dynamic requests (Algorithm 2 lines 11-24)
    # ------------------------------------------------------------------
    def _ordered_dynamic_requests(self) -> list[DynRequest]:
        """Pending dynamic requests in the configured service order."""
        pending = list(self.server.dyn_queue)
        order = self.config.dynamic_request_order
        if order == "fairshare":
            pending.sort(
                key=lambda d: (self.fairshare.usage(d.job.user), d.submit_time, d.job.seq)
            )
        elif order == "smallest_first":
            pending.sort(
                key=lambda d: (d.request.total_cores, d.submit_time, d.job.seq)
            )
        return pending

    def _delay_context(
        self, now: float
    ) -> tuple[AvailabilityProfile, list[Job], set[int], StaticPlan | None]:
        """Shared inputs for delay measurement, reused while state holds.

        The availability profile, the eligible static ordering, the
        static-partition node set and — crucially — the *baseline* priority
        plan are all pure functions of ``(server state, cluster state,
        now)``.  Consecutive dynamic requests resolved without a grant,
        preemption or shrink therefore reuse one baseline plan instead of
        re-planning the queue prefix from a fresh profile copy per request;
        any mutation bumps a version counter and rebuilds the context.
        """
        key = (self.server.state_version, self.cluster.version, now)
        ctx = self._delay_ctx
        if ctx is None or ctx[0] != key:
            prof = self._prof
            if prof is not None:
                prof.begin("delay_context")
            partitions = static_partitions(self.config)
            profile = self._build_profile(partitions)
            ordered = self._eligible_static(now)
            profile_nodes = set(self.cluster.free_by_node(partitions=partitions))
            baseline = (
                plan_static(ordered, profile.copy(), now, self.config.plan_depth)
                if ordered
                else None
            )
            ctx = (key, profile, ordered, profile_nodes, baseline)
            self._delay_ctx = ctx
            if prof is not None:
                prof.end()
        return ctx[1], ctx[2], ctx[3], ctx[4]

    def _process_dynamic_requests(self, now: float) -> None:
        obs = self._obs
        prof = self._prof
        if prof is not None:
            prof.begin("dyn_requests")
        for dreq in self._ordered_dynamic_requests():
            wall_start_ns = _perf_ns()
            events_before = self.trace.total_recorded if obs is not None else 0
            try:
                self._handle_dynamic_request(dreq, now)
            finally:
                wall_ns = _perf_ns() - wall_start_ns
                self.stats["dyn_handle_seconds"] += wall_ns / 1e9
                if obs is not None:
                    obs.end_dyn_handle(
                        now, wall_ns, self.trace.total_recorded - events_before
                    )
        if prof is not None:
            prof.end()

    def _handle_dynamic_request(self, dreq: DynRequest, now: float) -> None:
        if dreq.is_extension:
            self._handle_extension_request(dreq, now)
            return
        job = dreq.job
        assert job.start_time is not None
        claim_end = job.walltime_end
        if claim_end <= now:
            self._reject(dreq, "no walltime remaining", kind="resources")
            return
        blocked_nodes = self._admin_blocked_nodes(now, claim_end)
        alloc = find_dynamic_allocation(
            self.cluster, dreq.request, self.config, exclude_nodes=blocked_nodes
        )
        if alloc is None and self.config.malleable_steal_for_dynamic:
            alloc = self._steal_from_malleable(dreq)
        preempt_victims: list[Job] = []
        if alloc is None and self.config.preemption_for_dynamic:
            plan = plan_preemption(
                self.cluster, dreq.request, self.server.active_jobs()
            )
            if plan is None:
                self._deny(dreq, "insufficient resources", kind="resources", now=now)
                return
            preempt_victims = plan
        elif alloc is None:
            self._deny(dreq, "insufficient resources", kind="resources", now=now)
            return

        if preempt_victims:
            # Preemption reclaims opportunistic backfill, governed by Maui's
            # own preemption policy rather than DFS (which protects *queued*
            # jobs); the victims rejoin the queue and benefit from DFS there.
            for victim in preempt_victims:
                if self._ledger is not None:
                    self._ledger.note_preemption(
                        victim, dreq.job, now,
                        victim.allocation.total_cores if victim.allocation else 0,
                    )
                self.server.preempt_job(victim)
                self.stats["preemptions"] += 1
            alloc = find_dynamic_allocation(self.cluster, dreq.request, self.config)
            assert alloc is not None, "preemption plan did not free enough"
            self._grant(
                dreq, alloc, victims=[], charged=0.0,
                reason="preempted backfill",
                preempted=[v.job_id for v in preempt_victims],
            )
            return

        # measure delays against the queue as planned on the static partitions
        profile, ordered, profile_nodes, baseline = self._delay_context(now)
        claim_inside = Allocation(
            {n: c for n, c in alloc.items() if n in profile_nodes}
        )
        if claim_inside.is_empty:
            victims = []
        else:
            prof = self._prof
            if prof is not None:
                prof.begin("delay_measure")
            victims = measure_delays(
                ordered, profile, claim_inside, claim_end, now,
                self.config.plan_depth, baseline=baseline,
            )
            if prof is not None:
                prof.end()
        decision = self.dfs.evaluate(victims, job.user, now)
        if decision:
            charged = self.dfs.commit(victims, job.user)
            self._grant(
                dreq, alloc, victims=victims, charged=charged,
                reason=decision.reason,
            )
        else:
            self._deny(
                dreq, decision.reason, kind="fairness", now=now, victims=victims
            )

    def _steal_from_malleable(self, dreq: DynRequest) -> Allocation | None:
        """Shrink running malleable jobs until the request fits (or give up).

        Only flexible (``procs=N``) requests are served this way — a shaped
        request needs whole nodes, which piecemeal shrinking cannot promise.
        Jobs shrink latest-started-first so long-running malleable jobs keep
        their width longest.
        """
        if dreq.request.is_shaped:
            return None
        from repro.jobs.job import JobFlexibility

        candidates = [
            j
            for j in self.server.active_jobs()
            if j.flexibility is JobFlexibility.MALLEABLE and j is not dreq.job
        ]
        candidates.sort(key=lambda j: (-(j.start_time or 0.0), j.seq))
        partitions = static_partitions(self.config)
        for job in candidates:
            deficit = dreq.request.cores - sum(
                self.cluster.free_by_node(partitions=partitions).values()
            )
            if deficit <= 0:
                break
            released = self.server.request_shrink(job, deficit)
            if released:
                self.stats["malleable_shrinks"] += 1
        return find_dynamic_allocation(self.cluster, dreq.request, self.config)

    def _admin_blocked_nodes(self, start: float, end: float) -> set[int]:
        """Nodes with an admin reservation overlapping ``[start, end)``.

        A dynamic grant holds until the evolving job's walltime end, so a
        grant on these nodes would collide with the maintenance window.
        """
        blocked: set[int] = set()
        for reservation in self.config.admin_reservations:
            if reservation.overlaps(start, end):
                blocked.update(reservation.cores_by_node)
        return blocked

    def _handle_extension_request(self, dreq: DynRequest, now: float) -> None:
        """Walltime extension: the job keeps its own cores for longer.

        The hypothetical reservation is the job's current allocation over
        ``[old walltime end, new walltime end)`` — resources are trivially
        "available" (the job already holds them); only fairness can refuse.
        """
        job = dreq.job
        assert job.start_time is not None and job.allocation is not None
        assert dreq.extend_walltime is not None
        old_end = job.walltime_end
        new_end = old_end + dreq.extend_walltime
        profile, ordered, profile_nodes, baseline = self._delay_context(now)
        claim_inside = Allocation(
            {n: c for n, c in job.allocation.items() if n in profile_nodes}
        )
        if claim_inside.is_empty:
            victims = []
        else:
            prof = self._prof
            if prof is not None:
                prof.begin("delay_measure")
            victims = measure_delays(
                ordered,
                profile,
                claim_inside,
                new_end,
                now,
                self.config.plan_depth,
                claim_start=old_end,
                baseline=baseline,
            )
            if prof is not None:
                prof.end()
        decision = self.dfs.evaluate(victims, job.user, now)
        if decision:
            charged = self.dfs.commit(victims, job.user)
            self.stats["dyn_granted"] += 1
            self.stats["total_delay_charged"] += charged
            if self._ledger is not None:
                self._ledger.note_dyn_grant(
                    dreq, now, cores=0, victims=victims, charged=charged,
                    policy=self.config.dfs.policy.value, reason=decision.reason,
                    fingerprint=self._fingerprint(now),
                    extension=dreq.extend_walltime,
                )
            self.server.grant_walltime_extension(dreq)
        else:
            self.trace.record(
                now,
                EventKind.WALLTIME_EXTENSION_DENY,
                job_id=job.job_id,
                user=job.user,
                extension=dreq.extend_walltime,
                reason=decision.reason,
            )
            self._reject(dreq, decision.reason, kind="fairness", victims=victims)

    def _fingerprint(self, now: float) -> tuple[int, int, float]:
        """Availability-profile state fingerprint: the cache key identifying
        the exact ``(server state, cluster state, time)`` snapshot a verdict's
        profile was built from (see :meth:`_build_profile`)."""
        return (self.server.state_version, self.cluster.version, now)

    def _grant(
        self,
        dreq,
        alloc,
        *,
        victims,
        charged: float,
        reason: str = "",
        preempted: list[str] | None = None,
    ) -> None:
        if self._ledger is not None:
            self._ledger.note_dyn_grant(
                dreq, self.engine.now, cores=alloc.total_cores, victims=victims,
                charged=charged, policy=self.config.dfs.policy.value,
                reason=reason, fingerprint=self._fingerprint(self.engine.now),
                preempted=preempted,
            )
        self.stats["dyn_granted"] += 1
        self.stats["total_delay_charged"] += charged
        self.server.grant_dynamic(dreq, alloc)

    def _reject(self, dreq, reason: str, *, kind: str, victims=()) -> None:
        if self._ledger is not None:
            self._ledger.note_dyn_deny(
                dreq, self.engine.now, reason=reason, deny_kind=kind,
                victims=victims, policy=self.config.dfs.policy.value,
                fingerprint=self._fingerprint(self.engine.now),
            )
        self.stats["dyn_rejected"] += 1
        self.stats[f"dyn_rejected_{kind}"] += 1
        self.server.reject_dynamic(dreq, reason)

    def _deny(
        self,
        dreq: DynRequest,
        reason: str,
        *,
        kind: str,
        now: float,
        victims=(),
    ) -> None:
        """Reject — or, for a live negotiated request, defer with an estimate.

        Negotiated requests (Section III-C outlook) stay in the dynamic
        queue until their deadline; each denied attempt publishes the
        scheduler's current earliest-availability estimate so the
        application can plan around it.
        """
        if not dreq.negotiated or now >= (dreq.deadline or now):
            self._reject(dreq, reason, kind=kind, victims=victims)
            return
        profile = self._build_profile(None)
        try:
            available_at, _alloc = profile.earliest_fit(dreq.request, 1.0, after=now)
        except NoFitError:
            self._reject(
                dreq, f"{reason}; request can never fit", kind=kind, victims=victims
            )
            return
        if self._ledger is not None:
            self._ledger.note_dyn_defer(dreq, now, estimate=available_at)
        dreq.publish_estimate(available_at)

    # ------------------------------------------------------------------
    # static starts, reservations, backfill (Algorithm 2 lines 25-26)
    # ------------------------------------------------------------------
    def _start_static(
        self,
        ordered: list[Job],
        now: float,
        lockdown: bool,
        outcome: dict[str, tuple[str, str | None]] | None = None,
    ) -> tuple[int, int]:
        """Start jobs in priority order; reserve for the top blocked jobs.

        ``ReservationDepth`` bounds how many *blocked* jobs receive future
        reservations — it never prevents a fitting job from starting.  Jobs
        that start after any higher-priority job was passed over run out of
        order and are therefore marked (and counted) as backfill; with
        backfill disabled the pass stops at the first blocked job instead
        (strict priority order).  Returns (priority starts, backfill starts).

        ``outcome`` (ledger only) collects ``job_id -> (cause, detail)`` for
        every examined-but-not-started job plus everything left unexamined
        when the pass stops early.

        With ``scheduler_shards >= 1`` (the default) the pass runs sharded
        (:meth:`_start_static_sharded`); ``scheduler_shards == 0`` keeps
        this monolithic walk — the A/B oracle the single-shard path is
        pinned bit-identical against.
        """
        if self.sharded_pass_enabled:
            return self._start_static_sharded(ordered, now, lockdown, outcome=outcome)
        return self._start_static_monolithic(ordered, now, lockdown, outcome=outcome)

    def _start_static_monolithic(
        self,
        ordered: list[Job],
        now: float,
        lockdown: bool,
        outcome: dict[str, tuple[str, str | None]] | None = None,
    ) -> tuple[int, int]:
        prof = self._prof
        if prof is not None:
            prof.begin("static_pass")
        partitions = static_partitions(self.config)
        working = self._build_profile(partitions)
        ledger = self._ledger
        fingerprint = self._fingerprint(now)
        blocked_ids: list[str] = []
        reserved_ahead: list[tuple[str, float]] = []
        reservations = 0
        started = 0
        backfilled = 0
        passed_blocked = False
        stopped_at: int | None = None
        self._next_reservation_start = None
        for idx, job in enumerate(ordered):
            if prof is not None:
                prof.begin("backfill_scan")
            # instantaneous-free prune: on a packed cluster most candidates
            # fail against the free vector at `now` alone, skipping the
            # window scan (a pure short-circuit — fits_at would return None)
            if working.quick_reject(now, job.request):
                self.stats["backfill_quick_rejects"] += 1
                alloc = None
            else:
                alloc = working.fits_at(now, job.walltime, job.request)
            molded = False
            if alloc is None and job.moldable_floor < job.request.total_cores:
                # moldable job: start now on the largest fitting size within
                # [min_cores, request) rather than wait for the full request
                alloc = self._mold_to_fit(working, job, now)
                if alloc is not None:
                    molded = True
                    self.stats["jobs_molded"] += 1
                    self.trace.record(
                        now,
                        EventKind.MOLDABLE_START,
                        job_id=job.job_id,
                        user=job.user,
                        requested=job.request.total_cores,
                        granted=alloc.total_cores,
                        floor=job.moldable_floor,
                    )
            if prof is not None:
                prof.end()
            if alloc is not None:
                working.add_claim(now, now + job.walltime, alloc)
                if ledger is not None:
                    ledger.note_start(
                        job,
                        now,
                        backfilled=passed_blocked,
                        molded=molded,
                        cores=alloc.total_cores,
                        fingerprint=fingerprint,
                        jumped=blocked_ids if passed_blocked else None,
                        hole_until=self._next_reservation_start,
                    )
                # a start while a higher-priority job waits is out-of-order
                # execution, i.e. backfill in Maui's terms
                self.server.start_job(job, alloc, backfilled=passed_blocked)
                if passed_blocked:
                    self.stats["jobs_backfilled"] += 1
                    backfilled += 1
                else:
                    self.stats["jobs_started"] += 1
                    started += 1
                continue
            # blocked: reserve if within depth, then maybe stop the pass
            if reservations < self.config.reservation_depth:
                if prof is not None:
                    prof.begin("reservation_plan")
                try:
                    try:
                        if prof is not None:
                            prof.begin("earliest_fit")
                        try:
                            # oversized requests fail every candidate window;
                            # one vectorized sweep proves it without the scan
                            if not working.can_ever_fit(job.request):
                                raise NoFitError(
                                    f"{job.request} never fits "
                                    "(cluster too small or fragmented)"
                                )
                            # probe_start=False: this job just failed to
                            # start at `now` against this very profile, so
                            # the window query at the bound is already known
                            # to fail
                            start, res_alloc = working.earliest_fit(
                                job.request,
                                job.walltime,
                                after=now,
                                probe_start=False,
                            )
                        finally:
                            if prof is not None:
                                prof.end()
                    except NoFitError:
                        if outcome is not None:
                            outcome[job.job_id] = (
                                "queued_behind",
                                "request can never fit",
                            )
                        continue  # oversized for this partition view; skip
                    working.add_claim(start, start + job.walltime, res_alloc)
                    reservations += 1
                    if (
                        self._next_reservation_start is None
                        or start < self._next_reservation_start
                    ):
                        self._next_reservation_start = start
                    self.stats["reservations_created"] += 1
                    self.trace.record(
                        now,
                        EventKind.RESERVATION_CREATE,
                        job_id=job.job_id,
                        start=start,
                        cores=res_alloc.total_cores,
                    )
                    if ledger is not None:
                        # what is the reservation waiting on: running jobs
                        # that release by its start, plus earlier
                        # reservations due to start before it
                        waiting_on = [
                            j.job_id
                            for j in self.server.active_jobs()
                            if j.walltime_end <= start + 1e-9
                        ] + [jid for jid, s in reserved_ahead if s <= start + 1e-9]
                        ledger.note_reservation(
                            job, now, start, res_alloc.total_cores,
                            waiting_on, fingerprint,
                        )
                        reserved_ahead.append((job.job_id, start))
                        if outcome is not None:
                            outcome[job.job_id] = (
                                "reservation_held",
                                f"reserved at t={start:.1f}",
                            )
                finally:
                    if prof is not None:
                        prof.end()
            elif outcome is not None:
                behind = f"behind {blocked_ids[0]}" if blocked_ids else None
                outcome[job.job_id] = ("queued_behind", behind)
            blocked_ids.append(job.job_id)
            passed_blocked = True
            if job.top_priority or not self.config.backfill_enabled or lockdown:
                # ESP Z-job lockdown, or strict priority order without
                # backfill: nothing below the blocked job may start
                stopped_at = idx
                break
        if outcome is not None and stopped_at is not None:
            if lockdown:
                reason = "Z-job lockdown"
            elif not self.config.backfill_enabled:
                reason = "backfill disabled"
            else:
                reason = f"blocked top-priority job {ordered[stopped_at].job_id}"
            for job in ordered[stopped_at + 1 :]:
                outcome[job.job_id] = ("backfill_blocked", reason)
        if prof is not None:
            prof.end()
        return started, backfilled

    # ------------------------------------------------------------------
    # the sharded static pass (repro.maui.shards)
    # ------------------------------------------------------------------
    def _route(
        self, job: Job, loads: dict[int, int]
    ) -> SchedulerShard | None:
        """Deterministic, run-stable shard for a queued job.

        Capable shards (UP capacity could ever satisfy the request) are
        memoized per request shape and cluster topology version (bumped
        only on node fail/recover — ordinary claims and releases never
        change UP capacity, so the memo survives them).  A first-seen job
        is assigned the capable shard with the fewest queued cores routed
        so far this pass (lowest index on ties) and keeps that assignment
        while it queues; ``loads`` is the per-pass queued-core tally,
        recomputed from the priority walk each pass so departed jobs never
        leave stale weight behind.  ``None`` means no single shard can
        host the request (a full-machine ESP Z job, an oversized shape):
        the caller plans it on the cross-shard merge.
        """
        topo = self.cluster.topology_version
        if self._route_memo_version != topo:
            self._route_memo_version = topo
            self._route_memo.clear()
        req = job.request
        assigned = self._route_assign.get(job.job_id)
        if assigned is not None:
            if assigned[0] is req and assigned[2] == topo:
                # fast path: assignment sticky, request object unchanged
                # (qalter rebinds it) and topology unchanged since the
                # assignment was validated — no capability lookup needed
                sid = assigned[1]
                loads[sid] += req.total_cores
                return self._shard_map.shards[sid]
            sid = assigned[1]
        else:
            sid = None
        req_key = (req.cores, req.nodes, req.ppn)
        memo = self._route_memo.get(req_key)
        if memo is None:
            capable = self._shard_map.capable_shards(self.cluster, req)
            memo = (capable, frozenset(s.index for s in capable))
            self._route_memo[req_key] = memo
        capable, capable_ids = memo
        if not capable:
            return None
        if sid is None or sid not in capable_ids:
            # least-loaded assignment; a vanished shard (node failures
            # shrank its capacity below the request) re-routes here
            best = min(capable, key=lambda s: (loads[s.index], s.index))
            sid = best.index
        self._route_assign[job.job_id] = (req, sid, topo)
        loads[sid] += req.total_cores
        return self._shard_map.shards[sid]

    def _shard_fingerprints(
        self, ordered: list[Job], routes: list[SchedulerShard | None]
    ) -> dict[int, tuple]:
        """Per-shard quiescence fingerprint for the per-shard pass skip.

        A shard's planning outcome is a pure function of (its cluster
        slice, the jobs routed to it in pass order, the walltime ends of
        active jobs touching its nodes).  The shard version counter covers
        claims/releases/node events; the active-walltime signature covers
        walltime extensions, which move a shard's future releases without
        any cluster bump; the routed tuple covers queue membership and
        relative priority order.
        """
        shards = self._shard_map.shards
        routed: dict[int, list[str]] = {s.index: [] for s in shards}
        for job, route in zip(ordered, routes):
            if route is not None:
                routed[route.index].append(job.job_id)
        versions = self.cluster.shard_versions
        # the active-signature structure is a pure function of (shard
        # versions, walltime epoch): any membership or allocation change
        # bumps a shard version via claim/release, and the one mutation
        # that moves a release without touching the cluster — a walltime
        # extension — bumps the server's epoch
        sig_key = (tuple(versions), self.server.walltime_epoch)
        cache = self._active_sig_cache
        if cache is not None and cache[0] == sig_key:
            active = cache[1]
        else:
            lists: dict[int, list[tuple[int, float]]] = {s.index: [] for s in shards}
            node_to_shard = self._shard_map.node_to_shard
            # touched shards are a pure function of the (immutable)
            # allocation; memoize per job on allocation identity —
            # expansion rebinds ``job.allocation`` so a changed set always
            # misses.  Rebuilding the memo dict every pass prunes finished
            # jobs for free.
            memo = self._touched_memo
            fresh: dict = {}
            for job in self.server.active_jobs():
                alloc = job.allocation
                assert alloc is not None
                cached = memo.get(job.job_id)
                if cached is None or cached[0] is not alloc:
                    touched = {
                        node_to_shard[n] for n in alloc if n in node_to_shard
                    }
                    cached = (alloc, tuple(sorted(touched)))
                fresh[job.job_id] = cached
                sig = (job.seq, job.walltime_end)
                for sid in cached[1]:
                    lists[sid].append(sig)
            self._touched_memo = fresh
            active = {sid: tuple(sigs) for sid, sigs in lists.items()}
            self._active_sig_cache = (sig_key, active)
        return {
            s.index: (
                versions[s.index],
                tuple(routed[s.index]),
                active[s.index],
            )
            for s in shards
        }

    def _start_static_sharded(
        self,
        ordered: list[Job],
        now: float,
        lockdown: bool,
        outcome: dict[str, tuple[str, str | None]] | None = None,
    ) -> tuple[int, int]:
        """The sharded static pass: one global priority walk, per-shard plans.

        Each job plans against its shard's own working profile (built and
        cached per shard, incrementally maintained per shard); spanning
        jobs plan on an explicit cross-shard merge and scatter their claims
        back into the shard profiles.  The walk itself — priority order,
        ``passed_blocked`` backfill labeling, reservation depth, the
        lockdown stop — reproduces the monolithic pass exactly; with one
        shard every operation is performed on the same profile in the same
        order, so the schedule is bit-identical to
        :meth:`_start_static_monolithic`.
        """
        prof = self._prof
        if prof is not None:
            prof.begin("static_pass")
        shard_map = self._shard_map
        shards = shard_map.shards
        multi = len(shards) > 1
        partitions = static_partitions(self.config)
        ledger = self._ledger

        if multi and not ordered:
            # empty queue: nothing to plan or block.  Clearing the pass
            # cache instead of re-fingerprinting is exact — a future
            # non-empty pass could never match an empty routed tuple, so
            # the stored entry would be dead weight either way.
            self._shard_pass_cache.clear()
            self._next_reservation_start = None
            if prof is not None:
                prof.end()
            return 0, 0

        fingerprint = self._fingerprint(now)

        if multi:
            loads = {shard.index: 0 for shard in shards}
            routes: list[SchedulerShard | None] = [
                self._route(job, loads) for job in ordered
            ]
        else:
            routes = [shards[0]] * len(ordered)

        # Per-shard skip preconditions.  Soundness rests on profiles being
        # release-only between state changes (free cores non-decreasing in
        # time, so fits/earliest-fit outcomes are time-stable until the
        # earliest planned reservation start); spanning jobs, lockdown,
        # disabled backfill, admin reservations and ledger/outcome
        # collection all fall back to full planning.
        skip_ok = (
            multi
            and self.shard_skip_enabled
            and outcome is None
            and ledger is None
            and not lockdown
            and self.config.backfill_enabled
            and not self.config.admin_reservations
            and all(route is not None for route in routes)
        )
        fingerprints = self._shard_fingerprints(ordered, routes) if multi else None
        skipped: dict[int, dict] = {}
        if skip_ok:
            for shard in shards:
                cached = self._shard_pass_cache.get(shard.index)
                if cached is None or cached["fingerprint"] != fingerprints[shard.index]:
                    continue
                res_start = cached["min_res_start"]
                if res_start is not None and now >= res_start:
                    continue  # a cached reservation is due: replan the shard
                skipped[shard.index] = cached

        workings: dict[int, AvailabilityProfile] = {}

        def working_for(shard: SchedulerShard) -> AvailabilityProfile:
            profile = workings.get(shard.index)
            if profile is None:
                profile = self._build_profile(shard if multi else partitions)
                workings[shard.index] = profile
            return profile

        if not multi:
            # the monolithic pass builds its profile unconditionally (even
            # with an empty queue); matching that keeps the single-shard
            # cache/build counters bit-identical to the legacy oracle
            working_for(shards[0])

        blocked_ids: list[str] = []
        reserved_ahead: list[tuple[str, float]] = []
        depth = self.config.reservation_depth
        res_counts = {shard.index: 0 for shard in shards}
        shard_blocked: dict[int, set[str]] = {shard.index: set() for shard in shards}
        shard_min_res: dict[int, float | None] = {shard.index: None for shard in shards}
        started = 0
        backfilled = 0
        passed_blocked = False
        stopped_at: int | None = None
        self._next_reservation_start = None
        for cached in skipped.values():
            # a skipped shard's planned reservations still anchor the
            # boundary wake
            res_start = cached["min_res_start"]
            if res_start is not None and (
                self._next_reservation_start is None
                or res_start < self._next_reservation_start
            ):
                self._next_reservation_start = res_start

        for idx, job in enumerate(ordered):
            route = routes[idx]
            if route is not None and route.index in skipped:
                # replayed outcome: still blocked (labels later backfill)
                # or still can-never-fit (contributes nothing), exactly as
                # the cached full pass decided
                if job.job_id in skipped[route.index]["blocked"]:
                    blocked_ids.append(job.job_id)
                    passed_blocked = True
                continue
            spanning = route is None
            if spanning:
                # cross-shard merge: gather every shard's current working
                # profile (claims of earlier jobs this pass included) into
                # one full view, plan on it, scatter claims back below
                self.stats["shard_merges"] += 1
                if prof is not None:
                    prof.begin("shard_merge")
                working = AvailabilityProfile.merge(
                    [working_for(shard) for shard in shards]
                )
                if prof is not None:
                    prof.end()
                sid: int | None = None
                suffix = ".merge"
            else:
                working = working_for(route)
                sid = route.index
                suffix = f".s{sid}" if multi else ""
            if prof is not None:
                prof.begin("backfill_scan" + suffix)
            if working.quick_reject(now, job.request):
                self.stats["backfill_quick_rejects"] += 1
                alloc = None
            else:
                alloc = working.fits_at(now, job.walltime, job.request)
            molded = False
            if alloc is None and job.moldable_floor < job.request.total_cores:
                alloc = self._mold_to_fit(working, job, now)
                if alloc is not None:
                    molded = True
                    self.stats["jobs_molded"] += 1
                    self.trace.record(
                        now,
                        EventKind.MOLDABLE_START,
                        job_id=job.job_id,
                        user=job.user,
                        requested=job.request.total_cores,
                        granted=alloc.total_cores,
                        floor=job.moldable_floor,
                    )
            if prof is not None:
                prof.end()
            if alloc is not None:
                if spanning:
                    for part_sid, part in shard_map.split_allocation(alloc).items():
                        workings[part_sid].add_claim(now, now + job.walltime, part)
                else:
                    working.add_claim(now, now + job.walltime, alloc)
                if ledger is not None:
                    ledger.note_start(
                        job,
                        now,
                        backfilled=passed_blocked,
                        molded=molded,
                        cores=alloc.total_cores,
                        fingerprint=fingerprint,
                        jumped=blocked_ids if passed_blocked else None,
                        hole_until=self._next_reservation_start,
                        shard=sid if multi else None,
                    )
                self.server.start_job(job, alloc, backfilled=passed_blocked)
                self._route_assign.pop(job.job_id, None)
                if passed_blocked:
                    self.stats["jobs_backfilled"] += 1
                    backfilled += 1
                else:
                    self.stats["jobs_started"] += 1
                    started += 1
                continue
            # blocked: reserve if within depth, then maybe stop the pass.
            # Reservation depth is per shard; a spanning job counts against
            # every shard (equivalent to the single global counter at one
            # shard).
            under_depth = (
                all(count < depth for count in res_counts.values())
                if spanning
                else res_counts[sid] < depth
            )
            if under_depth:
                if prof is not None:
                    prof.begin("reservation_plan" + suffix)
                try:
                    try:
                        if prof is not None:
                            prof.begin("earliest_fit" + suffix)
                        try:
                            if not working.can_ever_fit(job.request):
                                raise NoFitError(
                                    f"{job.request} never fits "
                                    "(cluster too small or fragmented)"
                                )
                            start, res_alloc = working.earliest_fit(
                                job.request,
                                job.walltime,
                                after=now,
                                probe_start=False,
                            )
                        finally:
                            if prof is not None:
                                prof.end()
                    except NoFitError:
                        if outcome is not None:
                            outcome[job.job_id] = (
                                "queued_behind",
                                "request can never fit",
                            )
                        continue  # oversized for this view; skip
                    if spanning:
                        for part_sid, part in shard_map.split_allocation(
                            res_alloc
                        ).items():
                            workings[part_sid].add_claim(
                                start, start + job.walltime, part
                            )
                        for shard in shards:
                            res_counts[shard.index] += 1
                    else:
                        working.add_claim(start, start + job.walltime, res_alloc)
                        res_counts[sid] += 1
                        cur = shard_min_res[sid]
                        if cur is None or start < cur:
                            shard_min_res[sid] = start
                    if (
                        self._next_reservation_start is None
                        or start < self._next_reservation_start
                    ):
                        self._next_reservation_start = start
                    self.stats["reservations_created"] += 1
                    self.trace.record(
                        now,
                        EventKind.RESERVATION_CREATE,
                        job_id=job.job_id,
                        start=start,
                        cores=res_alloc.total_cores,
                    )
                    if ledger is not None:
                        waiting_on = [
                            j.job_id
                            for j in self.server.active_jobs()
                            if j.walltime_end <= start + 1e-9
                        ] + [jid for jid, s in reserved_ahead if s <= start + 1e-9]
                        ledger.note_reservation(
                            job, now, start, res_alloc.total_cores,
                            waiting_on, fingerprint,
                            shard=sid if multi else None,
                        )
                        reserved_ahead.append((job.job_id, start))
                        if outcome is not None:
                            outcome[job.job_id] = (
                                "reservation_held",
                                f"reserved at t={start:.1f}",
                            )
                finally:
                    if prof is not None:
                        prof.end()
            elif outcome is not None:
                behind = f"behind {blocked_ids[0]}" if blocked_ids else None
                outcome[job.job_id] = ("queued_behind", behind)
            blocked_ids.append(job.job_id)
            if sid is not None:
                shard_blocked[sid].add(job.job_id)
            passed_blocked = True
            if job.top_priority or not self.config.backfill_enabled or lockdown:
                stopped_at = idx
                break
        if outcome is not None and stopped_at is not None:
            if lockdown:
                reason = "Z-job lockdown"
            elif not self.config.backfill_enabled:
                reason = "backfill disabled"
            else:
                reason = f"blocked top-priority job {ordered[stopped_at].job_id}"
            for job in ordered[stopped_at + 1 :]:
                outcome[job.job_id] = ("backfill_blocked", reason)
        if multi:
            if skip_ok and stopped_at is None:
                for shard in shards:
                    if shard.index in skipped:
                        self.stats["shard_passes_skipped"] += 1
                        continue
                    # pre-walk fingerprint on purpose: a shard that started
                    # anything has bumped its version past it, so the next
                    # pass re-plans (the fixpoint semantics of the echo
                    # wake-up), while an unchanged shard skips
                    self._shard_pass_cache[shard.index] = {
                        "fingerprint": fingerprints[shard.index],
                        "blocked": frozenset(shard_blocked[shard.index]),
                        "min_res_start": shard_min_res[shard.index],
                    }
            else:
                self._shard_pass_cache.clear()
        if prof is not None:
            prof.end()
        return started, backfilled

    def explain(self, job: Job) -> dict:
        """Why is this job where it is?  (Maui's ``checkjob`` equivalent.)

        Returns a dict with the job's state, queue position, current
        priority, planned earliest start from a fresh plan, and — for
        queued jobs — what is holding it back, naming the *specific* gate:
        the hold kind, the dependency target, the throttle limit hit, or
        resources.  With the decision ledger enabled the dict also carries
        the job's causal chain (every recorded decision that touched it)
        and its wait-time attribution so far.  Read-only: no reservation
        or start side effects.
        """
        now = self.engine.now
        info: dict = {
            "job_id": job.job_id,
            "state": job.state.value,
            "priority": None,
            "queue_position": None,
            "planned_start": None,
            "blocked_by": None,
        }
        if job.submit_time is not None:
            info["priority"] = self.prioritizer.priority(job, now)
        if self._ledger is not None:
            info["causal_chain"] = self._ledger.causal_chain(job.job_id)
            info["attribution"] = self._ledger.attribution(job.job_id, upto=now)
        if job.is_active:
            info["planned_start"] = job.start_time
            return info
        if job.is_finished or job.submit_time is None:
            return info
        exclusions: dict[str, tuple[str, str | None]] = {}
        eligible = self._eligible_static(now, exclusions=exclusions)
        if job not in eligible:
            _cause, detail = exclusions.get(job.job_id, (None, None))
            info["blocked_by"] = detail
            return info
        info["queue_position"] = eligible.index(job)
        from repro.maui.reservations import plan_static

        profile = self._build_profile(static_partitions(self.config))
        plan = plan_static(
            eligible, profile, now, depth=max(self.config.plan_depth, len(eligible))
        )
        starts = plan.starts_by_job()
        if job.job_id in starts:
            info["planned_start"] = starts[job.job_id]
            if starts[job.job_id] > now:
                info["blocked_by"] = "resources"
        else:
            info["blocked_by"] = "request can never fit"
        return info

    @staticmethod
    def _mold_to_fit(working, job, now):
        """Largest core count in [moldable_floor, request) fitting right now.

        Feasibility is monotone in the size, so binary search over the
        flexible request.  Returns None when even the floor does not fit.
        """
        from repro.cluster.allocation import ResourceRequest

        lo, hi = job.moldable_floor, job.request.total_cores - 1
        if working.fits_at(now, job.walltime, ResourceRequest(cores=lo)) is None:
            return None
        best = lo
        while lo <= hi:
            mid = (lo + hi + 1) // 2
            if working.fits_at(now, job.walltime, ResourceRequest(cores=mid)) is not None:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return working.fits_at(now, job.walltime, ResourceRequest(cores=best))

    def __repr__(self) -> str:
        return (
            f"<MauiScheduler iterations={self.stats['iterations']} "
            f"granted={self.stats['dyn_granted']} rejected={self.stats['dyn_rejected']}>"
        )
