"""The extended Maui scheduler (paper Algorithms 1 and 2).

One :class:`MauiScheduler` instance attaches to a server and runs a
scheduling iteration whenever job or resource state changes (Maui wake-up
condition (i)), optionally also on a periodic timer.  Each iteration:

1. updates statistics (fairshare usage accrual, DFS interval roll-over);
2. selects and prioritises eligible static jobs and — separately, in FIFO
   order — eligible dynamic requests;
3. for every dynamic request: tries to allocate idle resources (dynamic
   partition first if enabled, preemptible resources last), measures the
   delays a grant would inflict on the planned queue, asks the dynamic
   fairness policies for permission, and grants or rejects;
4. starts static jobs in priority order, creating reservations for the top
   ``ReservationDepth`` blocked jobs;
5. backfills the remaining queue (suspended while an ESP Z-job waits).

With ``dynamic_enabled=False`` the iteration degrades exactly to the
original Algorithm 1 and every dynamic request is rejected — that is the
paper's "Static" baseline configuration.
"""

from __future__ import annotations

import logging
import math

from repro.cluster.allocation import Allocation
from repro.cluster.machine import Cluster
from repro.cluster.profile import AvailabilityProfile, NoFitError
from repro.jobs.job import Job
from repro.jobs.queue import DynRequest
from repro.maui.config import MauiConfig
from repro.maui.delay import measure_delays
from repro.maui.fairness import DFSLedger
from repro.maui.partition import find_dynamic_allocation, static_partitions
from repro.maui.preemption import plan_preemption
from repro.maui.priority import FairshareTracker, Prioritizer
from repro.maui.reservations import StaticPlan, plan_static
from repro.obs.clock import perf_ns as _perf_ns
from repro.rms.server import Server
from repro.sim.engine import Engine, PRIORITY_SCHEDULER
from repro.sim.events import EventKind

__all__ = ["MauiScheduler"]

log = logging.getLogger("repro.maui.scheduler")


class MauiScheduler:
    """Event-driven scheduler daemon."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        server: Server,
        config: MauiConfig | None = None,
        *,
        telemetry=None,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.server = server
        self.config = config if config is not None else MauiConfig()
        self.trace = server.trace
        #: optional :class:`repro.obs.Telemetry` (defaults to the server's)
        self.telemetry = telemetry if telemetry is not None else server.telemetry
        self._obs = None
        #: optional :class:`repro.obs.ledger.DecisionLedger`; None keeps
        #: every ledger hook a single attribute-is-None check (off path)
        self._ledger = None
        #: optional :class:`repro.obs.perf.PhaseProfiler`; same discipline —
        #: every phase hook on the disabled path is one is-None check
        self._prof = None
        if self.telemetry is not None and self.telemetry.enabled:
            from repro.obs.instruments import SchedulerInstruments

            self._obs = SchedulerInstruments(self.telemetry)
            self._ledger = getattr(self.telemetry, "ledger", None)
            self._prof = getattr(self.telemetry, "profiler", None)
        self.fairshare = FairshareTracker(
            self.config.weights.fairshare_interval,
            self.config.weights.fairshare_decay,
            start_time=engine.now,
        )
        self.prioritizer = Prioritizer(self.config.weights, self.fairshare)
        self.dfs = DFSLedger(self.config.dfs, start_time=engine.now)
        self._wake_pending = False
        self._last_stats_time = engine.now
        #: cumulative counters for reports and tests
        self.stats = {
            "iterations": 0,
            "iterations_skipped": 0,
            "dyn_granted": 0,
            "dyn_rejected": 0,
            "dyn_rejected_fairness": 0,
            "dyn_rejected_resources": 0,
            "jobs_started": 0,
            "jobs_backfilled": 0,
            "reservations_created": 0,
            "preemptions": 0,
            "malleable_shrinks": 0,
            "jobs_molded": 0,
            "total_delay_charged": 0.0,
            "dyn_handle_seconds": 0.0,  # wall-clock cost of the dynamic path
            "profile_builds": 0,
            "profile_cache_hits": 0,
            "profile_advances": 0,
            "profile_advance_fallbacks": 0,
            "backfill_quick_rejects": 0,
        }
        #: availability-profile cache: one profile per partition view, valid
        #: for a single (server state, cluster state, sim time) snapshot.
        #: Disable to benchmark the uncached hot path.
        self.profile_cache_enabled = True
        self._profile_cache: dict[tuple[str, ...] | None, AvailabilityProfile] = {}
        self._profile_state: tuple[int, int, float] | None = None
        #: incremental profile maintenance: when the snapshot goes stale,
        #: advance the previous profile to the new time and apply the
        #: claim/release deltas of jobs that started/finished/changed since,
        #: instead of rebuilding the matrix from scratch.  Disable to force
        #: full rebuilds (A/B tests, the equivalence oracle).
        self.profile_incremental_enabled = True
        #: per partition view: the last built profile plus the active-job
        #: footprints ``job_id -> (alloc items inside the view, walltime end)``
        #: it encodes — the diff source for the next advance
        self._profile_bases: dict[
            tuple[str, ...] | None,
            tuple[AvailabilityProfile, dict[str, tuple[tuple, float]]],
        ] = {}
        #: event-driven activation: wake-ups with no state change since the
        #: last full pass are skipped (statistics still accrue).  Disable to
        #: restore unconditional iterations (A/B tests, benchmarks).
        self.iteration_skip_enabled = True
        #: (server.state_version, cluster.version) at the *start* of the
        #: last full iteration — the quiescence fingerprint.  A pass that
        #: changed anything leaves the live counters past this snapshot and
        #: therefore never arms the skip.
        self._last_pass_state: tuple[int, int] | None = None
        #: set by time-anchored wakes (reservation boundaries, maintenance
        #: window edges) whose whole point is that *time*, not state, changed
        self._force_iteration = False
        #: delay-measurement context (profile, eligible ordering, baseline
        #: plan) shared by every dynamic request handled under one state
        self._delay_ctx: tuple | None = None
        #: pending wake at the next reservation boundary (Maui wake-up
        #: condition (ii)); rescheduled every iteration
        self._boundary_wake = None
        self._next_reservation_start: float | None = None
        if self.telemetry is not None:
            # sampled time series: the live replacements for post-hoc
            # trace reconstruction (utilization, depths, ledger levels)
            self.telemetry.add_source(
                "utilization", lambda: cluster.used_cores / cluster.total_cores
            )
            self.telemetry.add_source("busy_cores", lambda: cluster.used_cores)
            self.telemetry.add_source("queue_depth", lambda: len(server.queue))
            self.telemetry.add_source(
                "dyn_queue_depth", lambda: len(server.dyn_queue)
            )
            self.telemetry.add_source(
                "running_jobs", lambda: server.active_count
            )
            self.telemetry.add_source(
                "dfs_ledger_delay",
                lambda: {
                    f"{kind}:{name}": delay
                    for (kind, name), delay in self.dfs.snapshot().items()
                },
            )
        server.on_state_change = self.request_iteration
        server.on_node_event = self.handle_node_event
        if self.config.timer_interval is not None:
            self.engine.after(self.config.timer_interval, self._timer_tick)
        for reservation in self.config.admin_reservations:
            # both edges of a maintenance window are scheduling opportunities;
            # nothing else changes at an edge, so the wake must be forced
            for edge in (reservation.start, reservation.end):
                if edge > engine.now:
                    self.engine.at(edge, self._forced_wake)

    # ------------------------------------------------------------------
    # wake-up machinery
    # ------------------------------------------------------------------
    def request_iteration(self, force: bool = False) -> None:
        """Coalesced wake-up: at most one iteration is queued at a time.

        ``force`` marks wake-ups whose trigger is the passage of simulated
        time itself (reservation boundaries, maintenance-window edges): they
        must run a full iteration even though no state counter moved.
        """
        if force:
            self._force_iteration = True
        if self._wake_pending:
            return
        self._wake_pending = True
        self.engine.at(
            self.engine.now, self._run_iteration, priority=PRIORITY_SCHEDULER
        )

    def _forced_wake(self) -> None:
        self.request_iteration(force=True)

    def handle_node_event(self, node_index: int) -> None:
        """A node failed or recovered: re-plan on the new node set.

        Reservations (and the boundary wake derived from them) were laid
        out on the *old* node set — a reservation planned on a node that
        just died is unservable, and a recovered node may admit an earlier
        start.  Drop the stale boundary wake and force a full iteration so
        plans are rebuilt from the surviving nodes immediately.
        """
        if self._boundary_wake is not None:
            self._boundary_wake.cancel()
            self._boundary_wake = None
        self._next_reservation_start = None
        # the incremental bases were laid out on the old node set; a changed
        # set needs a from-scratch build (the diff only covers allocations)
        self._profile_bases.clear()
        self.request_iteration(force=True)

    def _run_iteration(self) -> None:
        self._wake_pending = False
        force = self._force_iteration
        self._force_iteration = False
        if not force and self._quiescent():
            # Nothing a full pass could act on has changed: same job and
            # cluster state, no pending dynamic requests.  Statistics still
            # accrue (so fairshare sums and DFS interval rolls are
            # bit-identical to unconditional iteration), but profile
            # construction, prioritisation, planning and backfill are all
            # skipped — unless an accounting window rolls right now, which
            # decays usage and can reorder priorities without any version
            # bump, so the pass is no longer a provable no-op.
            fairshare_window = self.fairshare.window_start
            dfs_window = self.dfs.interval_start
            self._update_statistics(self.engine.now)
            if (
                self.fairshare.window_start == fairshare_window
                and self.dfs.interval_start == dfs_window
            ):
                self.stats["iterations_skipped"] += 1
                if self._obs is not None:
                    self._obs.note_skip(self.stats["iterations_skipped"])
                log.debug(
                    "iteration skipped t=%.1f (state unchanged)", self.engine.now
                )
                return
        self.iteration()

    def _quiescent(self) -> bool:
        """No schedulable change since the last full pass?

        Conservative on purpose: any pending dynamic request (including
        negotiated requests awaiting fresh availability estimates) forces a
        full iteration, as does any bump of either monotone version counter.
        Time-only effects — a planned reservation becoming startable, a
        maintenance window opening — arrive as *forced* wakes and never
        reach this check.
        """
        return (
            self.iteration_skip_enabled
            and self._last_pass_state is not None
            and not self.server.dyn_queue
            and self._last_pass_state
            == (self.server.state_version, self.cluster.version)
        )

    def _timer_tick(self) -> None:
        self.request_iteration()
        self.engine.after(self.config.timer_interval, self._timer_tick)

    # ------------------------------------------------------------------
    # profile construction
    # ------------------------------------------------------------------
    def _build_profile(
        self, partitions: tuple[str, ...] | None
    ) -> AvailabilityProfile:
        """Current + future availability over the given partitions (cached).

        Profiles are pure functions of (server state, cluster allocation
        state, simulation time); both state counters are monotone, so a
        three-way snapshot comparison detects staleness in O(1).  A cache
        hit hands out a :meth:`~AvailabilityProfile.copy` because every
        caller mutates its working profile with hypothetical claims.
        """
        prof = self._prof
        if prof is None:
            return self._build_profile_cached(partitions)
        prof.begin("profile_build")
        try:
            return self._build_profile_cached(partitions)
        finally:
            prof.end()

    def _build_profile_cached(
        self, partitions: tuple[str, ...] | None
    ) -> AvailabilityProfile:
        if not self.profile_cache_enabled:
            self.stats["profile_builds"] += 1
            return self._build_profile_uncached(partitions)
        state = (self.server.state_version, self.cluster.version, self.engine.now)
        if state != self._profile_state:
            self._profile_state = state
            self._profile_cache.clear()
        cached = self._profile_cache.get(partitions)
        if cached is not None:
            self.stats["profile_cache_hits"] += 1
            return cached.copy()
        profile = self._advance_profile(partitions)
        if profile is None:
            self.stats["profile_builds"] += 1
            profile = self._build_profile_uncached(partitions)
            if self._incremental_usable():
                self._profile_bases[partitions] = (
                    profile, self._active_footprints(set(profile._nodes))
                )
        else:
            self.stats["profile_advances"] += 1
        self._profile_cache[partitions] = profile
        return profile.copy()

    def _incremental_usable(self) -> bool:
        # admin reservations interact with running jobs non-locally (a
        # reservation claim skipped because drained cores were busy must be
        # retried when those jobs finish) — keep those configs on the
        # always-rebuild path
        return self.profile_incremental_enabled and not self.config.admin_reservations

    def _active_footprints(
        self, nodes: set[int]
    ) -> dict[str, tuple[tuple, float]]:
        """What each active job contributes to a profile over ``nodes``."""
        snap: dict[str, tuple[tuple, float]] = {}
        for job in self.server.active_jobs():
            assert job.allocation is not None
            inside = tuple(
                sorted((n, c) for n, c in job.allocation.items() if n in nodes)
            )
            if inside:
                snap[job.job_id] = (inside, job.walltime_end)
        return snap

    def _advance_profile(
        self, partitions: tuple[str, ...] | None
    ) -> AvailabilityProfile | None:
        """Bring the cached base profile up to date by claim/release deltas.

        The base encodes "free cores now + future releases of these active
        jobs" as of the previous snapshot.  Advancing clips the timeline to
        the current sim time, then per job that departed (or changed shape/
        walltime) cancels its scheduled future release and frees its cores
        now, and per job that arrived claims its window — O(changed jobs)
        slice updates instead of an O(active jobs) rebuild.  Departed jobs
        can leave *neutral* breakpoints behind (equal adjacent rows); those
        never change the step function, window minima, or the earliest
        feasible start, so every query stays bit-identical to a from-scratch
        build (pinned by ``tests/test_profile_equivalence.py``).

        Returns None (caller rebuilds) when incremental maintenance is off,
        no base exists, or the post-advance free vector fails to reconcile
        with the cluster — the self-check that keeps this path safe.
        """
        if not self._incremental_usable():
            return None
        base = self._profile_bases.get(partitions)
        if base is None:
            return None
        profile, old_snap = base
        now = self.engine.now
        new_snap = self._active_footprints(set(profile._nodes))
        try:
            profile.advance_to(now)
            for job_id, (footprint, wt_end) in old_snap.items():
                if new_snap.get(job_id) == (footprint, wt_end):
                    continue
                if wt_end <= now:
                    # the scheduled release is already fully in effect
                    continue
                alloc = Allocation(dict(footprint))
                # cancel the future release first, then free the cores now —
                # this order keeps both atomic checks satisfied
                profile.add_claim(wt_end, math.inf, alloc)
                profile.add_release(now, alloc)
            for job_id, entry in new_snap.items():
                if old_snap.get(job_id) == entry:
                    continue
                footprint, wt_end = entry
                profile.add_claim(now, wt_end, Allocation(dict(footprint)))
        except ValueError:
            self._profile_bases.pop(partitions, None)
            self.stats["profile_advance_fallbacks"] += 1
            return None
        # reconcile: free cores at `now` must equal the cluster's — the
        # invariant every from-scratch build satisfies by construction
        free = self.cluster.free_by_node(partitions=partitions)
        if profile.free_at(now) != free or set(free) != set(profile._nodes):
            self._profile_bases.pop(partitions, None)
            self.stats["profile_advance_fallbacks"] += 1
            return None
        self._profile_bases[partitions] = (profile, new_snap)
        return profile

    def _build_profile_uncached(
        self, partitions: tuple[str, ...] | None
    ) -> AvailabilityProfile:
        """Current + future availability over the given partitions.

        Running jobs release their full (possibly expanded) allocation at
        their walltime end — the scheduler plans with walltimes, not with
        the actual completion times it cannot know.
        """
        now = self.engine.now
        free = self.cluster.free_by_node(partitions=partitions)
        capacity = {
            n.index: n.cores for n in self.cluster.nodes if n.index in free
        }
        profile = AvailabilityProfile(sorted(free), free, now, capacity)
        for job in self.server.active_jobs():
            assert job.allocation is not None
            assert job.walltime_end > now, f"{job.job_id} past walltime yet active"
            inside = {n: c for n, c in job.allocation.items() if n in free}
            if inside:
                profile.add_release(job.walltime_end, Allocation(inside))
        for reservation in self.config.admin_reservations:
            if reservation.end <= now:
                continue
            inside = {
                n: c for n, c in reservation.cores_by_node.items() if n in free
            }
            if not inside:
                continue
            try:
                profile.add_claim(
                    max(reservation.start, now), reservation.end, Allocation(inside)
                )
            except ValueError:
                # the reserved cores are (partly) occupied by running jobs:
                # the operator drains them; the profile already shows them
                # busy until those jobs' walltime ends
                pass
        return profile

    # ------------------------------------------------------------------
    # the iteration
    # ------------------------------------------------------------------
    def iteration(self) -> None:
        """One full scheduling cycle (Algorithm 2; Algorithm 1 if static)."""
        obs = self._obs
        if obs is not None:
            wall_start_ns = _perf_ns()
            events_before = self.trace.total_recorded
        now = self.engine.now
        prof = self._prof
        if prof is not None:
            prof.begin("sched_iteration", sim_time=now)
        self.stats["iterations"] += 1
        # fingerprint taken *before* the pass: an iteration that starts,
        # grants or preempts anything bumps the version counters past this
        # snapshot, so the echo wake-up it triggers re-runs a full pass
        # (a fresh start moves where blocked jobs' reservations land, which
        # can unlock further backfill — the fixpoint semantics of the
        # original always-iterate loop).  Only a pass that changed nothing
        # arms the skip, and re-running a provable no-op is safe.
        self._last_pass_state = (self.server.state_version, self.cluster.version)
        self._update_statistics(now)

        if self.server.dyn_queue:
            if self.config.dynamic_enabled:
                self._process_dynamic_requests(now)
            else:
                for dreq in list(self.server.dyn_queue):
                    self._reject(dreq, "dynamic allocation disabled", kind="resources")

        ledger = self._ledger
        exclusions: dict[str, tuple[str, str | None]] | None = (
            {} if ledger is not None else None
        )
        if prof is not None:
            prof.begin("prioritize")
        ordered = self._eligible_static(now, exclusions=exclusions)
        if prof is not None:
            prof.end()
        lockdown = self.server.queue.has_top_priority_job
        outcome: dict[str, tuple[str, str | None]] | None = (
            {} if ledger is not None else None
        )
        started, backfilled = self._start_static(ordered, now, lockdown, outcome=outcome)
        if prof is not None:
            prof.begin("wrap_up")
        if ledger is not None:
            # every still-queued job is classified exactly once per pass:
            # excluded (hold/dependency/throttle) or examined by the start
            # pass (reserved, plain queued, or blocked from backfilling)
            exclusions.update(outcome)
            ledger.observe_queue(now, exclusions)
        self._schedule_boundary_wake()

        self.trace.record(
            now,
            EventKind.SCHED_ITERATION,
            queued=len(self.server.queue),
            dynqueued=len(self.server.dyn_queue),
            started=started,
            backfilled=backfilled,
            lockdown=lockdown,
        )
        log.debug(
            "iteration t=%.1f queued=%d started=%d backfilled=%d",
            now, len(self.server.queue), started, backfilled,
        )
        if prof is not None:
            prof.end()
            prof.end()
        if obs is not None:
            obs.sync_stats(self.stats)
            obs.sync_ledger(self.dfs.snapshot())
            obs.end_iteration(
                now,
                _perf_ns() - wall_start_ns,
                self.trace.total_recorded - events_before,
            )

    def _eligible_static(
        self,
        now: float,
        exclusions: dict[str, tuple[str, str | None]] | None = None,
    ) -> list[Job]:
        """Queued jobs eligible for priority scheduling (Algorithm step 6).

        Three gates, all part of Maui's "minimum scheduling criterion":

        * holds — a held job stays queued but frozen until released;
        * dependencies — unmet dependencies keep the job queued but
          invisible to the planner; a failed ``afterok`` cancels it;
        * throttling — at most ``max_eligible_jobs_per_user`` queued jobs
          per user are considered, and a user at the
          ``max_running_jobs_per_user`` cap contributes no more eligible
          jobs than the cap leaves headroom for.

        ``exclusions`` (diagnostics/ledger only) collects
        ``job_id -> (cause, detail)`` for every job a gate filtered out,
        naming the specific hold kind, dependency target or throttle limit.
        """
        eligible: list[Job] = []
        for job in self.server.queue.snapshot():
            if job.hold is not None:
                if exclusions is not None:
                    exclusions[job.job_id] = (f"{job.hold}_held", f"{job.hold} hold")
                continue
            if self.server.dependency_failed(job):
                self.server.cancel_queued(job, reason="dependency failed")
                continue
            if self.server.dependency_satisfied(job):
                eligible.append(job)
            elif exclusions is not None:
                exclusions[job.job_id] = (
                    "dependency_held",
                    f"dependency on {job.depends_on}",
                )
        ordered = self.prioritizer.order(eligible, now)
        max_running = self.config.max_running_jobs_per_user
        max_eligible = self.config.max_eligible_jobs_per_user
        if max_running is None and max_eligible is None:
            return ordered
        running_count: dict[str, int] = {}
        for job in self.server.active_jobs():
            running_count[job.user] = running_count.get(job.user, 0) + 1
        taken: dict[str, int] = {}
        throttled: list[Job] = []
        for job in ordered:
            user_taken = taken.get(job.user, 0)
            if max_eligible is not None and user_taken >= max_eligible:
                if exclusions is not None:
                    exclusions[job.job_id] = (
                        "throttled",
                        f"throttled by max_eligible_jobs_per_user={max_eligible}",
                    )
                continue
            if max_running is not None:
                headroom = max_running - running_count.get(job.user, 0)
                if user_taken >= headroom:
                    if exclusions is not None:
                        exclusions[job.job_id] = (
                            "throttled",
                            f"throttled by max_running_jobs_per_user={max_running}",
                        )
                    continue
            taken[job.user] = user_taken + 1
            throttled.append(job)
        return throttled

    def _schedule_boundary_wake(self) -> None:
        """Wake at the earliest planned reservation start (condition (ii)).

        Normally job completions wake the scheduler in time to honour its
        reservations, but a reservation can begin at a boundary with no
        completion event — e.g. the end of a maintenance window.  One pending
        wake at the earliest future reservation start covers every such case.
        """
        if self._boundary_wake is not None:
            self._boundary_wake.cancel()
            self._boundary_wake = None
        if self._next_reservation_start is not None and (
            self._next_reservation_start > self.engine.now
        ):
            self._boundary_wake = self.engine.at(
                self._next_reservation_start, self._boundary_fire
            )

    def _boundary_fire(self) -> None:
        self._boundary_wake = None
        self.request_iteration(force=True)

    def _update_statistics(self, now: float) -> None:
        """Maui iteration step 4: accrue usage, roll accounting windows.

        Usage is accrued per job over its overlap with the window since the
        previous iteration — including jobs that finished *within* the
        window, whose final segment would otherwise never be charged.  The
        core count used is the job's latest allocation width (expansions are
        charged at full width from the window start; a second-order
        approximation that errs against the expanding user).
        """
        prof = self._prof
        if prof is not None:
            prof.begin("fairshare_update", sim_time=now)
        last = self._last_stats_time
        if now > last:
            # Only running jobs plus those that finished since the previous
            # accrual window can overlap [last, now] — O(active) instead of
            # O(all jobs ever submitted).  Sorting by submission order keeps
            # the per-user floating-point sums bit-identical to the historic
            # full scan (which walked the submission-ordered job dict).
            chargeable = self.server.active_jobs()
            chargeable += self.server.drain_finished_for_stats()
            chargeable.sort(key=lambda j: j.seq)
            for job in chargeable:
                if job.start_time is None or job.allocation is None:
                    continue
                seg_start = max(last, job.start_time)
                seg_end = now if job.end_time is None else min(now, job.end_time)
                if seg_end > seg_start:
                    self.fairshare.add_usage(
                        job.user, job.allocation.total_cores * (seg_end - seg_start)
                    )
        self._last_stats_time = now
        self.fairshare.roll(now)
        if self.dfs.roll(now):
            self.trace.record(
                now, EventKind.DFS_INTERVAL_ROLL, interval_start=self.dfs.interval_start
            )
        if prof is not None:
            prof.end()

    # ------------------------------------------------------------------
    # dynamic requests (Algorithm 2 lines 11-24)
    # ------------------------------------------------------------------
    def _ordered_dynamic_requests(self) -> list[DynRequest]:
        """Pending dynamic requests in the configured service order."""
        pending = list(self.server.dyn_queue)
        order = self.config.dynamic_request_order
        if order == "fairshare":
            pending.sort(
                key=lambda d: (self.fairshare.usage(d.job.user), d.submit_time, d.job.seq)
            )
        elif order == "smallest_first":
            pending.sort(
                key=lambda d: (d.request.total_cores, d.submit_time, d.job.seq)
            )
        return pending

    def _delay_context(
        self, now: float
    ) -> tuple[AvailabilityProfile, list[Job], set[int], StaticPlan | None]:
        """Shared inputs for delay measurement, reused while state holds.

        The availability profile, the eligible static ordering, the
        static-partition node set and — crucially — the *baseline* priority
        plan are all pure functions of ``(server state, cluster state,
        now)``.  Consecutive dynamic requests resolved without a grant,
        preemption or shrink therefore reuse one baseline plan instead of
        re-planning the queue prefix from a fresh profile copy per request;
        any mutation bumps a version counter and rebuilds the context.
        """
        key = (self.server.state_version, self.cluster.version, now)
        ctx = self._delay_ctx
        if ctx is None or ctx[0] != key:
            prof = self._prof
            if prof is not None:
                prof.begin("delay_context")
            partitions = static_partitions(self.config)
            profile = self._build_profile(partitions)
            ordered = self._eligible_static(now)
            profile_nodes = set(self.cluster.free_by_node(partitions=partitions))
            baseline = (
                plan_static(ordered, profile.copy(), now, self.config.plan_depth)
                if ordered
                else None
            )
            ctx = (key, profile, ordered, profile_nodes, baseline)
            self._delay_ctx = ctx
            if prof is not None:
                prof.end()
        return ctx[1], ctx[2], ctx[3], ctx[4]

    def _process_dynamic_requests(self, now: float) -> None:
        obs = self._obs
        prof = self._prof
        if prof is not None:
            prof.begin("dyn_requests")
        for dreq in self._ordered_dynamic_requests():
            wall_start_ns = _perf_ns()
            events_before = self.trace.total_recorded if obs is not None else 0
            try:
                self._handle_dynamic_request(dreq, now)
            finally:
                wall_ns = _perf_ns() - wall_start_ns
                self.stats["dyn_handle_seconds"] += wall_ns / 1e9
                if obs is not None:
                    obs.end_dyn_handle(
                        now, wall_ns, self.trace.total_recorded - events_before
                    )
        if prof is not None:
            prof.end()

    def _handle_dynamic_request(self, dreq: DynRequest, now: float) -> None:
        if dreq.is_extension:
            self._handle_extension_request(dreq, now)
            return
        job = dreq.job
        assert job.start_time is not None
        claim_end = job.walltime_end
        if claim_end <= now:
            self._reject(dreq, "no walltime remaining", kind="resources")
            return
        blocked_nodes = self._admin_blocked_nodes(now, claim_end)
        alloc = find_dynamic_allocation(
            self.cluster, dreq.request, self.config, exclude_nodes=blocked_nodes
        )
        if alloc is None and self.config.malleable_steal_for_dynamic:
            alloc = self._steal_from_malleable(dreq)
        preempt_victims: list[Job] = []
        if alloc is None and self.config.preemption_for_dynamic:
            plan = plan_preemption(
                self.cluster, dreq.request, self.server.active_jobs()
            )
            if plan is None:
                self._deny(dreq, "insufficient resources", kind="resources", now=now)
                return
            preempt_victims = plan
        elif alloc is None:
            self._deny(dreq, "insufficient resources", kind="resources", now=now)
            return

        if preempt_victims:
            # Preemption reclaims opportunistic backfill, governed by Maui's
            # own preemption policy rather than DFS (which protects *queued*
            # jobs); the victims rejoin the queue and benefit from DFS there.
            for victim in preempt_victims:
                if self._ledger is not None:
                    self._ledger.note_preemption(
                        victim, dreq.job, now,
                        victim.allocation.total_cores if victim.allocation else 0,
                    )
                self.server.preempt_job(victim)
                self.stats["preemptions"] += 1
            alloc = find_dynamic_allocation(self.cluster, dreq.request, self.config)
            assert alloc is not None, "preemption plan did not free enough"
            self._grant(
                dreq, alloc, victims=[], charged=0.0,
                reason="preempted backfill",
                preempted=[v.job_id for v in preempt_victims],
            )
            return

        # measure delays against the queue as planned on the static partitions
        profile, ordered, profile_nodes, baseline = self._delay_context(now)
        claim_inside = Allocation(
            {n: c for n, c in alloc.items() if n in profile_nodes}
        )
        if claim_inside.is_empty:
            victims = []
        else:
            prof = self._prof
            if prof is not None:
                prof.begin("delay_measure")
            victims = measure_delays(
                ordered, profile, claim_inside, claim_end, now,
                self.config.plan_depth, baseline=baseline,
            )
            if prof is not None:
                prof.end()
        decision = self.dfs.evaluate(victims, job.user, now)
        if decision:
            charged = self.dfs.commit(victims, job.user)
            self._grant(
                dreq, alloc, victims=victims, charged=charged,
                reason=decision.reason,
            )
        else:
            self._deny(
                dreq, decision.reason, kind="fairness", now=now, victims=victims
            )

    def _steal_from_malleable(self, dreq: DynRequest) -> Allocation | None:
        """Shrink running malleable jobs until the request fits (or give up).

        Only flexible (``procs=N``) requests are served this way — a shaped
        request needs whole nodes, which piecemeal shrinking cannot promise.
        Jobs shrink latest-started-first so long-running malleable jobs keep
        their width longest.
        """
        if dreq.request.is_shaped:
            return None
        from repro.jobs.job import JobFlexibility

        candidates = [
            j
            for j in self.server.active_jobs()
            if j.flexibility is JobFlexibility.MALLEABLE and j is not dreq.job
        ]
        candidates.sort(key=lambda j: (-(j.start_time or 0.0), j.seq))
        partitions = static_partitions(self.config)
        for job in candidates:
            deficit = dreq.request.cores - sum(
                self.cluster.free_by_node(partitions=partitions).values()
            )
            if deficit <= 0:
                break
            released = self.server.request_shrink(job, deficit)
            if released:
                self.stats["malleable_shrinks"] += 1
        return find_dynamic_allocation(self.cluster, dreq.request, self.config)

    def _admin_blocked_nodes(self, start: float, end: float) -> set[int]:
        """Nodes with an admin reservation overlapping ``[start, end)``.

        A dynamic grant holds until the evolving job's walltime end, so a
        grant on these nodes would collide with the maintenance window.
        """
        blocked: set[int] = set()
        for reservation in self.config.admin_reservations:
            if reservation.overlaps(start, end):
                blocked.update(reservation.cores_by_node)
        return blocked

    def _handle_extension_request(self, dreq: DynRequest, now: float) -> None:
        """Walltime extension: the job keeps its own cores for longer.

        The hypothetical reservation is the job's current allocation over
        ``[old walltime end, new walltime end)`` — resources are trivially
        "available" (the job already holds them); only fairness can refuse.
        """
        job = dreq.job
        assert job.start_time is not None and job.allocation is not None
        assert dreq.extend_walltime is not None
        old_end = job.walltime_end
        new_end = old_end + dreq.extend_walltime
        profile, ordered, profile_nodes, baseline = self._delay_context(now)
        claim_inside = Allocation(
            {n: c for n, c in job.allocation.items() if n in profile_nodes}
        )
        if claim_inside.is_empty:
            victims = []
        else:
            prof = self._prof
            if prof is not None:
                prof.begin("delay_measure")
            victims = measure_delays(
                ordered,
                profile,
                claim_inside,
                new_end,
                now,
                self.config.plan_depth,
                claim_start=old_end,
                baseline=baseline,
            )
            if prof is not None:
                prof.end()
        decision = self.dfs.evaluate(victims, job.user, now)
        if decision:
            charged = self.dfs.commit(victims, job.user)
            self.stats["dyn_granted"] += 1
            self.stats["total_delay_charged"] += charged
            if self._ledger is not None:
                self._ledger.note_dyn_grant(
                    dreq, now, cores=0, victims=victims, charged=charged,
                    policy=self.config.dfs.policy.value, reason=decision.reason,
                    fingerprint=self._fingerprint(now),
                    extension=dreq.extend_walltime,
                )
            self.server.grant_walltime_extension(dreq)
        else:
            self.trace.record(
                now,
                EventKind.WALLTIME_EXTENSION_DENY,
                job_id=job.job_id,
                user=job.user,
                extension=dreq.extend_walltime,
                reason=decision.reason,
            )
            self._reject(dreq, decision.reason, kind="fairness", victims=victims)

    def _fingerprint(self, now: float) -> tuple[int, int, float]:
        """Availability-profile state fingerprint: the cache key identifying
        the exact ``(server state, cluster state, time)`` snapshot a verdict's
        profile was built from (see :meth:`_build_profile`)."""
        return (self.server.state_version, self.cluster.version, now)

    def _grant(
        self,
        dreq,
        alloc,
        *,
        victims,
        charged: float,
        reason: str = "",
        preempted: list[str] | None = None,
    ) -> None:
        if self._ledger is not None:
            self._ledger.note_dyn_grant(
                dreq, self.engine.now, cores=alloc.total_cores, victims=victims,
                charged=charged, policy=self.config.dfs.policy.value,
                reason=reason, fingerprint=self._fingerprint(self.engine.now),
                preempted=preempted,
            )
        self.stats["dyn_granted"] += 1
        self.stats["total_delay_charged"] += charged
        self.server.grant_dynamic(dreq, alloc)

    def _reject(self, dreq, reason: str, *, kind: str, victims=()) -> None:
        if self._ledger is not None:
            self._ledger.note_dyn_deny(
                dreq, self.engine.now, reason=reason, deny_kind=kind,
                victims=victims, policy=self.config.dfs.policy.value,
                fingerprint=self._fingerprint(self.engine.now),
            )
        self.stats["dyn_rejected"] += 1
        self.stats[f"dyn_rejected_{kind}"] += 1
        self.server.reject_dynamic(dreq, reason)

    def _deny(
        self,
        dreq: DynRequest,
        reason: str,
        *,
        kind: str,
        now: float,
        victims=(),
    ) -> None:
        """Reject — or, for a live negotiated request, defer with an estimate.

        Negotiated requests (Section III-C outlook) stay in the dynamic
        queue until their deadline; each denied attempt publishes the
        scheduler's current earliest-availability estimate so the
        application can plan around it.
        """
        if not dreq.negotiated or now >= (dreq.deadline or now):
            self._reject(dreq, reason, kind=kind, victims=victims)
            return
        profile = self._build_profile(None)
        try:
            available_at, _alloc = profile.earliest_fit(dreq.request, 1.0, after=now)
        except NoFitError:
            self._reject(
                dreq, f"{reason}; request can never fit", kind=kind, victims=victims
            )
            return
        if self._ledger is not None:
            self._ledger.note_dyn_defer(dreq, now, estimate=available_at)
        dreq.publish_estimate(available_at)

    # ------------------------------------------------------------------
    # static starts, reservations, backfill (Algorithm 2 lines 25-26)
    # ------------------------------------------------------------------
    def _start_static(
        self,
        ordered: list[Job],
        now: float,
        lockdown: bool,
        outcome: dict[str, tuple[str, str | None]] | None = None,
    ) -> tuple[int, int]:
        """Start jobs in priority order; reserve for the top blocked jobs.

        ``ReservationDepth`` bounds how many *blocked* jobs receive future
        reservations — it never prevents a fitting job from starting.  Jobs
        that start after any higher-priority job was passed over run out of
        order and are therefore marked (and counted) as backfill; with
        backfill disabled the pass stops at the first blocked job instead
        (strict priority order).  Returns (priority starts, backfill starts).

        ``outcome`` (ledger only) collects ``job_id -> (cause, detail)`` for
        every examined-but-not-started job plus everything left unexamined
        when the pass stops early.
        """
        prof = self._prof
        if prof is not None:
            prof.begin("static_pass")
        partitions = static_partitions(self.config)
        working = self._build_profile(partitions)
        ledger = self._ledger
        fingerprint = self._fingerprint(now)
        blocked_ids: list[str] = []
        reserved_ahead: list[tuple[str, float]] = []
        reservations = 0
        started = 0
        backfilled = 0
        passed_blocked = False
        stopped_at: int | None = None
        self._next_reservation_start = None
        for idx, job in enumerate(ordered):
            if prof is not None:
                prof.begin("backfill_scan")
            # instantaneous-free prune: on a packed cluster most candidates
            # fail against the free vector at `now` alone, skipping the
            # window scan (a pure short-circuit — fits_at would return None)
            if working.quick_reject(now, job.request):
                self.stats["backfill_quick_rejects"] += 1
                alloc = None
            else:
                alloc = working.fits_at(now, job.walltime, job.request)
            molded = False
            if alloc is None and job.moldable_floor < job.request.total_cores:
                # moldable job: start now on the largest fitting size within
                # [min_cores, request) rather than wait for the full request
                alloc = self._mold_to_fit(working, job, now)
                if alloc is not None:
                    molded = True
                    self.stats["jobs_molded"] += 1
                    self.trace.record(
                        now,
                        EventKind.MOLDABLE_START,
                        job_id=job.job_id,
                        user=job.user,
                        requested=job.request.total_cores,
                        granted=alloc.total_cores,
                        floor=job.moldable_floor,
                    )
            if prof is not None:
                prof.end()
            if alloc is not None:
                working.add_claim(now, now + job.walltime, alloc)
                if ledger is not None:
                    ledger.note_start(
                        job,
                        now,
                        backfilled=passed_blocked,
                        molded=molded,
                        cores=alloc.total_cores,
                        fingerprint=fingerprint,
                        jumped=blocked_ids if passed_blocked else None,
                        hole_until=self._next_reservation_start,
                    )
                # a start while a higher-priority job waits is out-of-order
                # execution, i.e. backfill in Maui's terms
                self.server.start_job(job, alloc, backfilled=passed_blocked)
                if passed_blocked:
                    self.stats["jobs_backfilled"] += 1
                    backfilled += 1
                else:
                    self.stats["jobs_started"] += 1
                    started += 1
                continue
            # blocked: reserve if within depth, then maybe stop the pass
            if reservations < self.config.reservation_depth:
                if prof is not None:
                    prof.begin("reservation_plan")
                try:
                    try:
                        if prof is not None:
                            prof.begin("earliest_fit")
                        try:
                            # oversized requests fail every candidate window;
                            # one vectorized sweep proves it without the scan
                            if not working.can_ever_fit(job.request):
                                raise NoFitError(
                                    f"{job.request} never fits "
                                    "(cluster too small or fragmented)"
                                )
                            # probe_start=False: this job just failed to
                            # start at `now` against this very profile, so
                            # the window query at the bound is already known
                            # to fail
                            start, res_alloc = working.earliest_fit(
                                job.request,
                                job.walltime,
                                after=now,
                                probe_start=False,
                            )
                        finally:
                            if prof is not None:
                                prof.end()
                    except NoFitError:
                        if outcome is not None:
                            outcome[job.job_id] = (
                                "queued_behind",
                                "request can never fit",
                            )
                        continue  # oversized for this partition view; skip
                    working.add_claim(start, start + job.walltime, res_alloc)
                    reservations += 1
                    if (
                        self._next_reservation_start is None
                        or start < self._next_reservation_start
                    ):
                        self._next_reservation_start = start
                    self.stats["reservations_created"] += 1
                    self.trace.record(
                        now,
                        EventKind.RESERVATION_CREATE,
                        job_id=job.job_id,
                        start=start,
                        cores=res_alloc.total_cores,
                    )
                    if ledger is not None:
                        # what is the reservation waiting on: running jobs
                        # that release by its start, plus earlier
                        # reservations due to start before it
                        waiting_on = [
                            j.job_id
                            for j in self.server.active_jobs()
                            if j.walltime_end <= start + 1e-9
                        ] + [jid for jid, s in reserved_ahead if s <= start + 1e-9]
                        ledger.note_reservation(
                            job, now, start, res_alloc.total_cores,
                            waiting_on, fingerprint,
                        )
                        reserved_ahead.append((job.job_id, start))
                        if outcome is not None:
                            outcome[job.job_id] = (
                                "reservation_held",
                                f"reserved at t={start:.1f}",
                            )
                finally:
                    if prof is not None:
                        prof.end()
            elif outcome is not None:
                behind = f"behind {blocked_ids[0]}" if blocked_ids else None
                outcome[job.job_id] = ("queued_behind", behind)
            blocked_ids.append(job.job_id)
            passed_blocked = True
            if job.top_priority or not self.config.backfill_enabled or lockdown:
                # ESP Z-job lockdown, or strict priority order without
                # backfill: nothing below the blocked job may start
                stopped_at = idx
                break
        if outcome is not None and stopped_at is not None:
            if lockdown:
                reason = "Z-job lockdown"
            elif not self.config.backfill_enabled:
                reason = "backfill disabled"
            else:
                reason = f"blocked top-priority job {ordered[stopped_at].job_id}"
            for job in ordered[stopped_at + 1 :]:
                outcome[job.job_id] = ("backfill_blocked", reason)
        if prof is not None:
            prof.end()
        return started, backfilled

    def explain(self, job: Job) -> dict:
        """Why is this job where it is?  (Maui's ``checkjob`` equivalent.)

        Returns a dict with the job's state, queue position, current
        priority, planned earliest start from a fresh plan, and — for
        queued jobs — what is holding it back, naming the *specific* gate:
        the hold kind, the dependency target, the throttle limit hit, or
        resources.  With the decision ledger enabled the dict also carries
        the job's causal chain (every recorded decision that touched it)
        and its wait-time attribution so far.  Read-only: no reservation
        or start side effects.
        """
        now = self.engine.now
        info: dict = {
            "job_id": job.job_id,
            "state": job.state.value,
            "priority": None,
            "queue_position": None,
            "planned_start": None,
            "blocked_by": None,
        }
        if job.submit_time is not None:
            info["priority"] = self.prioritizer.priority(job, now)
        if self._ledger is not None:
            info["causal_chain"] = self._ledger.causal_chain(job.job_id)
            info["attribution"] = self._ledger.attribution(job.job_id, upto=now)
        if job.is_active:
            info["planned_start"] = job.start_time
            return info
        if job.is_finished or job.submit_time is None:
            return info
        exclusions: dict[str, tuple[str, str | None]] = {}
        eligible = self._eligible_static(now, exclusions=exclusions)
        if job not in eligible:
            _cause, detail = exclusions.get(job.job_id, (None, None))
            info["blocked_by"] = detail
            return info
        info["queue_position"] = eligible.index(job)
        from repro.maui.reservations import plan_static

        profile = self._build_profile(static_partitions(self.config))
        plan = plan_static(
            eligible, profile, now, depth=max(self.config.plan_depth, len(eligible))
        )
        starts = plan.starts_by_job()
        if job.job_id in starts:
            info["planned_start"] = starts[job.job_id]
            if starts[job.job_id] > now:
                info["blocked_by"] = "resources"
        else:
            info["blocked_by"] = "request can never fit"
        return info

    @staticmethod
    def _mold_to_fit(working, job, now):
        """Largest core count in [moldable_floor, request) fitting right now.

        Feasibility is monotone in the size, so binary search over the
        flexible request.  Returns None when even the floor does not fit.
        """
        from repro.cluster.allocation import ResourceRequest

        lo, hi = job.moldable_floor, job.request.total_cores - 1
        if working.fits_at(now, job.walltime, ResourceRequest(cores=lo)) is None:
            return None
        best = lo
        while lo <= hi:
            mid = (lo + hi + 1) // 2
            if working.fits_at(now, job.walltime, ResourceRequest(cores=mid)) is not None:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return working.fits_at(now, job.walltime, ResourceRequest(cores=best))

    def __repr__(self) -> str:
        return (
            f"<MauiScheduler iterations={self.stats['iterations']} "
            f"granted={self.stats['dyn_granted']} rejected={self.stats['dyn_rejected']}>"
        )
