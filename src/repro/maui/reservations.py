"""Priority-pass planning: StartNow/StartLater classification and reservations.

``plan_static`` walks the prioritised queue and, against a working copy of
the availability profile, gives every considered job its earliest possible
start.  Jobs that fit immediately are *StartNow*; blocked jobs receive future
reservations and are *StartLater*.  Planning stops once ``depth`` StartLater
reservations exist (Fig. 5: depth is ``ReservationDepth`` for backfilling and
``max(ReservationDepth, ReservationDelayDepth)`` for delay measurement).

Because claims are applied sequentially in priority order, the first *k*
reservations of a deep plan are identical to a shallower plan's — the
scheduler exploits this to plan once at ``plan_depth`` and reuse the prefix
for backfill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.allocation import Allocation
from repro.cluster.profile import AvailabilityProfile, NoFitError
from repro.jobs.job import Job

__all__ = ["AdminReservation", "PlannedJob", "StaticPlan", "plan_static"]


@dataclass(frozen=True)
class AdminReservation:
    """A standing administrative reservation (maintenance window).

    Maui sites block nodes for maintenance with standing reservations; jobs
    must neither be scheduled nor dynamically expanded onto the reserved
    cores during the window.  Already-running jobs are not killed — the
    operator drains them (policy decision outside the scheduler).
    """

    cores_by_node: dict
    start: float
    end: float
    name: str = "maintenance"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty reservation window [{self.start}, {self.end})")
        if not self.cores_by_node:
            raise ValueError("reservation needs at least one node")
        for node, cores in self.cores_by_node.items():
            if cores <= 0:
                raise ValueError(f"non-positive cores on node {node}")

    def overlaps(self, start: float, end: float) -> bool:
        """Does the window intersect ``[start, end)``?"""
        return self.start < end and start < self.end

    @property
    def allocation(self) -> Allocation:
        return Allocation(self.cores_by_node)


@dataclass(frozen=True, slots=True)
class PlannedJob:
    """One job's planned start within an iteration."""

    job: Job
    start: float
    allocation: Allocation

    @property
    def end(self) -> float:
        return self.start + self.job.walltime


@dataclass
class StaticPlan:
    """Result of the priority pass (before any job is actually started)."""

    now: float
    start_now: list[PlannedJob] = field(default_factory=list)
    start_later: list[PlannedJob] = field(default_factory=list)
    #: jobs whose request can never fit the profile (oversized for the
    #: partition in view); they are skipped, never silently dropped
    unschedulable: list[Job] = field(default_factory=list)
    #: memoised :meth:`starts_by_job` — plans are written once by
    #: ``plan_static`` and then read many times (a cached baseline plan is
    #: consulted by every dynamic request of an iteration)
    _starts: dict[str, float] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def planned(self) -> list[PlannedJob]:
        """All planned jobs in priority order (StartNow and StartLater)."""
        merged = self.start_now + self.start_later
        merged.sort(key=lambda p: (p.start, p.job.submit_time, p.job.seq))
        return merged

    def starts_by_job(self) -> dict[str, float]:
        """job_id → planned start, for delay comparisons (cached)."""
        if self._starts is None:
            self._starts = {
                p.job.job_id: p.start for p in self.start_now + self.start_later
            }
        return self._starts


def plan_static(
    ordered_jobs: list[Job],
    profile: AvailabilityProfile,
    now: float,
    depth: int,
) -> StaticPlan:
    """Plan starts/reservations for the prioritised queue.

    ``profile`` is mutated: each planned job's reservation is claimed into
    it, so pass a copy when the caller needs the original intact.  Jobs past
    the ``depth``-th StartLater reservation are left unplanned (they are the
    backfill candidates).
    """
    plan = StaticPlan(now=now)
    for job in ordered_jobs:
        if len(plan.start_later) >= depth:
            break
        alloc = profile.fits_at(now, job.walltime, job.request)
        if alloc is not None:
            profile.add_claim(now, now + job.walltime, alloc)
            plan.start_now.append(PlannedJob(job, now, alloc))
            continue
        try:
            start, alloc = profile.earliest_fit(job.request, job.walltime, after=now)
        except NoFitError:
            plan.unschedulable.append(job)
            continue
        profile.add_claim(start, start + job.walltime, alloc)
        plan.start_later.append(PlannedJob(job, start, alloc))
    return plan
