"""Process-parallel experiment execution (``repro.exec``).

The paper's headline artifacts are *ensembles* of independent simulations —
configurations × seeds × ablations.  Every run is hermetic (a fresh
:class:`~repro.system.BatchSystem` driven by a seed), so campaigns
parallelise perfectly across processes.  This package provides the one
engine all experiment drivers share:

* :func:`map_specs` — ordered parallel map over picklable run specs with a
  graceful in-process fallback, so ``workers=1`` output is *bit-identical*
  to ``workers=N``;
* :func:`resolve_workers` — the ``--jobs`` contract (``0`` → all CPUs,
  ``< 1`` otherwise rejected);
* :mod:`repro.exec.specs` — the picklable run-spec dataclasses and
  module-level worker functions for the ESP sweep, Table II, random
  campaigns and the scaling bench.
"""

from repro.exec.engine import ExecProgress, map_specs, resolve_workers

__all__ = ["ExecProgress", "map_specs", "resolve_workers"]
