"""The process-pool experiment engine: ordered, deterministic, observable.

Design
------
* **Determinism by construction.**  Workers never share state: each spec is
  simulated in its own process and only the returned value crosses the
  boundary.  Futures are submitted in spec order and results are merged by
  *submission index*, not completion order, so the output list is always
  ``[fn(spec) for spec in specs]`` — bit-identical to the serial loop no
  matter how the OS schedules workers.
* **Serial fallback.**  ``workers=1`` (the default everywhere) runs the same
  worker function in-process: no pool, no pickling, no forked interpreters.
  The parallel path therefore cannot drift from the serial path without a
  test catching it (``tests/test_exec_determinism.py``).
* **Progress through telemetry.**  When a :class:`~repro.obs.Telemetry` (or
  bare :class:`~repro.obs.registry.MetricsRegistry`) is supplied, the parent
  process maintains ``repro_exec_*`` gauges — total/completed/in-flight
  specs, elapsed wall seconds and an ETA extrapolated from the mean
  per-spec cost so far.
"""

from __future__ import annotations

import concurrent.futures
import logging
import os
import time
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["ExecProgress", "map_specs", "resolve_workers"]

log = logging.getLogger("repro.exec.engine")

S = TypeVar("S")
R = TypeVar("R")


def resolve_workers(jobs: int | None) -> int:
    """Normalise a ``--jobs``-style worker count.

    ``None`` means "not requested" and resolves to 1 (serial); ``0`` means
    "use every CPU" (``os.cpu_count()``); anything below 1 otherwise is a
    caller error.
    """
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"workers must be >= 1 (or 0 for all CPUs): {jobs}")
    return int(jobs)


class ExecProgress:
    """Parent-side progress/ETA instruments for one engine invocation.

    All updates happen in the submitting process as futures resolve, so the
    registry never needs cross-process synchronisation.  ``registry`` may be
    a :class:`~repro.obs.registry.MetricsRegistry` or anything exposing one
    as ``.registry`` (a :class:`~repro.obs.Telemetry` facade).
    """

    def __init__(self, registry, label: str, total: int, workers: int) -> None:
        registry = getattr(registry, "registry", registry)
        labels = {"label": label}
        self._total = registry.gauge(
            "repro_exec_specs_total", "run specs in this campaign", labels
        )
        self._completed = registry.gauge(
            "repro_exec_specs_completed", "run specs finished", labels
        )
        self._workers = registry.gauge(
            "repro_exec_workers", "worker processes (1 = in-process)", labels
        )
        self._elapsed = registry.gauge(
            "repro_exec_elapsed_seconds", "wall seconds since campaign start", labels
        )
        self._eta = registry.gauge(
            "repro_exec_eta_seconds", "estimated wall seconds to completion", labels
        )
        self._t0 = time.monotonic()
        self._total.set(total)
        self._completed.set(0)
        self._workers.set(workers)
        self._elapsed.set(0.0)
        self._eta.set(0.0)

    def advance(self) -> None:
        """One spec finished: refresh completed/elapsed/ETA."""
        done = self._completed.value + 1
        self._completed.set(done)
        elapsed = time.monotonic() - self._t0
        self._elapsed.set(elapsed)
        remaining = self._total.value - done
        self._eta.set((elapsed / done) * remaining if done else 0.0)

    @property
    def completed(self) -> int:
        return int(self._completed.value)


def map_specs(
    fn: Callable[[S], R],
    specs: Iterable[S],
    *,
    workers: int = 1,
    telemetry=None,
    label: str = "exec",
) -> list[R]:
    """``[fn(spec) for spec in specs]``, optionally across worker processes.

    ``fn`` must be a module-level callable and each spec picklable when
    ``workers > 1``.  Spec *i* is always submitted *i*-th (deterministic
    seed→worker assignment under any fixed pool size) and results are merged
    back in submission order, so the returned list is independent of worker
    scheduling.  A worker exception propagates to the caller after the pool
    shuts down; remaining futures are cancelled where possible.

    When the pool cannot be created at all (restricted sandboxes without
    fork/spawn), the engine logs a warning and degrades to the serial path
    rather than failing the campaign.
    """
    spec_list: Sequence[S] = list(specs)
    workers = resolve_workers(workers)
    progress = (
        ExecProgress(telemetry, label, len(spec_list), workers)
        if telemetry is not None
        else None
    )
    # phase profiling: the serial path times each spec (exec_worker); the
    # parallel path only times the whole map (exec_map) — worker processes
    # cannot share the parent's profiler, and per-future wall time would
    # double-count overlapping workers anyway
    profiler = getattr(telemetry, "profiler", None)
    if workers == 1 or len(spec_list) <= 1:
        return _run_serial(fn, spec_list, progress, profiler)
    if profiler is not None:
        profiler.begin("exec_map")
    try:
        return _run_pool(fn, spec_list, progress, workers, telemetry, label)
    finally:
        if profiler is not None:
            profiler.end()


def _run_pool(fn, spec_list, progress, workers, telemetry, label) -> list:
    try:
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError) as exc:  # pragma: no cover - env specific
        log.warning("process pool unavailable (%s); falling back to serial", exc)
        return _run_serial(fn, spec_list, progress)
    try:
        with executor:
            futures = [executor.submit(fn, spec) for spec in spec_list]
            results: list[R] = [None] * len(futures)  # type: ignore[list-item]
            # as_completed drives progress; the ordered merge reads by index
            for future in concurrent.futures.as_completed(futures):
                future.result()  # re-raise worker failures promptly
                if progress is not None:
                    progress.advance()
            for i, future in enumerate(futures):
                results[i] = future.result()
            return results
    except concurrent.futures.BrokenExecutor:  # pragma: no cover - env specific
        log.warning("worker pool broke mid-campaign; rerunning serially")
        if telemetry is not None:
            progress = ExecProgress(telemetry, label, len(spec_list), 1)
        return _run_serial(fn, spec_list, progress)


def _run_serial(fn, spec_list, progress, profiler=None) -> list:
    results = []
    if profiler is not None:
        profiler.begin("exec_map")
    try:
        for spec in spec_list:
            if profiler is not None:
                profiler.begin("exec_worker")
            try:
                results.append(fn(spec))
            finally:
                if profiler is not None:
                    profiler.end()
            if progress is not None:
                progress.advance()
    finally:
        if profiler is not None:
            profiler.end()
    return results
