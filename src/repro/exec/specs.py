"""Picklable run specs + module-level worker functions for the campaigns.

Every experiment driver that fans out over the exec engine defines its unit
of work here: a frozen dataclass (the *spec*, cheap to pickle into a worker
process) and a module-level function that simulates it and returns a plain
result (row dicts or an :class:`~repro.experiments.runner.ESPResult`).

The drivers call these same functions on their serial path (``workers=1``),
which is what makes parallel output bit-identical to serial output: there is
exactly one implementation of "run this spec".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SweepRunSpec",
    "Table2RunSpec",
    "Table2InstrumentedSpec",
    "CampaignRunSpec",
    "ScalingRunSpec",
    "ResilienceRunSpec",
    "run_sweep_row",
    "run_table2_result",
    "run_table2_instrumented_result",
    "run_campaign_row",
    "run_scaling_row",
    "run_resilience_row",
]


def _configuration(name: str):
    from repro.experiments.configs import all_configurations

    for configuration in all_configurations():
        if configuration.name == name:
            return configuration
    raise ValueError(f"unknown ESP configuration: {name!r}")


# ----------------------------------------------------------------------
# seed sweep (Table II robustness)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRunSpec:
    """One (configuration, seed) cell of the seed sweep."""

    config_name: str
    seed: int
    trace_maxlen: int | None = None


def run_sweep_row(spec: SweepRunSpec) -> dict:
    """Simulate one sweep cell and return its metric row."""
    from repro.experiments.runner import run_esp_configuration

    telemetry = None
    if spec.trace_maxlen is not None:
        from repro.obs import Telemetry

        telemetry = Telemetry(sample_interval=None)
    run = run_esp_configuration(
        _configuration(spec.config_name),
        seed=spec.seed,
        telemetry=telemetry,
        trace_maxlen=spec.trace_maxlen,
    )
    m = run.metrics
    return {
        "time_min": m.workload_time_minutes,
        "satisfied": m.satisfied_dyn_jobs,
        "util_pct": 100.0 * m.utilization,
        "throughput": m.throughput_jobs_per_minute,
        "mean_wait": m.mean_wait,
    }


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2RunSpec:
    """One Table II configuration run (full ESPResult comes back)."""

    config_name: str
    seed: int
    num_nodes: int = 15
    cores_per_node: int = 8
    shards: int | None = None


def run_table2_result(spec: Table2RunSpec):
    """Simulate one configuration and return the (picklable) ESPResult."""
    from repro.experiments.runner import run_esp_configuration
    from repro.experiments.table2 import with_shards

    return run_esp_configuration(
        with_shards(_configuration(spec.config_name), spec.shards),
        num_nodes=spec.num_nodes,
        cores_per_node=spec.cores_per_node,
        seed=spec.seed,
    )


@dataclass(frozen=True)
class Table2InstrumentedSpec:
    """One fully instrumented Table II run, dumps written in-worker.

    The worker calls the same ``_run_instrumented_config`` the serial loop
    uses — one implementation writes the JSONL dumps, which is what makes
    ``-j N`` exports byte-identical to serial ones (the CI golden SLO
    check relies on this).  ``slo`` is a tuple of objective strings so the
    spec stays hashable and cheap to pickle.
    """

    config_name: str
    seed: int
    out_dir: str | None
    decision_ledger: bool = False
    profile: bool = False
    window_width: float = 600.0
    shards: int | None = None
    slo: tuple[str, ...] | None = None
    #: drive the run through the scheduler service (repro.service) instead
    #: of directly — dumps must stay byte-identical either way
    via_service: bool = False


def run_table2_instrumented_result(spec: Table2InstrumentedSpec):
    """Run one instrumented configuration; dumps land on disk in-worker.

    The returned ESPResult is stripped of its telemetry and trace — both
    hold engine/sampler references that are meaningless (and expensive to
    pickle) across the process boundary; the dumps carry the telemetry.
    """
    import dataclasses

    from repro.experiments.table2 import _run_instrumented_config

    result = _run_instrumented_config(
        spec.config_name,
        spec.seed,
        spec.out_dir,
        decision_ledger=spec.decision_ledger,
        profile=spec.profile,
        window_width=spec.window_width,
        shards=spec.shards,
        slo=spec.slo,
        via_service=spec.via_service,
    )
    result = dataclasses.replace(result, telemetry=None, trace=None)
    # the metrics object keeps its own telemetry/trace backrefs (sampler
    # closures over live components, subscriber callbacks) — sever them
    # before pickling, but keep the bare event list: utilization replays
    # it lazily on the parent side (render_table2 needs it)
    result.metrics._telemetry = None
    result.metrics._trace = list(result.metrics._trace)
    return result


# ----------------------------------------------------------------------
# random campaigns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignRunSpec:
    """One seed of a random mixed-workload campaign."""

    num_jobs: int
    seed: int
    num_nodes: int = 15
    cores_per_node: int = 8
    config: object | None = None  # a MauiConfig (dataclass, picklable) or None
    trace_maxlen: int | None = None
    evolving_share: float = 0.3
    mean_interarrival: float = 60.0


def run_campaign_row(spec: CampaignRunSpec) -> dict:
    """Simulate one campaign seed and return its summary row."""
    from repro.obs import Telemetry
    from repro.system import BatchSystem
    from repro.workloads.random_workload import make_random_workload

    telemetry = Telemetry()
    system = BatchSystem(
        spec.num_nodes,
        spec.cores_per_node,
        spec.config,
        telemetry=telemetry,
        trace_maxlen=spec.trace_maxlen,
    )
    make_random_workload(
        spec.num_jobs,
        spec.num_nodes * spec.cores_per_node,
        evolving_share=spec.evolving_share,
        mean_interarrival=spec.mean_interarrival,
        seed=spec.seed,
    ).submit_to(system)
    system.run(max_events=5_000_000)
    m = system.metrics()
    return {
        "seed": spec.seed,
        "completed": m.completed_jobs,
        "satisfied": m.satisfied_dyn_jobs,
        "util_pct": 100.0 * m.utilization,
        "mean_wait": m.mean_wait,
        "trace_events": len(system.trace),
        "trace_dropped": system.trace.dropped,
    }


# ----------------------------------------------------------------------
# resilience campaign (ESP under fault injection)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceRunSpec:
    """One (configuration, fault model) cell of the resilience experiment.

    Carries the full :class:`repro.faults.FaultModel` (frozen, picklable),
    so the worker needs nothing beyond the spec — parallel runs are
    bit-identical to serial by the usual exec-engine argument.
    """

    config_name: str
    seed: int
    fault_model: object  # a repro.faults.FaultModel
    num_nodes: int = 15
    cores_per_node: int = 8


def run_resilience_row(spec: ResilienceRunSpec) -> dict:
    """Simulate one resilience cell and return its machine-readable row."""
    from repro.experiments.runner import run_esp_configuration

    run = run_esp_configuration(
        _configuration(spec.config_name),
        num_nodes=spec.num_nodes,
        cores_per_node=spec.cores_per_node,
        seed=spec.seed,
        fault_model=spec.fault_model,
    )
    m = run.metrics
    row = {
        "config": spec.config_name,
        "seed": spec.seed,
        "fault_seed": spec.fault_model.seed,
        "completed": m.completed_jobs,
        "satisfied": m.satisfied_dyn_jobs,
        "time_min": m.workload_time_minutes,
        "util_pct": 100.0 * m.utilization,
        "throughput": m.throughput_jobs_per_minute,
        "mean_wait": m.mean_wait,
    }
    assert run.resilience is not None
    row.update(run.resilience)
    return row


# ----------------------------------------------------------------------
# scaling bench
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalingRunSpec:
    """One machine size of the ESP scaling bench (Dyn-HP configuration)."""

    nodes: int
    cores_per_node: int = 8
    seed: int = 2014


def run_scaling_row(spec: ScalingRunSpec) -> dict:
    """Simulate the dynamic ESP workload at one machine scale."""
    from repro.maui.config import MauiConfig
    from repro.system import BatchSystem
    from repro.workloads.esp import make_esp_workload

    system = BatchSystem(
        spec.nodes,
        spec.cores_per_node,
        MauiConfig(reservation_depth=5, reservation_delay_depth=5),
    )
    make_esp_workload(
        spec.nodes * spec.cores_per_node, dynamic=True, seed=spec.seed
    ).submit_to(system)
    system.run(max_events=5_000_000)
    m = system.metrics()
    return {
        "nodes": spec.nodes,
        "completed": m.completed_jobs,
        "satisfied": m.satisfied_dyn_jobs,
        "util_pct": 100.0 * m.utilization,
        "workload_time": m.workload_time,
        "time_min": m.workload_time_minutes,
        "iterations": system.scheduler.stats["iterations"],
    }
