"""Time and size unit helpers shared across the batch-system simulator.

The Maui configuration language expresses durations either as plain seconds
(``4800``) or in ``HH:MM:SS`` / ``DD:HH:MM:SS`` form (``06:00:00``).  All
simulator-internal times are floats in seconds since simulation start.
"""

from __future__ import annotations

__all__ = [
    "parse_duration",
    "format_duration",
    "minutes",
    "hours",
    "days",
    "UNLIMITED",
]

#: Sentinel meaning "no limit" for fairness limits.  The paper's Fig. 6 uses
#: a configured value of ``0`` to mean unlimited; we normalise that to this
#: sentinel at parse time so arithmetic never confuses "0 seconds allowed"
#: with "unbounded".
UNLIMITED = float("inf")


def minutes(x: float) -> float:
    """Return *x* minutes expressed in seconds."""
    return float(x) * 60.0


def hours(x: float) -> float:
    """Return *x* hours expressed in seconds."""
    return float(x) * 3600.0


def days(x: float) -> float:
    """Return *x* days expressed in seconds."""
    return float(x) * 86400.0


def parse_duration(text: str | int | float) -> float:
    """Parse a Maui-style duration into seconds.

    Accepted forms:

    * a number (``int``/``float`` or numeric string) — interpreted as seconds
    * ``MM:SS``
    * ``HH:MM:SS``
    * ``DD:HH:MM:SS``

    >>> parse_duration("06:00:00")
    21600.0
    >>> parse_duration(90)
    90.0
    >>> parse_duration("1:00:00:00")
    86400.0
    """
    if isinstance(text, (int, float)):
        value = float(text)
        if value < 0:
            raise ValueError(f"negative duration: {text!r}")
        return value
    s = text.strip()
    if not s:
        raise ValueError("empty duration string")
    if ":" not in s:
        value = float(s)
        if value < 0:
            raise ValueError(f"negative duration: {text!r}")
        return value
    parts = s.split(":")
    if len(parts) > 4:
        raise ValueError(f"too many ':' fields in duration: {text!r}")
    multipliers = (1.0, 60.0, 3600.0, 86400.0)
    total = 0.0
    for mult, field in zip(multipliers, reversed(parts)):
        if field == "":
            raise ValueError(f"empty field in duration: {text!r}")
        value = float(field)
        if value < 0:
            raise ValueError(f"negative field in duration: {text!r}")
        total += mult * value
    return total


def format_duration(seconds: float) -> str:
    """Render seconds as ``HH:MM:SS`` (hours may exceed 24).

    >>> format_duration(21600)
    '06:00:00'
    """
    if seconds == UNLIMITED:
        return "UNLIMITED"
    total = int(round(seconds))
    sign = "-" if total < 0 else ""
    total = abs(total)
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{sign}{h:02d}:{m:02d}:{s:02d}"
