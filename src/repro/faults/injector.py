"""The engine component that replays a failure trace against the server.

Construct a :class:`FaultInjector` right after the
:class:`~repro.system.BatchSystem` (before ``run()``): it pre-generates
the whole failure trace, schedules one engine event per transition, and
attaches :class:`~repro.faults.transient.TransientFaults` to the server
when the model enables delivery drops.  A disabled model does neither —
the run is bit-identical to one without the injector.

The injector also keeps the resilience books: jobs requeued, core-seconds
of lost work (run time already accrued by affected jobs, which restart
from scratch unless checkpointed), per-node downtime and the *effective*
MTTR actually realised by the sampled repair times.
"""

from __future__ import annotations

import logging

from repro.cluster.node import NodeState
from repro.faults.model import FaultModel
from repro.faults.trace import FAIL, FaultEvent, generate_failure_trace
from repro.faults.transient import TransientFaults

__all__ = ["FaultInjector"]

log = logging.getLogger("repro.faults.injector")


class FaultInjector:
    """Drives ``Server.handle_node_failure``/``recover_node`` from a trace."""

    def __init__(self, system, model: FaultModel) -> None:
        self.model = model
        self.engine = system.engine
        self.server = system.server
        self.cluster = system.cluster
        self.trace: list[FaultEvent] = generate_failure_trace(
            model, [n.index for n in self.cluster.nodes], start=self.engine.now
        )
        self.stats = {
            "node_failures": 0,
            "node_recoveries": 0,
            "jobs_requeued": 0,
            "lost_core_seconds": 0.0,
            "downtime_seconds": 0.0,
        }
        self._down_since: dict[int, float] = {}
        self._obs = None
        telemetry = getattr(system, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            from repro.obs.instruments import FaultInstruments

            self._obs = FaultInstruments(telemetry)
        self.transient: TransientFaults | None = None
        if model.transient_faults_enabled:
            self.transient = TransientFaults(model, telemetry=telemetry)
            self.server.attach_faults(self.transient)
        for ev in self.trace:
            self.engine.at(ev.time, self._fire, ev)
        if self.trace:
            log.info(
                "fault trace: %d events over [%.0f, %.0f]",
                len(self.trace), self.trace[0].time, self.trace[-1].time,
            )

    # ------------------------------------------------------------------
    def _fire(self, ev: FaultEvent) -> None:
        now = self.engine.now
        if ev.kind == FAIL:
            if self.cluster.node(ev.node).state is not NodeState.UP:
                return  # merged traces never double-fail; stay safe anyway
            lost = 0.0
            for job in self.server.active_jobs():
                if (
                    job.allocation is not None
                    and ev.node in job.allocation
                    and job.start_time is not None
                ):
                    lost += (now - job.start_time) * job.allocation.total_cores
            affected = self.server.handle_node_failure(ev.node)
            self.stats["node_failures"] += 1
            self.stats["jobs_requeued"] += len(affected)
            self.stats["lost_core_seconds"] += lost
            self._down_since[ev.node] = now
            if self._obs is not None:
                self._obs.on_failure(len(affected), lost)
        else:
            if self.cluster.node(ev.node).state is NodeState.UP:
                return
            self.server.recover_node(ev.node)
            self.stats["node_recoveries"] += 1
            went_down = self._down_since.pop(ev.node, None)
            if went_down is not None:
                downtime = now - went_down
                self.stats["downtime_seconds"] += downtime
                if self._obs is not None:
                    self._obs.on_recovery(downtime)

    # ------------------------------------------------------------------
    @property
    def effective_mttr(self) -> float:
        """Mean realised repair time over completed repairs (0 if none)."""
        repairs = self.stats["node_recoveries"]
        if repairs == 0:
            return 0.0
        return self.stats["downtime_seconds"] / repairs

    def report(self) -> dict:
        """Machine-readable resilience summary (stats + transient stats)."""
        out = dict(self.stats)
        out["effective_mttr"] = self.effective_mttr
        out["trace_events"] = len(self.trace)
        if self.transient is not None:
            out.update(self.transient.stats)
        else:
            out.update(
                {"delivery_drops": 0, "delivery_retries": 0, "delivery_degraded": 0}
            )
        return out
