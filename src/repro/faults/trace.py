"""Seeded failure-trace generation.

The generator turns a :class:`~repro.faults.model.FaultModel` into an
ordered list of :class:`FaultEvent` records *before* the simulation
starts, so the whole failure history is inspectable, serialisable and —
because each node draws from its own child RNG — independent of how
many nodes the cluster has or the order they are asked about.

The trace is *consistent by construction*: per node, down-intervals are
unioned before emission, so events strictly alternate fail → recover
and a correlated burst can never "double-fail" a node that an earlier
draw already took down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.faults.model import FaultModel

__all__ = ["FaultEvent", "generate_failure_trace"]

FAIL = "fail"
RECOVER = "recover"


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One node-state transition in a failure trace."""

    time: float
    kind: str  # FAIL | RECOVER
    node: int

    def as_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind, "node": self.node}


def _sample_tbf(rng: random.Random, model: FaultModel) -> float:
    """Draw one time-between-failures from the model's distribution."""
    assert model.mtbf is not None
    if model.distribution == "weibull":
        # scale chosen so the mean equals mtbf: mean = scale * Γ(1 + 1/k)
        import math

        scale = model.mtbf / math.gamma(1.0 + 1.0 / model.weibull_shape)
        return rng.weibullvariate(scale, model.weibull_shape)
    return rng.expovariate(1.0 / model.mtbf)


def _node_down_intervals(
    model: FaultModel, node: int, *, start: float
) -> list[tuple[float, float]]:
    """Per-node renewal process: [down_start, down_end) intervals.

    Seeded on ``(model.seed, node)`` so the draw for node *i* never
    depends on other nodes existing — adding a node to the cluster does
    not perturb anyone else's failure history.
    """
    rng = random.Random(f"{model.seed}:node:{node}")
    intervals: list[tuple[float, float]] = []
    t = start
    while True:
        t_fail = t + _sample_tbf(rng, model)
        if t_fail >= start + model.horizon:
            break
        repair = rng.expovariate(1.0 / model.mttr)
        intervals.append((t_fail, t_fail + repair))
        t = t_fail + repair
    return intervals


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union overlapping/touching [start, end) intervals."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def generate_failure_trace(
    model: FaultModel, node_indices: Sequence[int], *, start: float = 0.0
) -> list[FaultEvent]:
    """Generate the full, ordered failure trace for a cluster.

    Returns events sorted by ``(time, node, kind)``; recoveries may land
    past ``model.horizon`` (every failure is paired with a recovery) but
    no new failure starts there.  Same model + node set ⇒ byte-identical
    trace.
    """
    if not model.node_failures_enabled:
        return []
    nodes = sorted(node_indices)
    down: dict[int, list[tuple[float, float]]] = {
        n: _node_down_intervals(model, n, start=start) for n in nodes
    }
    if model.burst_probability > 0.0 and len(nodes) > 1:
        # correlated bursts: walk base failures in global order; a triggered
        # burst adds down-intervals for the next nodes in ring order.  The
        # burst RNG is separate from the per-node RNGs so enabling bursts
        # only *adds* intervals, never perturbs the base draws.
        burst_rng = random.Random(f"{model.seed}:burst")
        base_failures = sorted(
            (lo, n) for n, ivals in down.items() for lo, _hi in ivals
        )
        pos = {n: i for i, n in enumerate(nodes)}
        for t_fail, n in base_failures:
            if burst_rng.random() >= model.burst_probability:
                continue
            for step in range(1, model.burst_size):
                victim = nodes[(pos[n] + step) % len(nodes)]
                if victim == n:
                    break
                repair = burst_rng.expovariate(1.0 / model.mttr)
                down[victim].append((t_fail, t_fail + repair))
    events: list[FaultEvent] = []
    for n in nodes:
        for lo, hi in _merge_intervals(down[n]):
            events.append(FaultEvent(time=lo, kind=FAIL, node=n))
            events.append(FaultEvent(time=hi, kind=RECOVER, node=n))
    events.sort(key=lambda e: (e.time, e.node, e.kind))
    return events
