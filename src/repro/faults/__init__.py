"""Deterministic fault injection and resilience for the batch stack.

The paper motivates dynamic allocation partly as a fault-tolerance
mechanism — "allocating spare nodes to affected jobs" (Section I).  This
package makes that claim testable: a seeded failure-trace generator
(:func:`generate_failure_trace`), an engine component that replays the
trace against the server (:class:`FaultInjector`), and transient
grant-delivery faults for the TM layer (:class:`TransientFaults`) with
bounded retry + exponential backoff in ``repro.rms.server``.

Everything is deterministic by construction: the same
:class:`FaultModel` seed yields a byte-identical failure trace and, run
against the same workload seed, a byte-identical schedule — serial or
under the ``repro.exec`` parallel runner.  A model with no failure
sources (``mtbf=None`` and zero delivery-failure rate) schedules no
engine events and attaches no hooks, so the run is bit-identical to one
without the injector.

See ``docs/RESILIENCE.md`` for the failure model and CLI usage.
"""

from repro.faults.injector import FaultInjector
from repro.faults.model import FaultModel
from repro.faults.trace import FaultEvent, generate_failure_trace
from repro.faults.transient import TransientFaults

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "TransientFaults",
    "generate_failure_trace",
]
