"""The failure model: everything a fault campaign needs, in one value.

A :class:`FaultModel` is frozen (hashable, picklable) so it can ride
inside ``repro.exec`` run specs unchanged — determinism of the parallel
experiment runner extends to fault campaigns for free.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultModel"]

_DISTRIBUTIONS = ("exponential", "weibull")


@dataclass(frozen=True)
class FaultModel:
    """Seeded description of node failures and transient TM faults.

    Node failures: each node independently draws time-between-failures
    from ``distribution`` with mean ``mtbf`` and repair times from an
    exponential with mean ``mttr`` (repair processes are memoryless even
    under Weibull failure clustering).  ``mtbf=None`` disables node
    failures entirely.  With ``burst_probability`` > 0, a failure takes
    the next ``burst_size - 1`` nodes (ring order) down at the same
    instant — correlated failures of the switch/PSU flavour.

    Transient faults: with ``grant_delivery_failure_rate`` > 0, delivery
    of a dynamic grant to the mother superior can be dropped; the server
    retries up to ``delivery_max_retries`` times, waiting
    ``delivery_retry_backoff * 2**(attempt-1)`` seconds before attempt
    ``attempt+1``, then degrades gracefully (the application continues
    at its current allocation).

    ``horizon`` bounds *new* failures; every failure is still paired
    with its recovery (which may land past the horizon) so workloads
    that need the full machine always drain.
    """

    seed: int = 0
    mtbf: float | None = None
    mttr: float = 900.0
    distribution: str = "exponential"
    weibull_shape: float = 1.5
    burst_probability: float = 0.0
    burst_size: int = 2
    horizon: float = 20_000.0
    grant_delivery_failure_rate: float = 0.0
    delivery_max_retries: int = 3
    delivery_retry_backoff: float = 5.0

    def __post_init__(self) -> None:
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive or None: {self.mtbf}")
        if self.mttr <= 0:
            raise ValueError(f"mttr must be positive: {self.mttr}")
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; "
                f"expected one of {_DISTRIBUTIONS}"
            )
        if self.weibull_shape <= 0:
            raise ValueError(f"weibull_shape must be positive: {self.weibull_shape}")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError(
                f"burst_probability must be in [0, 1]: {self.burst_probability}"
            )
        if self.burst_size < 2:
            raise ValueError(f"burst_size must be at least 2: {self.burst_size}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive: {self.horizon}")
        if not 0.0 <= self.grant_delivery_failure_rate < 1.0:
            raise ValueError(
                "grant_delivery_failure_rate must be in [0, 1): "
                f"{self.grant_delivery_failure_rate}"
            )
        if self.delivery_max_retries < 0:
            raise ValueError(
                f"delivery_max_retries must be >= 0: {self.delivery_max_retries}"
            )
        if self.delivery_retry_backoff <= 0:
            raise ValueError(
                f"delivery_retry_backoff must be positive: {self.delivery_retry_backoff}"
            )

    @property
    def node_failures_enabled(self) -> bool:
        return self.mtbf is not None

    @property
    def transient_faults_enabled(self) -> bool:
        return self.grant_delivery_failure_rate > 0.0

    @property
    def enabled(self) -> bool:
        """Does this model inject *anything*?

        A disabled model is the acceptance baseline: an injector built
        from it must leave the run bit-identical to no injector at all.
        """
        return self.node_failures_enabled or self.transient_faults_enabled
