"""Transient TM-layer faults: grant delivery drops.

The server consults an attached :class:`TransientFaults` at every grant
delivery attempt (initial and retries); the object owns its own seeded
RNG stream — consumption order equals grant order, which the engine
makes deterministic — and the retry policy parameters.
"""

from __future__ import annotations

import random

from repro.faults.model import FaultModel

__all__ = ["TransientFaults"]


class TransientFaults:
    """Seeded drop decisions plus the retry/backoff policy.

    ``stats`` counts drops, scheduled retries and degraded requests;
    optional registry counters (``repro_faults_delivery_*``) mirror them
    when telemetry is enabled.
    """

    def __init__(self, model: FaultModel, *, telemetry=None) -> None:
        self.model = model
        self._rng = random.Random(f"{model.seed}:delivery")
        self.max_retries = model.delivery_max_retries
        self.backoff = model.delivery_retry_backoff
        self.stats = {
            "delivery_drops": 0,
            "delivery_retries": 0,
            "delivery_degraded": 0,
        }
        self._obs_drops = self._obs_retries = self._obs_degraded = None
        if telemetry is not None and telemetry.enabled:
            registry = telemetry.registry
            self._obs_drops = registry.counter(
                "repro_faults_delivery_drops_total",
                "Grant delivery attempts dropped by transient faults",
            )
            self._obs_retries = registry.counter(
                "repro_faults_delivery_retries_total",
                "Grant delivery retries scheduled",
            )
            self._obs_degraded = registry.counter(
                "repro_faults_delivery_degraded_total",
                "Dynamic requests degraded after exhausting delivery retries",
            )

    def drop_delivery(self, job_id: str, attempt: int) -> bool:
        """Should this delivery attempt be dropped?  (Consumes one draw.)"""
        if self.model.grant_delivery_failure_rate <= 0.0:
            return False
        drop = self._rng.random() < self.model.grant_delivery_failure_rate
        if drop:
            self.stats["delivery_drops"] += 1
            if self._obs_drops is not None:
                self._obs_drops.inc()
        return drop

    def retry_delay(self, attempt: int) -> float:
        """Backoff before the attempt after ``attempt`` (1-based) failed."""
        return self.backoff * (2.0 ** (attempt - 1))

    def note_retry(self) -> None:
        self.stats["delivery_retries"] += 1
        if self._obs_retries is not None:
            self._obs_retries.inc()

    def note_degraded(self) -> None:
        self.stats["delivery_degraded"] += 1
        if self._obs_degraded is not None:
            self._obs_degraded.inc()
