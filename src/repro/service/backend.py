"""Pluggable drivers behind the scheduler service.

A :class:`Backend` owns a :class:`~repro.service.core.PolicyCore` (or, for
a future real-RM adapter, a live resource manager) and exposes the narrow
surface the service needs: submit/cancel/lookup, dynamic grant requests,
and a way to *advance* whatever notion of time the backend has.

Two backends ship today:

* :class:`SimBackend` — the discrete-event simulator, first and reference
  driver.  Driving a workload through the service on this backend is
  bit-identical to a direct :class:`~repro.system.BatchSystem` run.
* :class:`ReplayBackend` — a dry-run driver that ingests a recorded event
  stream (a :class:`~repro.sim.events.TraceLog` or its JSONL export) and
  shadow-schedules the same submissions, node failures and recoveries.
  This is the road to digital-twin mode: feed the twin yesterday's trace,
  compare the shadow schedule against what really happened.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.maui.config import MauiConfig
from repro.metrics.collector import WorkloadMetrics
from repro.service.core import PolicyCore
from repro.sim.events import EventKind, TraceEvent
from repro.workloads.spec import JobSpec

__all__ = ["Backend", "ReplayBackend", "SimBackend", "make_backend", "parse_request"]


def parse_request(text: str) -> ResourceRequest:
    """Parse the ``str(ResourceRequest)`` wire form back into a request.

    Accepts ``procs=N`` and ``nodes=N:ppn=P`` — exactly the two shapes the
    trace exporter writes, so a recorded stream round-trips.
    """
    try:
        if text.startswith("nodes="):
            nodes_part, ppn_part = text.split(":", 1)
            return ResourceRequest(
                nodes=int(nodes_part.removeprefix("nodes=")),
                ppn=int(ppn_part.removeprefix("ppn=")),
            )
        if text.startswith("procs="):
            return ResourceRequest(cores=int(text.removeprefix("procs=")))
    except ValueError as exc:
        raise ValueError(f"malformed resource request {text!r}") from exc
    raise ValueError(f"malformed resource request {text!r}")


@runtime_checkable
class Backend(Protocol):
    """What the service needs from a driver.

    Implementations wrap a policy core (simulated or real).  All methods
    are synchronous — the service serialises access from its single
    consumer task, so backends never see concurrent calls.
    """

    name: str
    core: PolicyCore

    @property
    def now(self) -> float: ...

    def begin_cycle(self) -> None: ...

    def end_cycle(self) -> None: ...

    def submit(self, spec: JobSpec) -> Job: ...

    def cancel(self, job: Job, reason: str) -> None: ...

    def find_job(self, job_id: str) -> Job | None: ...

    def request_grow(
        self,
        job: Job,
        request: ResourceRequest,
        callback: Callable[[Any], None],
        *,
        timeout: float | None = None,
    ) -> None: ...

    def advance(
        self, *, until: float | None = None, max_events: int | None = None
    ) -> int: ...

    def pending(self) -> int: ...

    def metrics(self) -> WorkloadMetrics: ...


class SimBackend:
    """The discrete-event simulator as a service driver.

    Owns a :class:`PolicyCore` and replicates the exact submission
    mechanics of ``Workload.submit_to`` + ``BatchSystem.run`` so that a
    workload pushed through the service schedules bit-identically to the
    direct path: a spec whose submit time has already passed is submitted
    immediately, a future one is scheduled on the engine, and telemetry is
    armed only once work is queued (see :meth:`PolicyCore.begin_cycle`).
    """

    name = "sim"

    def __init__(self, core: PolicyCore | None = None, **core_kwargs) -> None:
        if core is not None and core_kwargs:
            raise ValueError("pass either a prebuilt core or kwargs, not both")
        self.core = core if core is not None else PolicyCore(**core_kwargs)

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        return self.core.engine.now

    def begin_cycle(self) -> None:
        self.core.begin_cycle()

    def end_cycle(self) -> None:
        self.core.end_cycle()

    # -- job lifecycle --------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        job = spec.build_job()
        app = spec.app_factory() if spec.app_factory is not None else None
        engine = self.core.engine
        if spec.submit_time <= engine.now:
            self.core.server.submit(job, app)
        else:
            engine.at(spec.submit_time, self.core.server.submit, job, app)
        return job

    def cancel(self, job: Job, reason: str) -> None:
        self.core.server.cancel_queued(job, reason)

    def find_job(self, job_id: str) -> Job | None:
        return self.core.server.jobs.get(job_id)

    def request_grow(
        self,
        job: Job,
        request: ResourceRequest,
        callback: Callable[[Any], None],
        *,
        timeout: float | None = None,
    ) -> None:
        self.core.server.dyn_request(job, request, callback, timeout=timeout)

    # -- time advancement ----------------------------------------------
    def advance(
        self, *, until: float | None = None, max_events: int | None = None
    ) -> int:
        return self.core.engine.run(until=until, max_events=max_events)

    def pending(self) -> int:
        return self.core.engine.pending

    def metrics(self) -> WorkloadMetrics:
        return self.core.metrics()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.core!r}>"


class ReplayBackend(SimBackend):
    """Dry-run driver: shadow-schedule a recorded event stream.

    :meth:`ingest` reads a trace (live :class:`TraceLog`, any iterable of
    :class:`TraceEvent`, or dict rows from the JSONL export) and replays
    its *inputs* — job submissions with their recorded shapes and runtimes,
    node failures and recoveries — against a fresh policy core.  The
    scheduler then re-decides everything downstream (starts, grants,
    backfill), which is the point: the shadow schedule can be diffed
    against the recorded one to validate a policy change offline before it
    touches a real system.

    Replayed jobs run for their *recorded* service time (end − start) when
    the stream contains their completion, falling back to the requested
    walltime for jobs whose end was never recorded (still running when the
    trace was cut).
    """

    name = "replay"

    def ingest(self, events: Iterable[TraceEvent | dict]) -> list[JobSpec]:
        """Convert a recorded stream into submissions and schedule them.

        Returns the derived :class:`JobSpec` list (in recorded submit
        order) so callers can correlate the shadow run back to the source
        stream.
        """
        normalised = [self._normalise(ev) for ev in events]
        runtimes = self._recorded_runtimes(normalised)
        specs: list[JobSpec] = []
        for time, kind, payload in normalised:
            if kind is EventKind.JOB_SUBMIT:
                spec = self._spec_from_submit(time, payload, runtimes)
                specs.append(spec)
                self.submit(spec)
            elif kind is EventKind.NODE_FAIL:
                node = payload.get("node")
                if node is not None:
                    self.core.engine.at(
                        time, self.core.server.handle_node_failure, int(node)
                    )
            elif kind is EventKind.NODE_RECOVER:
                node = payload.get("node")
                if node is not None:
                    self.core.engine.at(
                        time, self.core.server.recover_node, int(node)
                    )
        return specs

    # -- stream decoding -------------------------------------------------
    @staticmethod
    def _normalise(ev: TraceEvent | dict) -> tuple[float, EventKind, dict]:
        if isinstance(ev, TraceEvent):
            return ev.time, ev.kind, ev.payload
        try:
            return float(ev["t"]), EventKind(ev["kind"]), dict(ev.get("payload") or {})
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed trace row: {ev!r}") from exc

    @staticmethod
    def _recorded_runtimes(
        normalised: list[tuple[float, EventKind, dict]]
    ) -> dict[str, float]:
        starts: dict[str, float] = {}
        runtimes: dict[str, float] = {}
        for time, kind, payload in normalised:
            job_id = payload.get("job_id")
            if job_id is None:
                continue
            if kind in (EventKind.JOB_START, EventKind.BACKFILL_START):
                starts[job_id] = time
            elif kind in (EventKind.JOB_END, EventKind.JOB_ABORT):
                start = starts.get(job_id)
                if start is not None and job_id not in runtimes:
                    runtimes[job_id] = time - start
        return runtimes

    def _spec_from_submit(
        self, time: float, payload: dict, runtimes: dict[str, float]
    ) -> JobSpec:
        job_id = payload.get("job_id", "?")
        walltime = float(payload.get("walltime", 0.0))
        if walltime <= 0:
            raise ValueError(f"replayed submit {job_id!r} has no walltime")
        runtime = runtimes.get(job_id, walltime)
        # clamp: a recorded runtime of 0 (instant abort) still needs a
        # positive app duration; the walltime limit enforces the ceiling
        runtime = min(max(runtime, 1e-9), walltime)
        return JobSpec(
            submit_time=time,
            request=parse_request(str(payload.get("request", ""))),
            walltime=walltime,
            user=str(payload.get("user", "unknown")),
            evolving=bool(payload.get("evolving", False)),
            app_factory=(lambda rt=runtime: FixedRuntimeApp(rt)),
        )


def make_backend(
    kind: str,
    *,
    num_nodes: int = 15,
    cores_per_node: int = 8,
    config: MauiConfig | None = None,
    telemetry=None,
    trace_maxlen: int | None = None,
) -> Backend:
    """Build a backend by name (``sim`` or ``replay``) — the CLI's factory."""
    cls: type[SimBackend]
    if kind == "sim":
        cls = SimBackend
    elif kind == "replay":
        cls = ReplayBackend
    else:
        raise ValueError(f"unknown backend {kind!r} (expected 'sim' or 'replay')")
    return cls(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        config=config,
        telemetry=telemetry,
        trace_maxlen=trace_maxlen,
    )
