"""The always-on scheduler service (ROADMAP item 2).

The policy core that ``BatchSystem`` used to own lives here now
(:class:`PolicyCore`), behind a pluggable :class:`Backend` and an
asyncio-driven :class:`SchedulerService` front-end: submit, cancel, query
and negotiate dynamic grants from many concurrent tenants, with
per-account admission throttling.  The discrete-event simulator is the
first backend (:class:`SimBackend`, bit-identical to direct
``BatchSystem`` runs); :class:`ReplayBackend` shadow-schedules recorded
event streams on the road to digital-twin mode.  See ``docs/SERVICE.md``.
"""

from repro.service.api import (
    AdmissionError,
    AdmissionPolicy,
    GrowResult,
    JobInfo,
    QueueInfo,
    ServiceClosed,
    ServiceError,
    UnknownJob,
    principal_of,
)
from repro.service.backend import (
    Backend,
    ReplayBackend,
    SimBackend,
    make_backend,
    parse_request,
)
from repro.service.core import PolicyCore
from repro.service.service import SchedulerService

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "Backend",
    "GrowResult",
    "JobInfo",
    "PolicyCore",
    "QueueInfo",
    "ReplayBackend",
    "SchedulerService",
    "ServiceClosed",
    "ServiceError",
    "SimBackend",
    "UnknownJob",
    "make_backend",
    "parse_request",
    "principal_of",
]
