"""Service-facing data types: snapshots, errors and the admission policy.

Everything a tenant sees through :class:`repro.service.SchedulerService` is
defined here, deliberately decoupled from the scheduler's internal objects:
the API hands out immutable *snapshots* (:class:`JobInfo`,
:class:`QueueInfo`, :class:`GrowResult`) rather than live :class:`Job`
references, so concurrent clients can never mutate policy state from the
outside and a future remote transport only has to serialise plain
dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jobs.job import Job

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "GrowResult",
    "JobInfo",
    "QueueInfo",
    "ServiceClosed",
    "ServiceError",
    "UnknownJob",
    "principal_of",
]


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """Base class for scheduler-service failures."""


class ServiceClosed(ServiceError):
    """The service is not running (never started, or already stopped)."""


class UnknownJob(ServiceError):
    """The referenced job id is not known to the backend."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job: {job_id}")
        self.job_id = job_id


class AdmissionError(ServiceError):
    """A submission was refused by the admission policy (throttled)."""

    def __init__(self, principal: str, reason: str) -> None:
        super().__init__(f"submission refused for {principal!r}: {reason}")
        self.principal = principal
        self.reason = reason


# ----------------------------------------------------------------------
# tenancy
# ----------------------------------------------------------------------
def principal_of(user: str, account: str | None) -> str:
    """The throttling principal for a submission.

    Mirrors the fairness observatory's accounting rule: the account is the
    principal, except the placeholder ``"default"`` (a job submitted with
    no explicit account) falls back to the user.
    """
    if account is None or account == "default":
        return user
    return account


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-principal admission throttling for the service's submit path.

    ``max_open_per_account`` bounds how many *open* jobs (queued, running
    or dyn-queued — anything not yet terminal) one principal may have in
    the system at once; ``max_total_open`` bounds the sum across all
    principals.  ``None`` disables the respective limit, and the default
    policy admits everything — throttling is opt-in so the bit-identity
    oracle runs are never perturbed by it.
    """

    max_open_per_account: int | None = None
    max_total_open: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_open_per_account", "max_total_open"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive: {value}")

    def check(self, principal: str, open_for_principal: int, open_total: int) -> None:
        """Raise :class:`AdmissionError` if admitting one more job would
        exceed a limit."""
        if (
            self.max_open_per_account is not None
            and open_for_principal >= self.max_open_per_account
        ):
            raise AdmissionError(
                principal,
                f"open-job limit reached "
                f"({open_for_principal}/{self.max_open_per_account})",
            )
        if self.max_total_open is not None and open_total >= self.max_total_open:
            raise AdmissionError(
                principal,
                f"system open-job limit reached ({open_total}/{self.max_total_open})",
            )


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class JobInfo:
    """Immutable snapshot of one job's externally visible state."""

    job_id: str
    user: str
    account: str
    state: str
    cores_requested: int
    cores_allocated: int
    submit_time: float | None
    start_time: float | None
    end_time: float | None
    walltime: float
    evolving: bool
    dyn_granted: int
    dyn_rejected: int
    accrued_delay: float

    @classmethod
    def from_job(cls, job: Job) -> "JobInfo":
        allocation = job.allocation
        return cls(
            job_id=job.job_id,
            user=job.user,
            account=job.account,
            state=job.state.value,
            cores_requested=job.request.total_cores,
            cores_allocated=0 if allocation is None else allocation.total_cores,
            submit_time=job.submit_time,
            start_time=job.start_time,
            end_time=job.end_time,
            walltime=job.walltime,
            evolving=job.is_evolving,
            dyn_granted=job.dyn_granted,
            dyn_rejected=job.dyn_rejected,
            accrued_delay=job.accrued_delay,
        )


@dataclass(frozen=True, slots=True)
class QueueInfo:
    """Immutable snapshot of the backend's queue and clock state."""

    now: float
    queued: int
    running: int
    dynqueued: int
    finished: int
    total_jobs: int
    pending_events: int
    open_by_principal: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class GrowResult:
    """Outcome of a dynamic grant request driven through the service."""

    job_id: str
    granted: bool
    cores: int
    #: simulation time at which the request resolved
    resolved_at: float
