"""The always-on scheduler service.

:class:`SchedulerService` turns the policy core into a long-lived asyncio
service: many concurrent tenants submit, cancel, query and negotiate
dynamic grants through coroutine calls, while a single consumer task
serialises every command onto the backend.  That single-consumer design is
what preserves the repo's bit-identity discipline — commands are applied
in FIFO arrival order, so a given submission order produces exactly one
schedule no matter how many client coroutines raced to enqueue it.

Time does not pass on its own: the simulation-facing backends advance when
a client awaits :meth:`SchedulerService.drain` (run until idle) or
:meth:`~SchedulerService.run_until` (bounded advance).  During a drain the
service processes the engine in batches and interleaves newly arrived
commands between batches, so tenants can keep submitting and querying
*while* the backend runs — the always-on behaviour of a real batch system,
compressed onto the simulator's virtual clock.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable

from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.service.api import (
    AdmissionError,
    AdmissionPolicy,
    GrowResult,
    JobInfo,
    QueueInfo,
    ServiceClosed,
    UnknownJob,
    principal_of,
)
from repro.service.backend import Backend
from repro.workloads.spec import JobSpec

__all__ = ["SchedulerService"]

log = logging.getLogger("repro.service")

#: engine events processed per drain batch before newly arrived commands
#: are interleaved; large enough to amortise the asyncio hop, small enough
#: that a tenant's query never waits behind a whole campaign
_DEFAULT_BATCH_EVENTS = 4096


class _Command:
    """One queued API command: a closure plus the future awaiting it."""

    __slots__ = ("fn", "future", "drains")

    def __init__(
        self, fn: Callable[[], Any], future: asyncio.Future, *, drains: bool = False
    ) -> None:
        self.fn = fn
        self.future = future
        #: drain/run_until commands are handled by the consumer's advance
        #: loop rather than executed as plain closures
        self.drains = drains


_SHUTDOWN = object()


class SchedulerService:
    """Submission/query front-end over a pluggable scheduler backend."""

    def __init__(
        self,
        backend: Backend,
        *,
        admission: AdmissionPolicy | None = None,
        batch_events: int = _DEFAULT_BATCH_EVENTS,
    ) -> None:
        if batch_events <= 0:
            raise ValueError(f"batch_events must be positive: {batch_events}")
        self.backend = backend
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.batch_events = batch_events
        self._queue: asyncio.Queue | None = None
        self._consumer: asyncio.Task | None = None
        #: principal -> ids of jobs admitted through this service that have
        #: not yet been seen terminal (pruned lazily on admission checks)
        self._open: dict[str, set[str]] = {}
        self.stats: dict[str, int] = {
            "commands": 0,
            "submitted": 0,
            "admission_rejected": 0,
            "cancelled": 0,
            "grow_requests": 0,
            "cycles": 0,
            "events_processed": 0,
        }
        self._obs = None
        telemetry = backend.core.telemetry
        if telemetry is not None and telemetry.enabled:
            from repro.obs.instruments import ServiceInstruments

            self._obs = ServiceInstruments(telemetry)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._consumer is not None and not self._consumer.done()

    async def start(self) -> None:
        """Start the consumer task (idempotent)."""
        if self.running:
            return
        self._queue = asyncio.Queue()
        self._consumer = asyncio.create_task(
            self._consume(), name="repro-scheduler-service"
        )
        log.info("service started on backend %r", self.backend.name)

    async def stop(self) -> None:
        """Stop the consumer after the commands already queued are done."""
        if not self.running:
            return
        assert self._queue is not None
        self._queue.put_nowait(_SHUTDOWN)
        await self._consumer
        self._consumer = None
        self._queue = None
        log.info("service stopped (clean shutdown)")

    async def __aenter__(self) -> "SchedulerService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # tenant API (all coroutine-safe; commands apply in arrival order)
    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec) -> JobInfo:
        """Admit and submit one job; raises :class:`AdmissionError` when
        the tenant is throttled."""
        return await self._call(lambda: self._do_submit(spec))

    async def cancel(self, job_id: str, reason: str = "cancelled") -> JobInfo:
        """Cancel a queued job (``qdel``)."""
        return await self._call(lambda: self._do_cancel(job_id, reason))

    async def job_info(self, job_id: str) -> JobInfo:
        """Snapshot one job's state; raises :class:`UnknownJob`."""
        return await self._call(lambda: self._do_job_info(job_id))

    async def queue_info(self) -> QueueInfo:
        """Snapshot queue depths, clock and per-principal open counts."""
        return await self._call(self._do_queue_info)

    async def request_grow(
        self, job_id: str, cores: int, *, timeout: float | None = None
    ) -> GrowResult:
        """Enter a dynamic grant request for a *running* job.

        Resolves once the scheduler grants or rejects the request — which
        happens while some client drains the backend, so callers typically
        ``asyncio.create_task`` this and then await :meth:`drain`.  With
        ``timeout`` the request uses the negotiation protocol (seconds of
        *simulation* time before it expires).
        """
        if cores <= 0:
            raise ValueError(f"cores must be positive: {cores}")
        loop = asyncio.get_running_loop()
        resolved: asyncio.Future = loop.create_future()

        def _entered() -> None:
            job = self._find_or_raise(job_id)

            def _on_resolution(allocation) -> None:
                if not resolved.done():
                    resolved.set_result(
                        GrowResult(
                            job_id=job_id,
                            granted=allocation is not None,
                            cores=cores,
                            resolved_at=self.backend.now,
                        )
                    )

            self.backend.request_grow(
                job,
                ResourceRequest(cores=cores),
                _on_resolution,
                timeout=timeout,
            )
            self.stats["grow_requests"] += 1
            if self._obs is not None:
                self._obs.grow_requests.inc()

        await self._call(_entered)
        return await resolved

    async def drain(self) -> int:
        """Advance the backend until it has no pending events.

        Newly arriving commands are interleaved between event batches, so
        other tenants stay responsive during long drains.  Returns the
        number of engine events processed.
        """
        return await self._call(None, drains=True)

    async def run_until(self, time: float) -> int:
        """Advance the backend's clock up to ``time`` (same interleaving)."""
        return await self._call(lambda: float(time), drains=True)

    def metrics(self):
        """Workload metrics over everything the backend has seen.

        Synchronous and read-only by design: it reflects state as of the
        last processed command, exactly like scraping a metrics endpoint.
        """
        return self.backend.metrics()

    # ------------------------------------------------------------------
    # command plumbing
    # ------------------------------------------------------------------
    async def _call(self, fn: Callable[[], Any] | None, *, drains: bool = False):
        if not self.running or self._queue is None:
            raise ServiceClosed("service is not running; use 'async with' or start()")
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(_Command(fn or (lambda: None), future, drains=drains))
        return await future

    def _execute(self, cmd: _Command) -> None:
        self.stats["commands"] += 1
        if self._obs is not None:
            self._obs.commands.inc()
        try:
            result = cmd.fn()
        except Exception as exc:
            if not cmd.future.done():
                cmd.future.set_exception(exc)
        else:
            if not cmd.future.done():
                cmd.future.set_result(result)

    async def _consume(self) -> None:
        assert self._queue is not None
        queue = self._queue
        while True:
            cmd = await queue.get()
            if cmd is _SHUTDOWN:
                return
            if cmd.drains:
                await self._drain_backend(cmd)
                continue
            self._execute(cmd)

    async def _drain_backend(self, cmd: _Command) -> None:
        """Advance the backend, interleaving queued commands between batches.

        Nested drain commands encountered mid-drain simply share this
        drain's completion (the backend is idle either way); a shutdown
        sentinel is re-queued so the consumer loop exits right after.
        """
        assert self._queue is not None
        queue = self._queue
        bound = cmd.fn()
        until = bound if isinstance(bound, float) else None
        waiters = [cmd.future]
        processed = 0
        stop_after = False
        error: Exception | None = None
        self.backend.begin_cycle()
        try:
            while self.backend.pending():
                if until is not None:
                    peek = self.backend.core.engine.peek_time()
                    if peek is None or peek > until:
                        break
                processed += self.backend.advance(
                    until=until, max_events=self.batch_events
                )
                self.stats["cycles"] += 1
                if self._obs is not None:
                    self._obs.cycles.inc()
                # let client coroutines run, then apply what they enqueued
                await asyncio.sleep(0)
                while not queue.empty():
                    nxt = queue.get_nowait()
                    if nxt is _SHUTDOWN:
                        stop_after = True
                    elif nxt.drains:
                        waiters.append(nxt.future)
                    else:
                        self._execute(nxt)
        except Exception as exc:
            # a backend failure belongs to the drain's awaiters, not to the
            # consumer task — the service stays up for other tenants
            error = exc
        finally:
            self.backend.end_cycle()
        self.stats["events_processed"] += processed
        for future in waiters:
            if not future.done():
                if error is not None:
                    future.set_exception(error)
                else:
                    future.set_result(processed)
        if stop_after:
            queue.put_nowait(_SHUTDOWN)

    # ------------------------------------------------------------------
    # command bodies (run inside the consumer task)
    # ------------------------------------------------------------------
    def _find_or_raise(self, job_id: str) -> Job:
        job = self.backend.find_job(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def _prune_open(self) -> int:
        """Drop terminal jobs from the open-count index; return the total."""
        total = 0
        for principal, ids in list(self._open.items()):
            for job_id in list(ids):
                job = self.backend.find_job(job_id)
                # a discarded (folded) job is by definition terminal
                if job is None or job.is_finished:
                    ids.discard(job_id)
            if ids:
                total += len(ids)
            else:
                del self._open[principal]
        return total

    def _do_submit(self, spec: JobSpec) -> JobInfo:
        principal = principal_of(spec.user, spec.account)
        open_total = self._prune_open()
        open_mine = len(self._open.get(principal, ()))
        try:
            self.admission.check(principal, open_mine, open_total)
        except AdmissionError:
            self.stats["admission_rejected"] += 1
            if self._obs is not None:
                self._obs.admission_rejects.inc()
            raise
        job = self.backend.submit(spec)
        self._open.setdefault(principal, set()).add(job.job_id)
        self.stats["submitted"] += 1
        if self._obs is not None:
            self._obs.submissions.inc()
        return JobInfo.from_job(job)

    def _do_cancel(self, job_id: str, reason: str) -> JobInfo:
        job = self._find_or_raise(job_id)
        self.backend.cancel(job, reason)
        self.stats["cancelled"] += 1
        if self._obs is not None:
            self._obs.cancels.inc()
        return JobInfo.from_job(job)

    def _do_job_info(self, job_id: str) -> JobInfo:
        return JobInfo.from_job(self._find_or_raise(job_id))

    def _do_queue_info(self) -> QueueInfo:
        server = self.backend.core.server
        counts = {"queued": 0, "running": 0, "dynqueued": 0, "finished": 0}
        for job in server.jobs.values():
            if job.is_finished:
                counts["finished"] += 1
            else:
                counts[job.state.value] = counts.get(job.state.value, 0) + 1
        counts["finished"] += server.jobs_discarded
        self._prune_open()
        return QueueInfo(
            now=self.backend.now,
            queued=counts["queued"],
            running=counts["running"],
            dynqueued=counts["dynqueued"],
            finished=counts["finished"],
            total_jobs=len(server.jobs) + server.jobs_discarded,
            pending_events=self.backend.pending(),
            open_by_principal={p: len(ids) for p, ids in sorted(self._open.items())},
        )

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<SchedulerService {state} backend={self.backend.name!r}>"
