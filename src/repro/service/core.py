"""The wired policy core, extracted from the simulation facade.

:class:`PolicyCore` owns exactly the components that *decide*: the event
engine, the cluster model, the trace log, the RM server (job lifecycle and
the dynamic-request path) and the Maui scheduler with its DFS policies,
plus the optional telemetry and fault-injection attachments.  It contains
no driving loop of its own — that is the point of the extraction:

* :class:`repro.system.BatchSystem` wraps a core and drives it to
  completion in one call (the classic simulate-a-workload path);
* the :mod:`repro.service` backends wrap the *same* core and drive it
  incrementally from a long-lived asyncio service, which is what lets one
  policy implementation serve simulation, dry-run replay and (eventually)
  real resource-manager adapters.

Because both paths construct the stack through this one class, a workload
driven through the service against the simulator backend reproduces the
direct ``BatchSystem`` schedule bit for bit — the contract
``tests/test_service.py`` pins.
"""

from __future__ import annotations

import logging

from repro.cluster.machine import Cluster
from repro.maui.config import MauiConfig
from repro.maui.scheduler import MauiScheduler
from repro.metrics.collector import WorkloadMetrics
from repro.rms.server import Server
from repro.sim.engine import Engine
from repro.sim.events import TraceLog

__all__ = ["PolicyCore"]

log = logging.getLogger("repro.service.core")


class PolicyCore:
    """Engine + cluster + server + scheduler, wired once, driven elsewhere."""

    def __init__(
        self,
        num_nodes: int = 15,
        cores_per_node: int = 8,
        config: MauiConfig | None = None,
        *,
        cluster: Cluster | None = None,
        start_time: float = 0.0,
        telemetry=None,
        trace_maxlen: int | None = None,
        fault_model=None,
    ) -> None:
        self.engine = Engine(start_time=start_time)
        if cluster is None:
            dyn_nodes = 0
            if config is not None and config.use_dynamic_partition:
                # default fence: one node, overridable by passing a cluster
                dyn_nodes = 1
            cluster = Cluster.homogeneous(
                num_nodes, cores_per_node, dynamic_partition_nodes=dyn_nodes
            )
        self.cluster = cluster
        self.trace = TraceLog(maxlen=trace_maxlen)
        #: optional :class:`repro.obs.Telemetry`; None keeps every hook site
        #: a single attribute check (the benchmarked disabled path)
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.ensure_sampler(self.engine)
            self.cluster.attach_telemetry(telemetry, self.engine)
            if telemetry.ledger is not None:
                # wait timelines follow the lifecycle events; decisions are
                # mirrored into the trace for JSONL export
                telemetry.ledger.attach_trace(self.trace)
            if telemetry.profiler is not None:
                # the engine wraps every dispatch; scheduler phases nest
                # inside the owning dispatch automatically
                self.engine.profiler = telemetry.profiler
        self.server = Server(
            self.engine, self.cluster, self.trace, telemetry=telemetry
        )
        if telemetry is not None and telemetry.windows is not None:
            if telemetry.windows.total_cores is None:
                telemetry.windows.set_capacity(self.cluster.total_cores)
            self.server.attach_windows(
                telemetry.windows, fold_and_discard=telemetry.fold_and_discard
            )
        if telemetry is not None and telemetry.slo is not None:
            # breaches mirror into the trace, and into the ledger (when on)
            # so `why` can explain them through the causal chain
            telemetry.slo.attach_trace(self.trace, ledger=telemetry.ledger)
        self.scheduler = MauiScheduler(self.engine, self.cluster, self.server, config)
        #: optional :class:`repro.faults.FaultInjector`; built last so the
        #: failure trace replays against the fully wired stack.  A model
        #: that injects nothing leaves the run bit-identical to no model.
        self.fault_injector = None
        if fault_model is not None:
            from repro.faults import FaultInjector

            self.fault_injector = FaultInjector(self, fault_model)

    @property
    def config(self) -> MauiConfig:
        return self.scheduler.config

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    # run-cycle hooks (every driver brackets engine work with these)
    # ------------------------------------------------------------------
    def begin_cycle(self) -> None:
        """Arm telemetry for a stretch of engine work.

        Must be called *after* the initial workload is queued: the periodic
        sampler only re-arms while events are pending, so arming it against
        an empty engine would sample nothing.  Idempotent per cycle.
        """
        if self.telemetry is not None:
            self.telemetry.start_sampling()

    def end_cycle(self) -> None:
        """Close out fairness/SLO state after a stretch of engine work.

        A final share sample, then objective evaluation over still-open
        (trailing) window frames.  Both finalizers are idempotent, so
        drivers may bracket several cycles.
        """
        if self.telemetry is not None:
            if self.telemetry.slo is not None:
                self.telemetry.slo.finalize(self.engine.now)
            elif self.telemetry.fairness is not None:
                self.telemetry.fairness.finalize(self.engine.now)

    # ------------------------------------------------------------------
    def metrics(self) -> WorkloadMetrics:
        """Workload metrics over everything submitted so far."""
        return WorkloadMetrics.from_server(
            self.server, self.cluster, telemetry=self.telemetry
        )

    def __repr__(self) -> str:
        return f"<PolicyCore t={self.engine.now:.1f} {self.cluster!r}>"
