"""SLURM-style dynamic expansion: dependent helper jobs + allocation merge.

SLURM (paper Section V) supports expansion by letting a running job submit a
new job with a dependency marker and merging the allocations once the helper
starts.  Consequences the paper points out, both reproduced here:

* the dynamic request is prioritised by the *static* fairshare machinery —
  it waits in the ordinary queue instead of being weighed by dynamic
  fairness policies, so the expansion may arrive long after the trigger
  (or never, if the parent finishes first);
* releases must return whole helper-job allocations (our native
  ``tm_dynfree`` can return any subset).

:class:`SlurmEvolvingApp` mirrors :class:`~repro.apps.synthetic.EvolvingWorkApp`
but obtains resources by helper-job submission.  The helper carries the
parent's remaining walltime and merges via
:meth:`repro.rms.server.Server.merge_allocations` the moment it starts.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.metrics.collector import WorkloadMetrics
from repro.rms.tm import TMContext
from repro.sim.engine import EventHandle
from repro.system import BatchSystem
from repro.workloads.esp import (
    ESP_EXTRA_CORES,
    ESP_JOB_TYPES,
    ESP_REQUEST_FRACTION,
    esp_core_count,
)
from repro.workloads.spec import JobSpec, Workload
from repro.workloads.submission import esp_submission_times
from repro.apps.synthetic import FixedRuntimeApp

__all__ = ["SlurmEvolvingApp", "make_slurm_esp_workload", "run_slurm_esp"]


class _ExpansionStub:
    """The dependent helper job's payload: merge into the parent on start."""

    def __init__(self, owner: "SlurmEvolvingApp") -> None:
        self.owner = owner

    def launch(self, ctx: TMContext) -> None:
        self.owner._on_stub_started(ctx)


class SlurmEvolvingApp:
    """Evolving workload that expands the SLURM way.

    At the trigger fraction it submits a helper job (same user, sized like
    the expansion, walltime = parent's remaining walltime) instead of calling
    ``tm_dynget``.  Progress follows the same linear work model as
    :class:`~repro.apps.synthetic.EvolvingWorkApp`.
    """

    def __init__(
        self, system: BatchSystem, static_runtime: float, extra_cores: int = ESP_EXTRA_CORES
    ) -> None:
        if static_runtime <= 0:
            raise ValueError("static_runtime must be positive")
        self.system = system
        self.static_runtime = static_runtime
        self.extra_cores = extra_cores
        self._ctx: TMContext | None = None
        self._work_done = 0.0
        self._last_update = 0.0
        self._base_cores = 0
        self._speed = 1.0
        self._completion: EventHandle | None = None
        self.stub: Job | None = None

    # -- work model (identical to EvolvingWorkApp) -----------------------
    @property
    def speed(self) -> float:
        return self._speed

    def _advance(self) -> None:
        assert self._ctx is not None
        self._work_done += (self._ctx.now - self._last_update) * self._speed
        self._last_update = self._ctx.now

    def _sync_speed(self) -> None:
        assert self._ctx is not None
        self._speed = self._ctx.cores / self._base_cores

    def _reschedule_completion(self) -> None:
        assert self._ctx is not None
        if self._completion is not None:
            self._completion.cancel()
        remaining = max(0.0, self.static_runtime - self._work_done)
        self._completion = self._ctx.after(remaining / self.speed, self._complete)

    def _complete(self) -> None:
        assert self._ctx is not None
        self._advance()
        # the helper is pointless once the parent is done: cancel it
        if self.stub is not None and self.stub.state is JobState.QUEUED:
            self.system.server.cancel_queued(self.stub, reason="parent finished")
        self._ctx.finish()

    # -- lifecycle -------------------------------------------------------
    def launch(self, ctx: TMContext) -> None:
        self._ctx = ctx
        self._work_done = 0.0
        self._last_update = ctx.now
        self._base_cores = ctx.cores
        self._speed = 1.0
        self.stub = None
        self._reschedule_completion()
        trigger = ESP_REQUEST_FRACTION * self.static_runtime
        ctx.after(trigger, self._submit_stub)

    def _submit_stub(self) -> None:
        assert self._ctx is not None
        parent = self._ctx.job
        if not parent.is_active:
            return
        self._advance()
        remaining_walltime = max(1.0, parent.walltime_end - self._ctx.now)
        self.stub = Job(
            request=ResourceRequest(cores=self.extra_cores),
            walltime=remaining_walltime,
            user=parent.user,
            group=parent.group,
            # SLURM's expand idiom: "submitting a new job with a dependency
            # indicator and then merging the allocations" (paper Section V)
            depends_on=parent.job_id,
            dependency_type="after",
            metadata={"expansion_for": parent.job_id},
        )
        self.system.server.submit(self.stub, _ExpansionStub(self))

    def _on_stub_started(self, stub_ctx: TMContext) -> None:
        assert self._ctx is not None
        parent = self._ctx.job
        if not parent.is_active:  # parent gone between start and merge
            stub_ctx.finish()
            return
        self._advance()
        self.system.server.merge_allocations(stub_ctx.job, parent)
        self._sync_speed()
        self._reschedule_completion()


def make_slurm_esp_workload(
    system: BatchSystem, *, seed: int = 2014, walltime_factor: float = 1.0
) -> Workload:
    """Dynamic ESP where F-J expand via SLURM-style helper jobs."""
    total_cores = system.cluster.total_cores
    regular_types = [t for t in ESP_JOB_TYPES if t.letter != "Z"]
    z_type = next(t for t in ESP_JOB_TYPES if t.letter == "Z")
    ordered = []
    for jtype in regular_types:
        ordered.extend([jtype] * jtype.count)
    rng = np.random.default_rng(seed)
    rng.shuffle(ordered)
    regular_times, z_times = esp_submission_times(len(ordered), z_type.count)

    specs: list[JobSpec] = []
    for submit_time, jtype in zip(regular_times, ordered):
        cores = esp_core_count(jtype.fraction, total_cores)
        runtime = jtype.static_execution_time
        if jtype.is_evolving:
            factory = lambda rt=runtime: SlurmEvolvingApp(system, rt)
        else:
            factory = lambda rt=runtime: FixedRuntimeApp(rt)
        specs.append(
            JobSpec(
                submit_time=submit_time,
                request=ResourceRequest(cores=cores),
                walltime=runtime * walltime_factor,
                user=jtype.user,
                esp_type=jtype.letter,
                evolving=jtype.is_evolving,
                app_factory=factory,
            )
        )
    for submit_time in z_times:
        specs.append(
            JobSpec(
                submit_time=submit_time,
                request=ResourceRequest(cores=esp_core_count(z_type.fraction, total_cores)),
                walltime=z_type.static_execution_time * walltime_factor,
                user=z_type.user,
                esp_type="Z",
                top_priority=True,
                app_factory=(lambda rt=z_type.static_execution_time: FixedRuntimeApp(rt)),
            )
        )
    return Workload(specs=specs, name="slurm-esp")


def run_slurm_esp(
    *, num_nodes: int = 15, cores_per_node: int = 8, seed: int = 2014
) -> WorkloadMetrics:
    """Simulate the SLURM-style baseline on the paper's machine."""
    system = BatchSystem(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        config=MauiConfig(reservation_depth=5, reservation_delay_depth=5),
    )
    make_slurm_esp_workload(system, seed=seed).submit_to(system)
    system.run(max_events=5_000_000)
    # expansion helpers are an implementation artefact of this idiom, not
    # workload jobs: exclude them so throughput/waits compare like for like
    from repro.metrics.collector import JobRecord

    records = [
        JobRecord.from_job(j)
        for j in system.server.jobs.values()
        if "expansion_for" not in j.metadata
    ]
    return WorkloadMetrics(records, system.cluster.total_cores, system.trace)
