"""Comparison baselines from the paper's related-work discussion.

* :mod:`repro.baselines.guaranteeing` — the CooRMv2-style *guaranteeing*
  approach (Klein & Pérez, CLUSTER 2011): every evolving job preallocates its
  maximum resource need at submission (paper Section II-B).
* :mod:`repro.baselines.slurm_style` — the SLURM expand idiom (Section V):
  a running job submits a dependent helper job and merges its allocation,
  so dynamic requests compete through the *static* fairshare machinery.
"""

from repro.baselines.guaranteeing import (
    guaranteeing_summary,
    make_guaranteeing_esp_workload,
    run_guaranteeing_esp,
)
from repro.baselines.slurm_style import SlurmEvolvingApp, make_slurm_esp_workload, run_slurm_esp

__all__ = [
    "SlurmEvolvingApp",
    "guaranteeing_summary",
    "make_guaranteeing_esp_workload",
    "make_slurm_esp_workload",
    "run_guaranteeing_esp",
    "run_slurm_esp",
]
