"""The guaranteeing approach: preallocate the evolving job's maximum need.

CooRMv2 (paper ref. [20]) requires evolving jobs to declare at submission the
resources they *may* need; the scheduler preallocates them so every dynamic
request can be granted.  Section II-B argues this wastes resources and
starves rigid jobs in the rigid-dominated workloads typical today: the extra
cores are blocked (and charged) from job start even though the application
only grows — if at all — deep into its run.

We reproduce that argument quantitatively on the dynamic ESP workload: every
F-J job requests ``cores + 4`` up front and behaves like a dynamic job whose
request is granted instantly at its trigger point, i.e. it runs for
``0.16·SET + 0.84·SET·c/(c+4)`` seconds.  The cores sit idle for the first
16 % — the *wasted reservation* the summary reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.maui.config import MauiConfig
from repro.metrics.collector import WorkloadMetrics
from repro.system import BatchSystem
from repro.workloads.esp import (
    ESP_EXTRA_CORES,
    ESP_JOB_TYPES,
    ESP_REQUEST_FRACTION,
    esp_core_count,
    expected_dynamic_runtime,
)
from repro.workloads.spec import JobSpec, Workload
from repro.workloads.submission import esp_submission_times

import numpy as np

__all__ = [
    "make_guaranteeing_esp_workload",
    "run_guaranteeing_esp",
    "guaranteeing_summary",
    "GuaranteeingResult",
]


def make_guaranteeing_esp_workload(
    total_cores: int = 120, *, seed: int = 2014, walltime_factor: float = 1.0
) -> Workload:
    """The ESP workload with preallocated (max-sized) evolving jobs.

    Same job order, counts and submission protocol as
    :func:`repro.workloads.esp.make_esp_workload` for the same seed, so
    results are directly comparable.
    """
    regular_types = [t for t in ESP_JOB_TYPES if t.letter != "Z"]
    z_type = next(t for t in ESP_JOB_TYPES if t.letter == "Z")
    ordered = []
    for jtype in regular_types:
        ordered.extend([jtype] * jtype.count)
    rng = np.random.default_rng(seed)
    rng.shuffle(ordered)
    regular_times, z_times = esp_submission_times(len(ordered), z_type.count)

    specs: list[JobSpec] = []
    for submit_time, jtype in zip(regular_times, ordered):
        base_cores = esp_core_count(jtype.fraction, total_cores)
        if jtype.is_evolving:
            runtime = expected_dynamic_runtime(
                jtype.static_execution_time,
                base_cores,
                ESP_EXTRA_CORES,
                ESP_REQUEST_FRACTION,
            )
            cores = base_cores + ESP_EXTRA_CORES
        else:
            runtime = jtype.static_execution_time
            cores = base_cores
        specs.append(
            JobSpec(
                submit_time=submit_time,
                request=ResourceRequest(cores=cores),
                walltime=runtime * walltime_factor,
                user=jtype.user,
                esp_type=jtype.letter,
                app_factory=(lambda rt=runtime: FixedRuntimeApp(rt)),
            )
        )
    for submit_time in z_times:
        specs.append(
            JobSpec(
                submit_time=submit_time,
                request=ResourceRequest(cores=esp_core_count(z_type.fraction, total_cores)),
                walltime=z_type.static_execution_time * walltime_factor,
                user=z_type.user,
                esp_type="Z",
                top_priority=True,
                app_factory=(
                    lambda rt=z_type.static_execution_time: FixedRuntimeApp(rt)
                ),
            )
        )
    return Workload(specs=specs, name="guaranteeing-esp")


@dataclass(frozen=True)
class GuaranteeingResult:
    metrics: WorkloadMetrics
    #: core-seconds preallocated but unused before the trigger point
    wasted_reserved_core_seconds: float


def run_guaranteeing_esp(
    *, num_nodes: int = 15, cores_per_node: int = 8, seed: int = 2014
) -> GuaranteeingResult:
    """Simulate the guaranteeing baseline on the paper's machine."""
    system = BatchSystem(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        config=MauiConfig(reservation_depth=5, reservation_delay_depth=5),
    )
    make_guaranteeing_esp_workload(
        total_cores=num_nodes * cores_per_node, seed=seed
    ).submit_to(system)
    system.run(max_events=5_000_000)
    wasted = sum(
        ESP_EXTRA_CORES * ESP_REQUEST_FRACTION * t.static_execution_time * t.count
        for t in ESP_JOB_TYPES
        if t.is_evolving
    )
    return GuaranteeingResult(
        metrics=system.metrics(), wasted_reserved_core_seconds=wasted
    )


def guaranteeing_summary(seed: int = 2014) -> dict:
    """Guaranteeing vs the paper's non-guaranteeing Dyn-HP, side by side."""
    from repro.experiments.runner import run_esp_configuration_cached

    guaranteed = run_guaranteeing_esp(seed=seed)
    dyn_hp = run_esp_configuration_cached("Dyn-HP", seed=seed)
    return {
        "guaranteeing_time_min": guaranteed.metrics.workload_time_minutes,
        "dyn_hp_time_min": dyn_hp.metrics.workload_time_minutes,
        "guaranteeing_mean_wait_s": guaranteed.metrics.mean_wait,
        "dyn_hp_mean_wait_s": dyn_hp.metrics.mean_wait,
        "wasted_reserved_core_seconds": guaranteed.wasted_reserved_core_seconds,
    }
