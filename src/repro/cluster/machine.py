"""The cluster: a collection of nodes plus present-time allocation bookkeeping.

The :class:`Cluster` answers "what is free *right now*" and enforces the
no-oversubscription invariant.  Future availability (for reservations and
backfill) is handled by :class:`repro.cluster.profile.AvailabilityProfile`.
"""

from __future__ import annotations

import logging
from typing import Iterable, Sequence

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.node import Node, NodeState

__all__ = ["Cluster"]

log = logging.getLogger("repro.cluster.machine")


class Cluster:
    """A set of compute nodes with core-level allocation tracking."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ValueError("cluster needs at least one node")
        indices = [n.index for n in nodes]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate node indices")
        self.nodes: list[Node] = sorted(nodes, key=lambda n: n.index)
        self._by_index = {n.index: n for n in self.nodes}
        #: busy-core instruments; None keeps claim/release uninstrumented
        self._obs = None
        #: monotone counter bumped on every allocation/state change; lets
        #: callers (the scheduler's profile cache) detect staleness in O(1)
        self.version: int = 0
        #: free-map cache: the backfill path asks for the same partition
        #: (or shard) view many times per scheduling pass, and the answer
        #: only changes when :attr:`version` does — cache the scan, hand
        #: out copies (callers like :meth:`find_allocation` mutate theirs)
        self._free_cache: dict = {}
        self._free_cache_version: int = -1
        #: per-shard monotone version counters (installed by the sharded
        #: scheduler); index ``shard_versions[s]`` bumps whenever a claim,
        #: release or node state change touches a node of shard ``s``
        self.shard_versions: list[int] = []
        self._shard_of_node: dict[int, int] | None = None
        #: bumps only on node fail/recover — UP *capacity* (what shard
        #: routing keys on) never changes on a claim or release, so
        #: capability memos keyed here survive ordinary scheduling churn
        self.topology_version: int = 0

    def attach_telemetry(self, telemetry, clock) -> None:
        """Report busy-core changes to a telemetry facade.

        ``clock`` is the simulation engine (read for ``.now``); the busy
        integral is anchored at the current time and usage level.
        """
        if telemetry is None or not telemetry.enabled:
            return
        from repro.obs.instruments import ClusterInstruments

        self._obs = ClusterInstruments(telemetry, clock)
        telemetry.reset_busy_clock(clock.now, self.used_cores)
        self._obs.busy_cores.set(self.used_cores)

    @classmethod
    def homogeneous(
        cls, num_nodes: int, cores_per_node: int, *, dynamic_partition_nodes: int = 0
    ) -> "Cluster":
        """Build the usual homogeneous cluster.

        ``dynamic_partition_nodes`` moves the highest-indexed N nodes into
        the "dynamic" partition, which the scheduler may reserve for serving
        dynamic requests (Section II-B option 2).
        """
        if num_nodes <= 0 or cores_per_node <= 0:
            raise ValueError("num_nodes and cores_per_node must be positive")
        if not 0 <= dynamic_partition_nodes <= num_nodes:
            raise ValueError("dynamic_partition_nodes out of range")
        nodes = []
        for i in range(num_nodes):
            partition = (
                "dynamic" if i >= num_nodes - dynamic_partition_nodes else "batch"
            )
            nodes.append(Node(index=i, cores=cores_per_node, partition=partition))
        return cls(nodes)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node(self, index: int) -> Node:
        return self._by_index[index]

    @property
    def total_cores(self) -> int:
        """Installed cores over all nodes regardless of state."""
        return sum(n.cores for n in self.nodes)

    @property
    def up_cores(self) -> int:
        """Cores on nodes currently UP."""
        return sum(n.cores for n in self.nodes if n.state is NodeState.UP)

    @property
    def used_cores(self) -> int:
        return sum(n.used for n in self.nodes)

    @property
    def free_cores(self) -> int:
        return sum(n.free for n in self.nodes)

    def _cached_free(self, key, build) -> dict[int, int]:
        """Version-keyed memo for free-map scans; returns a private copy."""
        if self._free_cache_version != self.version:
            self._free_cache_version = self.version
            self._free_cache.clear()
        cached = self._free_cache.get(key)
        if cached is None:
            cached = self._free_cache[key] = build()
        return dict(cached)

    def free_by_node(self, *, partitions: Iterable[str] | None = None) -> dict[int, int]:
        """Free cores per UP node, optionally restricted to partitions."""
        wanted = frozenset(partitions) if partitions is not None else None

        def build() -> dict[int, int]:
            return {
                n.index: n.free
                for n in self.nodes
                if n.state is NodeState.UP
                and (wanted is None or n.partition in wanted)
            }

        return self._cached_free(("partitions", wanted), build)

    def free_for_nodes(self, node_indices: Iterable[int]) -> dict[int, int]:
        """Free cores per UP node over an explicit node index set.

        The sharded scheduler's per-shard profile builds go through this
        instead of scanning all nodes; the answer is cached per
        :attr:`version` like :meth:`free_by_node`.
        """
        wanted = tuple(node_indices)

        def build() -> dict[int, int]:
            return {
                idx: self._by_index[idx].free
                for idx in wanted
                if self._by_index[idx].state is NodeState.UP
            }

        return self._cached_free(("nodes", wanted), build)

    # ------------------------------------------------------------------
    # shard bookkeeping
    # ------------------------------------------------------------------
    def install_shard_index(
        self, shard_of_node: dict[int, int], num_shards: int
    ) -> None:
        """Enable per-shard version counters for the sharded scheduler."""
        self._shard_of_node = dict(shard_of_node)
        self.shard_versions = [0] * num_shards

    def _bump_shards_for(self, node_indices: Iterable[int]) -> None:
        mapping = self._shard_of_node
        if mapping is None:
            return
        for idx in node_indices:
            shard = mapping.get(idx)
            if shard is not None:
                self.shard_versions[shard] += 1

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def find_allocation(
        self,
        request: ResourceRequest,
        *,
        partitions: Iterable[str] | None = None,
        exclude_nodes: Iterable[int] = (),
    ) -> Allocation | None:
        """Find a concrete allocation satisfying ``request`` from free cores.

        Returns ``None`` when the request does not fit right now.  Placement
        policy: pack shaped requests on the emptiest eligible nodes; fill
        flexible requests from the *most*-loaded eligible nodes first so idle
        nodes stay whole for shaped requests (a standard anti-fragmentation
        heuristic).
        """
        free = self.free_by_node(partitions=partitions)
        for idx in exclude_nodes:
            free.pop(idx, None)
        if request.is_shaped:
            candidates = sorted(
                (idx for idx, f in free.items() if f >= request.ppn),
                key=lambda idx: (-free[idx], idx),
            )
            if len(candidates) < request.nodes:
                return None
            chosen = sorted(candidates[: request.nodes])
            return Allocation({idx: request.ppn for idx in chosen})
        if sum(free.values()) < request.cores:
            return None
        remaining = request.cores
        picks: dict[int, int] = {}
        for idx in sorted(free, key=lambda i: (free[i], i)):
            if free[idx] <= 0:
                continue
            take = min(free[idx], remaining)
            picks[idx] = take
            remaining -= take
            if remaining == 0:
                break
        assert remaining == 0
        return Allocation(picks)

    def claim(self, allocation: Allocation) -> None:
        """Mark the allocation's cores as used.

        Raises ``ValueError`` (leaving the cluster unchanged) if any node
        would be oversubscribed or is not UP.
        """
        for idx, count in allocation.items():
            node = self._by_index.get(idx)
            if node is None:
                raise ValueError(f"unknown node index {idx}")
            if node.state is not NodeState.UP:
                raise ValueError(f"{node.name} is {node.state.value}, cannot allocate")
            if node.free < count:
                raise ValueError(
                    f"{node.name} oversubscribed: {count} requested, {node.free} free"
                )
        for idx, count in allocation.items():
            self._by_index[idx].used += count
        self.version += 1
        self._bump_shards_for(allocation)
        if self._obs is not None:
            self._obs.on_busy_change(self.used_cores)

    def release(self, allocation: Allocation) -> None:
        """Return the allocation's cores to the free pool."""
        for idx, count in allocation.items():
            node = self._by_index.get(idx)
            if node is None:
                raise ValueError(f"unknown node index {idx}")
            if node.used < count:
                raise ValueError(
                    f"{node.name} releasing {count} cores but only {node.used} used"
                )
        for idx, count in allocation.items():
            self._by_index[idx].used -= count
        self.version += 1
        self._bump_shards_for(allocation)
        if self._obs is not None:
            self._obs.on_busy_change(self.used_cores)

    # ------------------------------------------------------------------
    # failures (extension used by fault-tolerance tests/examples)
    # ------------------------------------------------------------------
    def fail_node(self, index: int) -> bool:
        """Mark a node DOWN.  Caller is responsible for re-queueing jobs.

        Idempotent: failing a node that is already DOWN is a no-op and —
        crucially — does *not* bump :attr:`version`, so repeat transitions
        never spuriously invalidate the scheduler's profile cache or defeat
        its quiescence fingerprint.  Returns True when the state changed.
        """
        node = self._by_index[index]
        if node.state is NodeState.DOWN:
            return False
        node.state = NodeState.DOWN
        self.version += 1
        self.topology_version += 1
        self._bump_shards_for((index,))
        log.warning("node %s marked DOWN", node.name)
        return True

    def recover_node(self, index: int) -> bool:
        """Mark a node UP again.  Idempotent like :meth:`fail_node`."""
        node = self._by_index[index]
        if node.state is NodeState.UP:
            return False
        node.state = NodeState.UP
        self.version += 1
        self.topology_version += 1
        self._bump_shards_for((index,))
        log.info("node %s recovered", node.name)
        return True

    def __repr__(self) -> str:
        return (
            f"<Cluster {len(self.nodes)} nodes, "
            f"{self.used_cores}/{self.total_cores} cores used>"
        )
