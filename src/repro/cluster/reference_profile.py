"""Reference availability profile — the retained pre-vectorization kernel.

This is the original list-of-vectors implementation of
:class:`~repro.cluster.profile.AvailabilityProfile`, kept verbatim (modulo
the class name and the ``add_release`` atomicity fix) as the *oracle* for
the vectorized matrix kernel: ``tests/test_profile_equivalence.py`` drives
randomized interleaved operation sequences through both implementations and
asserts byte-identical results — breakpoints, free vectors, fit decisions
and chosen ``(start, allocation)`` pairs.

Do not optimise this module.  Its value is being obviously correct and
structurally independent from the production kernel; every clever trick
added here weakens the oracle.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

import numpy as np

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.profile import NoFitError

__all__ = ["ReferenceAvailabilityProfile"]


class ReferenceAvailabilityProfile:
    """Per-node free-core timelines: one Python list of vectors per interval."""

    def __init__(
        self,
        node_indices: Sequence[int],
        initial_free: dict[int, int],
        now: float,
        capacity: dict[int, int] | None = None,
    ) -> None:
        self._nodes: tuple[int, ...] = tuple(node_indices)
        self._pos = {idx: i for i, idx in enumerate(self._nodes)}
        self.now = float(now)
        free0 = np.array([initial_free.get(i, 0) for i in self._nodes], dtype=np.int64)
        if (free0 < 0).any():
            raise ValueError("negative initial free cores")
        self._times: list[float] = [self.now]
        self._free: list[np.ndarray] = [free0]
        if capacity is not None:
            self._capacity = np.array(
                [capacity.get(i, 0) for i in self._nodes], dtype=np.int64
            )
        else:
            self._capacity = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "ReferenceAvailabilityProfile":
        clone = object.__new__(ReferenceAvailabilityProfile)
        clone._nodes = self._nodes
        clone._pos = self._pos
        clone.now = self.now
        clone._times = list(self._times)
        clone._free = [vec.copy() for vec in self._free]
        clone._capacity = self._capacity
        return clone

    def _vector(self, allocation: Allocation) -> np.ndarray:
        vec = np.zeros(len(self._nodes), dtype=np.int64)
        for idx, count in allocation.items():
            pos = self._pos.get(idx)
            if pos is None:
                raise ValueError(f"node {idx} not part of this profile")
            vec[pos] = count
        return vec

    def _ensure_breakpoint(self, time: float) -> int:
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start {self._times[0]}")
        i = bisect.bisect_right(self._times, time) - 1
        if self._times[i] == time:
            return i
        self._times.insert(i + 1, time)
        self._free.insert(i + 1, self._free[i].copy())
        return i + 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def advance_to(self, time: float) -> None:
        """Move the profile start forward to ``time``, dropping history."""
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start {self._times[0]}")
        i = bisect.bisect_right(self._times, time) - 1
        del self._times[:i]
        del self._free[:i]
        self._times[0] = time
        self.now = float(time)

    def add_release(self, time: float, allocation: Allocation) -> None:
        """Cores become free from ``time`` onward.

        Atomic: the capacity check runs against the *would-be* values before
        any interval is mutated, so a rejected release leaves the profile
        untouched (the historic implementation mutated first and raised
        without rolling back).
        """
        vec = self._vector(allocation)
        start = self._ensure_breakpoint(max(time, self._times[0]))
        if self._capacity is not None:
            for i in range(start, len(self._free)):
                if (self._free[i] + vec > self._capacity).any():
                    raise ValueError("release exceeds node capacity in profile")
        for i in range(start, len(self._free)):
            self._free[i] += vec

    def add_claim(self, start: float, end: float, allocation: Allocation) -> None:
        if end <= start:
            raise ValueError(f"empty claim interval [{start}, {end})")
        vec = self._vector(allocation)
        i0 = self._ensure_breakpoint(max(start, self._times[0]))
        if math.isinf(end):
            i1 = len(self._times)
        else:
            i1 = self._ensure_breakpoint(end)
        for i in range(i0, i1):
            self._free[i] -= vec
            if (self._free[i] < 0).any():
                # roll back for exception safety
                for j in range(i0, i + 1):
                    self._free[j] += vec
                raise ValueError(
                    f"claim of {allocation!r} oversubscribes profile at "
                    f"t={self._times[i]}"
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> tuple[float, ...]:
        return tuple(self._times)

    def free_at(self, time: float) -> dict[int, int]:
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start")
        i = bisect.bisect_right(self._times, time) - 1
        return {idx: int(self._free[i][pos]) for idx, pos in self._pos.items()}

    def _window_min(self, start: float, duration: float) -> np.ndarray:
        i0 = bisect.bisect_right(self._times, start) - 1
        if i0 < 0:
            raise ValueError(f"window start {start} precedes profile start")
        if math.isinf(duration):
            i1 = len(self._times)
        else:
            end = start + duration
            i1 = bisect.bisect_left(self._times, end)
            i1 = max(i1, i0 + 1)
        window = self._free[i0:i1]
        return np.minimum.reduce(window)

    @staticmethod
    def _fit_from_min(free_min: np.ndarray, request: ResourceRequest,
                      nodes: tuple[int, ...]) -> Allocation | None:
        if request.is_shaped:
            eligible = [i for i, f in enumerate(free_min) if f >= request.ppn]
            if len(eligible) < request.nodes:
                return None
            # emptiest-first keeps busy nodes for flexible fills
            eligible.sort(key=lambda i: (-int(free_min[i]), i))
            chosen = sorted(eligible[: request.nodes])
            return Allocation({nodes[i]: request.ppn for i in chosen})
        if int(free_min.sum()) < request.cores:
            return None
        remaining = request.cores
        picks: dict[int, int] = {}
        order = sorted(range(len(nodes)), key=lambda i: (int(free_min[i]), i))
        for i in order:
            avail = int(free_min[i])
            if avail <= 0:
                continue
            take = min(avail, remaining)
            picks[nodes[i]] = take
            remaining -= take
            if remaining == 0:
                break
        assert remaining == 0
        return Allocation(picks)

    def fits_at(
        self, start: float, duration: float, request: ResourceRequest
    ) -> Allocation | None:
        free_min = self._window_min(start, duration)
        return self._fit_from_min(free_min, request, self._nodes)

    def earliest_fit(
        self,
        request: ResourceRequest,
        duration: float,
        after: float | None = None,
    ) -> tuple[float, Allocation]:
        lo = self._times[0] if after is None else max(after, self._times[0])
        candidates = [lo] + [t for t in self._times if t > lo]
        for t in candidates:
            alloc = self.fits_at(t, duration, request)
            if alloc is not None:
                return t, alloc
        raise NoFitError(f"{request} never fits (cluster too small or fragmented)")

    def __repr__(self) -> str:
        return (
            f"<ReferenceAvailabilityProfile {len(self._nodes)} nodes, "
            f"{len(self._times)} breakpoints from t={self._times[0]:.1f}>"
        )
