"""Cluster hardware model: nodes, core-level allocations, availability.

The paper's testbed is 15 compute nodes with 8 cores each (plus a separate
head node running the server and scheduler, which we model implicitly).  The
simulator tracks allocations at core granularity per node so both
core-fraction jobs (ESP) and whole-node requests (Quadflow, Fig. 12) are
represented exactly.
"""

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.cluster.node import Node, NodeState
from repro.cluster.profile import AvailabilityProfile, NoFitError

__all__ = [
    "Allocation",
    "AvailabilityProfile",
    "Cluster",
    "NoFitError",
    "Node",
    "NodeState",
    "ResourceRequest",
]
