"""Future resource availability as per-node step functions.

An :class:`AvailabilityProfile` answers "when, at the earliest, can a request
for X cores run for D seconds?" — the primitive underneath Maui-style
reservations, backfill, and this paper's delay measurement (Algorithm 2).

Representation: a sorted list of breakpoint times and one contiguous 2-D
``int64`` matrix of shape ``(breakpoints, nodes)`` holding the free cores of
every interval between consecutive breakpoints (the last interval extends to
+infinity).  Free cores change only at breakpoints, so the earliest feasible
start of any request is always at a breakpoint (or at the query's ``after``
bound): shifting a feasible window left within an interval only relaxes
constraints.

The matrix layout is what makes the kernel fast:

* ``add_claim``/``add_release`` are single vectorized slice operations —
  validity is checked against the *would-be* values before anything is
  written, so failures are atomic without rollback loops;
* ``earliest_fit`` answers **all** candidate starts in one pass: a sparse
  table of power-of-two span minima over the breakpoint axis (log₂ B
  vectorized ``np.minimum`` calls) yields every candidate's sliding-window
  minimum at once, replacing the historic per-candidate
  ``bisect`` + ``np.minimum.reduce`` scan (O(B²·nodes) per query).

``tests/test_profile_equivalence.py`` pins this kernel byte-for-byte to the
retained reference implementation in
:mod:`repro.cluster.reference_profile`.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

import numpy as np

from repro.cluster.allocation import Allocation, ResourceRequest

__all__ = ["AvailabilityProfile", "NoFitError"]

#: spare matrix rows allocated beyond the current breakpoint count, so the
#: first few claims on a fresh copy insert without reallocating
_HEADROOM = 8

#: at most this many candidate starts scan in plain Python in
#: earliest_fit; beyond it the vectorized sparse table wins
_PY_SCAN_MAX = 8


class NoFitError(Exception):
    """The request can never fit in this profile (exceeds capacity)."""


class AvailabilityProfile:
    """Per-node free-core timelines supporting claims, releases and queries."""

    def __init__(
        self,
        node_indices: Sequence[int],
        initial_free: dict[int, int],
        now: float,
        capacity: dict[int, int] | None = None,
    ) -> None:
        """
        :param node_indices: the eligible nodes, in a fixed order.
        :param initial_free: free cores on each eligible node at time ``now``.
        :param capacity: full core count per node; used to sanity-check that
            releases never push free cores above physical capacity.  Defaults
            to "unknown" (no upper check).
        """
        self._nodes: tuple[int, ...] = tuple(node_indices)
        self._pos = {idx: i for i, idx in enumerate(self._nodes)}
        self.now = float(now)
        free0 = np.array([initial_free.get(i, 0) for i in self._nodes], dtype=np.int64)
        if (free0 < 0).any():
            raise ValueError("negative initial free cores")
        self._times: list[float] = [self.now]
        # row i of the matrix is the free-core vector of interval
        # [times[i], times[i+1]); rows beyond len(_times) are spare capacity
        self._mat = np.empty((1 + _HEADROOM, len(self._nodes)), dtype=np.int64)
        self._mat[0] = free0
        # node index -> matrix column, vectorized: column j holds node
        # _sorted_nodes[j]'s position _sorted_cols[j]
        sorted_order = np.argsort(np.array(self._nodes, dtype=np.int64), kind="stable")
        self._sorted_nodes = np.array(self._nodes, dtype=np.int64)[sorted_order]
        self._sorted_cols = sorted_order
        if capacity is not None:
            self._capacity = np.array(
                [capacity.get(i, 0) for i in self._nodes], dtype=np.int64
            )
        else:
            self._capacity = None
        # step-function generation counter + memo for quick_reject: the
        # backfill scan probes the same instant for every queued job, so
        # the sorted free vector at that instant is derived once per
        # profile state and each probe is a pure-Python bisect
        self._gen = 0
        self._qr_memo: tuple[int, float, list[int], int] | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "AvailabilityProfile":
        """Deep copy for hypothetical what-if scheduling (one memcpy)."""
        clone = object.__new__(AvailabilityProfile)
        clone._nodes = self._nodes
        clone._pos = self._pos
        clone.now = self.now
        clone._times = list(self._times)
        n = len(self._times)
        clone._mat = np.empty((n + _HEADROOM, len(self._nodes)), dtype=np.int64)
        clone._mat[:n] = self._mat[:n]
        clone._sorted_nodes = self._sorted_nodes
        clone._sorted_cols = self._sorted_cols
        clone._capacity = self._capacity
        clone._gen = 0
        clone._qr_memo = None
        return clone

    @classmethod
    def merge(cls, profiles: Sequence["AvailabilityProfile"]) -> "AvailabilityProfile":
        """Gather disjoint per-shard profiles into one full-machine view.

        The cross-shard merge step of the sharded scheduler: shard
        profiles cover disjoint node sets and start at the same time, so
        the merged step function is the union of their breakpoints with
        each shard's rows resampled onto it (``searchsorted`` per shard)
        and the node columns concatenated in shard order.  Because shards
        are contiguous runs of the ascending node order, the concatenated
        node tuple reproduces the global node order — every query on the
        merged view answers exactly as on a monolithic build of the same
        state.  Cost: O(B_union · nodes), about one profile copy.
        """
        if not profiles:
            raise ValueError("merge needs at least one profile")
        if len(profiles) == 1:
            return profiles[0].copy()
        clone = object.__new__(cls)
        nodes: list[int] = []
        for p in profiles:
            nodes.extend(p._nodes)
        if len(set(nodes)) != len(nodes):
            raise ValueError("merged profiles must cover disjoint node sets")
        clone._nodes = tuple(nodes)
        clone._pos = {idx: i for i, idx in enumerate(clone._nodes)}
        times = sorted({t for p in profiles for t in p._times})
        clone.now = times[0]
        clone._times = list(times)
        n = len(times)
        times_arr = np.array(times)
        clone._mat = np.empty((n + _HEADROOM, len(clone._nodes)), dtype=np.int64)
        col = 0
        for p in profiles:
            pn = len(p._times)
            rows = np.searchsorted(np.array(p._times), times_arr, side="right") - 1
            np.clip(rows, 0, pn - 1, out=rows)
            width = len(p._nodes)
            clone._mat[:n, col : col + width] = p._mat[:pn][rows]
            col += width
        sorted_order = np.argsort(np.array(clone._nodes, dtype=np.int64), kind="stable")
        clone._sorted_nodes = np.array(clone._nodes, dtype=np.int64)[sorted_order]
        clone._sorted_cols = sorted_order
        if any(p._capacity is None for p in profiles):
            clone._capacity = None
        else:
            clone._capacity = np.concatenate([p._capacity for p in profiles])
        clone._gen = 0
        clone._qr_memo = None
        return clone

    def _vector(self, allocation: Allocation) -> np.ndarray:
        vec = np.zeros(len(self._nodes), dtype=np.int64)
        nodes, counts = allocation.arrays()
        if nodes.size:
            idx = np.searchsorted(self._sorted_nodes, nodes)
            oob = idx >= self._sorted_nodes.size
            missing = oob | (self._sorted_nodes[np.where(oob, 0, idx)] != nodes)
            if missing.any():
                unknown = int(nodes[int(np.argmax(missing))])
                raise ValueError(f"node {unknown} not part of this profile")
            vec[self._sorted_cols[idx]] = counts
        return vec

    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` (if new) and return its index."""
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start {self._times[0]}")
        i = bisect.bisect_right(self._times, time) - 1
        if self._times[i] == time:
            return i
        n = len(self._times)
        if n == self._mat.shape[0]:
            grown = np.empty((2 * n, len(self._nodes)), dtype=np.int64)
            grown[:n] = self._mat[:n]
            self._mat = grown
        # shift rows i+1..n-1 up by one and duplicate row i into the gap
        self._mat[i + 2 : n + 1] = self._mat[i + 1 : n]
        self._mat[i + 1] = self._mat[i]
        self._times.insert(i + 1, time)
        return i + 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def advance_to(self, time: float) -> None:
        """Move the profile start forward to ``time``, dropping history.

        Intervals entirely before ``time`` are discarded and the first
        surviving interval is clipped to start at ``time``; the step
        function on ``[time, ∞)`` is untouched, so every query at or after
        ``time`` answers exactly as before.  The scheduler's incremental
        profile maintenance advances a cached profile to the current sim
        time and then applies claim/release deltas, instead of rebuilding
        the matrix from scratch each iteration.
        """
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start {self._times[0]}")
        i = bisect.bisect_right(self._times, time) - 1
        if i > 0:
            n = len(self._times)
            self._mat[: n - i] = self._mat[i:n].copy()
            del self._times[:i]
        self._times[0] = time
        self.now = float(time)
        self._gen += 1

    def add_release(self, time: float, allocation: Allocation) -> None:
        """Cores become free from ``time`` onward (a running job's expected end).

        Atomic: the capacity check runs against the would-be values, so a
        rejected release leaves every interval untouched.
        """
        vec = self._vector(allocation)
        start = self._ensure_breakpoint(max(time, self._times[0]))
        block = self._mat[start : len(self._times)]
        if self._capacity is not None and (block + vec > self._capacity).any():
            raise ValueError("release exceeds node capacity in profile")
        block += vec
        self._gen += 1

    def add_claim(self, start: float, end: float, allocation: Allocation) -> None:
        """Cores are taken during ``[start, end)`` (a reservation).

        Raises ``ValueError`` if the claim would drive any node's free count
        negative — reservations must only be placed where the profile says
        the resources exist.  The check precedes the subtraction, so a
        failed claim is a no-op (modulo semantically-neutral breakpoint
        insertions, as in the historic rollback path).
        """
        if end <= start:
            raise ValueError(f"empty claim interval [{start}, {end})")
        vec = self._vector(allocation)
        i0 = self._ensure_breakpoint(max(start, self._times[0]))
        if math.isinf(end):
            i1 = len(self._times)
        else:
            i1 = self._ensure_breakpoint(end)
        block = self._mat[i0:i1]
        short = (block < vec).any(axis=1)
        if short.any():
            first_bad = i0 + int(np.argmax(short))
            raise ValueError(
                f"claim of {allocation!r} oversubscribes profile at "
                f"t={self._times[first_bad]}"
            )
        block -= vec
        self._gen += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> tuple[float, ...]:
        return tuple(self._times)

    def free_at(self, time: float) -> dict[int, int]:
        """Free cores per node at the given instant."""
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start")
        i = bisect.bisect_right(self._times, time) - 1
        row = self._mat[i]
        return {idx: int(row[pos]) for idx, pos in self._pos.items()}

    def free_total_at(self, time: float) -> int:
        """Total free cores across all nodes at the given instant (O(nodes)).

        An upper bound on what any window starting at ``time`` can offer —
        backfill uses it to discard hopeless candidates without a window scan.
        """
        if time < self._times[0]:
            raise ValueError(f"time {time} precedes profile start")
        i = bisect.bisect_right(self._times, time) - 1
        return int(self._mat[i].sum())

    def quick_reject(self, start: float, request: ResourceRequest) -> bool:
        """Cheap necessary-condition test: True means ``request`` provably
        cannot fit in any window starting at ``start``.

        Free cores at the window start bound every node's window minimum
        from above, so a request that already fails against the
        instantaneous free vector fails :meth:`fits_at` too — one O(nodes)
        reduction instead of a full window scan.  Backfill uses this to
        prune hopeless candidates on a packed cluster.
        """
        if start < self._times[0]:
            raise ValueError(f"time {start} precedes profile start")
        memo = self._qr_memo
        if memo is None or memo[0] != self._gen or memo[1] != start:
            row = self._mat[bisect.bisect_right(self._times, start) - 1]
            memo = (self._gen, start, np.sort(row).tolist(), int(row.sum()))
            self._qr_memo = memo
        if request.is_shaped:
            # entries >= ppn occupy the sorted tail; counting them via
            # bisect is exactly the (row >= ppn).sum() reduction
            free = memo[2]
            return len(free) - bisect.bisect_left(free, request.ppn) < request.nodes
        return memo[3] < request.cores

    def can_ever_fit(self, request: ResourceRequest) -> bool:
        """False when no instant in the profile offers enough resources —
        i.e. :meth:`earliest_fit` is guaranteed to raise :class:`NoFitError`
        for any duration.  One vectorized sweep over all intervals; window
        minima only shrink below the per-interval free vectors, so an
        instant-infeasible profile is window-infeasible everywhere.
        """
        mat = self._mat[: len(self._times)]
        if request.is_shaped:
            return bool(((mat >= request.ppn).sum(axis=1) >= request.nodes).any())
        return bool(mat.sum(axis=1).max() >= request.cores)

    def _window_min(self, start: float, duration: float) -> np.ndarray:
        """Element-wise minimum free cores over ``[start, start+duration)``."""
        i0 = bisect.bisect_right(self._times, start) - 1
        if i0 < 0:
            raise ValueError(f"window start {start} precedes profile start")
        if math.isinf(duration):
            i1 = len(self._times)
        else:
            end = start + duration
            i1 = bisect.bisect_left(self._times, end)
            # interval i covers [times[i], times[i+1]); the window touches
            # interval i1-1 at most.
            i1 = max(i1, i0 + 1)
        return self._mat[i0:i1].min(axis=0)

    def _all_window_mins(self, k0: int, duration: float) -> np.ndarray:
        """Sliding-window minima for every candidate start ``times[k0:]``.

        Row ``j`` is the element-wise free-core minimum over the window
        ``[times[k0+j], times[k0+j] + duration)`` — exactly what
        :meth:`_window_min` computes per candidate, but for all candidates
        at once.  Window lengths vary per candidate, so fixed-window prefix
        minima do not apply; instead a sparse table of power-of-two span
        minima over the breakpoint axis (log₂ B levels, each one vectorized
        ``np.minimum``) answers each window as the overlap of two spans.
        """
        n = len(self._times)
        mat = self._mat[:n]
        ks = np.arange(k0, n)
        if math.isinf(duration):
            ends = np.full(n - k0, n, dtype=np.intp)
        else:
            times_arr = np.array(self._times)
            ends = np.searchsorted(times_arr, times_arr[k0:] + duration, side="left")
            ends = np.maximum(ends, ks + 1)
        lengths = ends - ks
        levels = max(1, int(lengths.max()).bit_length())
        table = np.empty((levels, n, mat.shape[1]), dtype=np.int64)
        table[0] = mat
        for p in range(1, levels):
            span = 1 << (p - 1)
            np.minimum(
                table[p - 1, : n - span], table[p - 1, span:], out=table[p, : n - span]
            )
            table[p, n - span :] = table[p - 1, n - span :]
        # floor(log2(length)) via frexp: length = m * 2^e with m in [0.5, 1)
        p = np.frexp(lengths.astype(np.float64))[1].astype(np.intp) - 1
        half = np.left_shift(np.intp(1), p)
        return np.minimum(table[p, ks], table[p, ends - half])

    @staticmethod
    def _feasible_mask(mins: np.ndarray, request: ResourceRequest) -> np.ndarray:
        """Candidate rows of ``mins`` on which :meth:`_fit_from_min` succeeds."""
        if request.is_shaped:
            return (mins >= request.ppn).sum(axis=1) >= request.nodes
        return mins.sum(axis=1) >= request.cores

    @staticmethod
    def _fit_from_min(free_min: np.ndarray, request: ResourceRequest,
                      nodes: tuple[int, ...]) -> Allocation | None:
        """Pick a concrete allocation out of a per-node free-core vector."""
        if request.is_shaped:
            eligible = [i for i, f in enumerate(free_min) if f >= request.ppn]
            if len(eligible) < request.nodes:
                return None
            # emptiest-first keeps busy nodes for flexible fills
            eligible.sort(key=lambda i: (-int(free_min[i]), i))
            chosen = sorted(eligible[: request.nodes])
            return Allocation({nodes[i]: request.ppn for i in chosen})
        if int(free_min.sum()) < request.cores:
            return None
        remaining = request.cores
        picks: dict[int, int] = {}
        order = sorted(range(len(nodes)), key=lambda i: (int(free_min[i]), i))
        for i in order:
            avail = int(free_min[i])
            if avail <= 0:
                continue
            take = min(avail, remaining)
            picks[nodes[i]] = take
            remaining -= take
            if remaining == 0:
                break
        assert remaining == 0
        return Allocation(picks)

    def fits_at(
        self, start: float, duration: float, request: ResourceRequest
    ) -> Allocation | None:
        """A concrete allocation if ``request`` fits throughout the window."""
        free_min = self._window_min(start, duration)
        return self._fit_from_min(free_min, request, self._nodes)

    def earliest_fit(
        self,
        request: ResourceRequest,
        duration: float,
        after: float | None = None,
        *,
        probe_start: bool = True,
    ) -> tuple[float, Allocation]:
        """Earliest start ≥ ``after`` at which ``request`` fits for ``duration``.

        One vectorized pass: the sliding-window minima of every candidate
        breakpoint are computed at once (:meth:`_all_window_mins`) and the
        first feasible candidate wins; only that single candidate's concrete
        allocation is then materialised.  Raises :class:`NoFitError` when
        the request exceeds what the profile can ever offer.

        ``probe_start=False`` skips the initial window query at the bound
        itself — for callers that already proved :meth:`fits_at` fails
        there (the scheduler reserves only for jobs it just failed to
        start); the bound is the one candidate that is not a breakpoint,
        so the remaining scan is unaffected.
        """
        times = self._times
        lo = times[0] if after is None else max(after, times[0])
        if probe_start:
            # the query bound itself is the one candidate that need not be
            # a breakpoint; probe it with a plain window query first
            alloc = self.fits_at(lo, duration, request)
            if alloc is not None:
                return lo, alloc
        k0 = bisect.bisect_right(times, lo)
        n = len(times)
        if k0 < n:
            if n - k0 <= _PY_SCAN_MAX:
                hit = self._earliest_fit_small(k0, duration, request)
                if hit is not None:
                    return hit
            else:
                mins = self._all_window_mins(k0, duration)
                feasible = self._feasible_mask(mins, request)
                if feasible.any():
                    j = int(np.argmax(feasible))
                    alloc = self._fit_from_min(mins[j], request, self._nodes)
                    assert alloc is not None
                    return times[k0 + j], alloc
        raise NoFitError(f"{request} never fits (cluster too small or fragmented)")

    def _earliest_fit_small(
        self, k0: int, duration: float, request: ResourceRequest
    ) -> tuple[float, Allocation] | None:
        """Candidate scan for few candidates, in plain Python.

        With at most :data:`_PY_SCAN_MAX` candidate starts, the fixed cost
        of the vectorized sparse table (a dozen numpy calls) dwarfs the
        arithmetic; list comprehensions over the row values compute the
        same integer window minima and the same first feasible candidate.
        Every window here spans at most ``n - k0`` rows, so the whole scan
        is O(_PY_SCAN_MAX² · nodes) comparisons in the worst case.
        """
        times = self._times
        n = len(times)
        rows = self._mat[:n].tolist()
        shaped = request.is_shaped
        for k in range(k0, n):
            if math.isinf(duration):
                end = n
            else:
                end = bisect.bisect_left(times, times[k] + duration)
                if end <= k:
                    end = k + 1
            m = rows[k]
            for row in rows[k + 1 : end]:
                m = [a if a <= b else b for a, b in zip(m, row)]
            if shaped:
                ok = sum(1 for f in m if f >= request.ppn) >= request.nodes
            else:
                ok = sum(m) >= request.cores
            if ok:
                alloc = self._fit_from_min(
                    np.array(m, dtype=np.int64), request, self._nodes
                )
                assert alloc is not None
                return times[k], alloc
        return None

    def __repr__(self) -> str:
        return (
            f"<AvailabilityProfile {len(self._nodes)} nodes, "
            f"{len(self._times)} breakpoints from t={self._times[0]:.1f}>"
        )
