"""Resource requests and concrete allocations.

A :class:`ResourceRequest` is *what a job asks for* — either a flexible total
core count (ESP-style "fraction of the machine") or a Torque-style
``nodes=N:ppn=P`` shape.  An :class:`Allocation` is *what it got*: a concrete
mapping of node index to core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np


@dataclass(frozen=True, slots=True)
class ResourceRequest:
    """A resource requirement.

    Exactly one of the two forms must be used:

    * ``cores`` — a flexible total; the scheduler may spread it over any
      nodes (Torque ``procs=N`` semantics, used by the ESP jobs).
    * ``nodes`` + ``ppn`` — P cores on each of N distinct nodes (Torque
      ``nodes=N:ppn=P``, used by Quadflow and the Fig. 12 overhead study).
    """

    cores: int = 0
    nodes: int = 0
    ppn: int = 0

    def __post_init__(self) -> None:
        shaped = self.nodes > 0 or self.ppn > 0
        if shaped:
            if self.cores:
                raise ValueError("specify either cores= or nodes=/ppn=, not both")
            if self.nodes <= 0 or self.ppn <= 0:
                raise ValueError(f"nodes and ppn must both be positive: {self}")
        elif self.cores <= 0:
            raise ValueError(f"request must ask for at least one core: {self}")

    @property
    def is_shaped(self) -> bool:
        """True for ``nodes=N:ppn=P`` requests."""
        return self.nodes > 0

    @property
    def total_cores(self) -> int:
        """Total number of cores the request represents."""
        return self.nodes * self.ppn if self.is_shaped else self.cores

    def __str__(self) -> str:
        if self.is_shaped:
            return f"nodes={self.nodes}:ppn={self.ppn}"
        return f"procs={self.cores}"


class Allocation:
    """An immutable concrete assignment of cores on nodes.

    Behaves like a read-only mapping ``{node_index: core_count}`` and
    supports union (``+``) and subtraction (``-``) so dynamic expansion and
    partial release compose naturally::

        expanded = original + grant
        shrunk   = expanded - released
    """

    __slots__ = ("_cores_by_node", "_arrays")

    def __init__(self, cores_by_node: Mapping[int, int]) -> None:
        cleaned = {int(n): int(c) for n, c in cores_by_node.items() if c}
        for node, count in cleaned.items():
            if count < 0:
                raise ValueError(f"negative core count {count} on node {node}")
        self._cores_by_node = dict(sorted(cleaned.items()))
        self._arrays: tuple[np.ndarray, np.ndarray] | None = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(node_indices, core_counts)`` as parallel int64 arrays, sorted
        by node — the vectorized form the availability profile scatters
        into its free-core matrix.  Cached: allocations are immutable and
        the same allocation is claimed into many hypothetical profiles.
        """
        cached = self._arrays
        if cached is None:
            n = len(self._cores_by_node)
            cached = (
                np.fromiter(self._cores_by_node.keys(), dtype=np.int64, count=n),
                np.fromiter(self._cores_by_node.values(), dtype=np.int64, count=n),
            )
            self._arrays = cached
        return cached

    def __getstate__(self) -> dict:
        # the array cache is derived state; keep worker pickles lean
        return self._cores_by_node

    def __setstate__(self, state: dict) -> None:
        self._cores_by_node = state
        self._arrays = None

    @classmethod
    def empty(cls) -> "Allocation":
        return cls({})

    # -- mapping protocol ------------------------------------------------
    def __getitem__(self, node: int) -> int:
        return self._cores_by_node.get(node, 0)

    def __iter__(self) -> Iterator[int]:
        return iter(self._cores_by_node)

    def __len__(self) -> int:
        return len(self._cores_by_node)

    def __contains__(self, node: int) -> bool:
        return node in self._cores_by_node

    def items(self):
        return self._cores_by_node.items()

    def keys(self):
        return self._cores_by_node.keys()

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "Allocation") -> "Allocation":
        merged = dict(self._cores_by_node)
        for node, count in other.items():
            merged[node] = merged.get(node, 0) + count
        return Allocation(merged)

    def __sub__(self, other: "Allocation") -> "Allocation":
        result = dict(self._cores_by_node)
        for node, count in other.items():
            have = result.get(node, 0)
            if count > have:
                raise ValueError(
                    f"cannot release {count} cores on node {node}: only {have} held"
                )
            result[node] = have - count
        return Allocation(result)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return self._cores_by_node == other._cores_by_node

    def __hash__(self) -> int:
        return hash(tuple(self._cores_by_node.items()))

    # -- queries ---------------------------------------------------------
    @property
    def total_cores(self) -> int:
        """Total cores across all nodes."""
        return sum(self._cores_by_node.values())

    @property
    def node_indices(self) -> tuple[int, ...]:
        """Sorted node indices with at least one core allocated."""
        return tuple(self._cores_by_node)

    @property
    def is_empty(self) -> bool:
        return not self._cores_by_node

    def hostlist(self) -> list[str]:
        """Torque-style ``node007/0+node007/1`` host naming, one per core."""
        hosts: list[str] = []
        for node, count in self._cores_by_node.items():
            hosts.extend(f"node{node:03d}/{slot}" for slot in range(count))
        return hosts

    def subset(self, nodes: Mapping[int, int]) -> "Allocation":
        """The portion of this allocation covering the given node→cores map.

        Raises ``ValueError`` if the requested portion is not contained in
        this allocation (a job may only release cores it actually holds).
        """
        portion = Allocation(nodes)
        _ = self - portion  # containment check; raises if not contained
        return portion

    def __repr__(self) -> str:
        body = "+".join(f"n{n}:{c}" for n, c in self._cores_by_node.items())
        return f"<Allocation {self.total_cores}c {body or '(empty)'}>"
