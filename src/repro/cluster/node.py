"""Compute node model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeState(enum.Enum):
    """Operational state of a compute node."""

    UP = "up"
    DOWN = "down"
    #: Drained nodes finish their current jobs but accept no new work
    #: (used by the failure-injection tests and the spare-partition option).
    DRAINED = "drained"


@dataclass
class Node:
    """A compute node with a fixed number of cores.

    ``used`` tracks the number of cores currently allocated to running jobs;
    it is maintained by :class:`repro.cluster.machine.Cluster` and must never
    exceed ``cores``.
    """

    index: int
    cores: int
    state: NodeState = NodeState.UP
    used: int = field(default=0)
    #: Optional partition label ("batch" by default; the dynamic-partition
    #: option places some nodes in a "dynamic" partition reserved for
    #: evolving-job expansion).
    partition: str = "batch"

    @property
    def name(self) -> str:
        """Torque-style node name."""
        return f"node{self.index:03d}"

    @property
    def free(self) -> int:
        """Cores available for new allocations right now."""
        if self.state is not NodeState.UP:
            return 0
        return self.cores - self.used

    @property
    def is_idle(self) -> bool:
        """True when no core of this node is allocated."""
        return self.used == 0

    def __repr__(self) -> str:
        return (
            f"<Node {self.name} {self.used}/{self.cores} used"
            f" [{self.state.value}/{self.partition}]>"
        )
