"""Application models.

Applications interact with the batch system exclusively through the TM
interface (:class:`repro.rms.tm.TMContext`) — requesting resources with
``tm_dynget``, releasing them with ``tm_dynfree`` and reporting completion —
exactly like real MPI applications under the paper's extended Torque.
"""

from repro.apps.amr import AMRApp
from repro.apps.quadflow import (
    CYLINDER,
    FLAT_PLATE,
    QuadflowApp,
    QuadflowCase,
    QuadflowPhase,
)
from repro.apps.weather import Phenomenon, WeatherApp
from repro.apps.synthetic import (
    EvolvingWorkApp,
    FixedRuntimeApp,
    MalleableWorkApp,
    MoldableWorkApp,
)

__all__ = [
    "AMRApp",
    "CYLINDER",
    "EvolvingWorkApp",
    "FLAT_PLATE",
    "FixedRuntimeApp",
    "MalleableWorkApp",
    "MoldableWorkApp",
    "Phenomenon",
    "WeatherApp",
    "QuadflowApp",
    "QuadflowCase",
    "QuadflowPhase",
]
