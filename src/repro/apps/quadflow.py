"""Phase-based model of the Quadflow adaptive CFD solver (paper Sections II-A, IV-A).

Quadflow refines its computational grid after every adaptation phase; the
cell count — and with it the computational load — can grow sharply and
unpredictably.  The paper instruments two generic test cases:

* **FlatPlate** — laminar boundary layer at Mach 2.6; 2 adaptations; dynamic
  request threshold 3 000 cells/process; dynamic run 17 % faster than the
  16-core static run (≈3 h saved).
* **Cylinder** — supersonic flow at Mach 5.28; 5 adaptations; threshold
  15 000 cells/process; dynamic run 33 % faster (≈10 h saved).

Model
-----
Each phase carries a cell count and a nominal duration on the base
allocation.  The effective speed on ``c`` cores is ``min(c, cells/γ)`` where
``γ`` is the cells-per-process threshold: below the threshold there is too
little work per process for extra cores to help, which reproduces the
paper's observation that *"the time taken until the final grid adaptation
level is identical when executed with 16 or 32 cores"*.  Above the threshold
scaling is linear, so doubling the allocation halves the phase time.

After each grid adaptation the application checks the next phase's
cells-per-process ratio; if it exceeds the threshold it issues a single
``tm_dynget`` for as many additional cores as it currently holds (16 → 32 in
the paper's runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.rms.tm import TMContext
from repro.units import hours

__all__ = ["QuadflowPhase", "QuadflowCase", "QuadflowApp", "FLAT_PLATE", "CYLINDER"]


@dataclass(frozen=True, slots=True)
class QuadflowPhase:
    """One computation phase between grid adaptations.

    :param cells: grid cells during this phase (revealed by the preceding
        adaptation — unpredictable a priori).
    :param base_time: phase duration in seconds on ``base_cores`` cores.
    """

    cells: int
    base_time: float

    def __post_init__(self) -> None:
        if self.cells <= 0 or self.base_time <= 0:
            raise ValueError(f"invalid phase: {self}")


@dataclass(frozen=True)
class QuadflowCase:
    """A Quadflow test case: phase sequence plus the dynget threshold."""

    name: str
    phases: tuple[QuadflowPhase, ...]
    threshold_cells_per_proc: int
    base_cores: int = 16

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a case needs at least one phase")
        if self.threshold_cells_per_proc <= 0 or self.base_cores <= 0:
            raise ValueError("threshold and base_cores must be positive")

    def speed(self, cells: int, cores: int) -> float:
        """Effective parallel speed: linear until work-starved."""
        return min(float(cores), cells / float(self.threshold_cells_per_proc))

    def phase_time(self, index: int, cores: int) -> float:
        """Duration of phase ``index`` when run on ``cores`` cores."""
        phase = self.phases[index]
        return phase.base_time * self.speed(phase.cells, self.base_cores) / self.speed(
            phase.cells, cores
        )

    def total_time(self, cores: int) -> float:
        """Static execution time on a fixed allocation of ``cores``."""
        return sum(self.phase_time(i, cores) for i in range(len(self.phases)))

    def dynamic_schedule(self, expanded_cores: int) -> tuple[list[float], int | None]:
        """Phase times when expanding at the first threshold-exceeding phase.

        Returns ``(per-phase durations, index of first expanded phase)``;
        the expansion index is None when no phase crosses the threshold.
        """
        times: list[float] = []
        cores = self.base_cores
        expanded_at: int | None = None
        for i, phase in enumerate(self.phases):
            if (
                expanded_at is None
                and phase.cells / cores > self.threshold_cells_per_proc
            ):
                cores = expanded_cores
                expanded_at = i
            times.append(self.phase_time(i, cores))
        return times, expanded_at

    @property
    def adaptations(self) -> int:
        """Number of grid adaptations (phase transitions)."""
        return len(self.phases) - 1


#: FlatPlate: 2 adaptations; the final phase exceeds 3 000 cells/process on
#: 16 processes, a grant to 32 halves it — 3 h (17 %) total saving.
FLAT_PLATE = QuadflowCase(
    name="FlatPlate",
    phases=(
        QuadflowPhase(cells=20_000, base_time=hours(5.3)),
        QuadflowPhase(cells=44_000, base_time=hours(6.3)),
        QuadflowPhase(cells=100_000, base_time=hours(6.0)),
    ),
    threshold_cells_per_proc=3_000,
)

#: Cylinder: 5 adaptations; the bow-shock refinement makes the final phase
#: dominate — halving it saves 10 h (33 %).
CYLINDER = QuadflowCase(
    name="Cylinder",
    phases=(
        QuadflowPhase(cells=60_000, base_time=hours(1.5)),
        QuadflowPhase(cells=100_000, base_time=hours(2.0)),
        QuadflowPhase(cells=140_000, base_time=hours(2.0)),
        QuadflowPhase(cells=180_000, base_time=hours(2.2)),
        QuadflowPhase(cells=230_000, base_time=hours(2.3)),
        QuadflowPhase(cells=480_000, base_time=hours(20.0)),
    ),
    threshold_cells_per_proc=15_000,
)


class QuadflowApp:
    """Runs a :class:`QuadflowCase` inside the batch system.

    When ``dynamic`` is true the application requests additional whole nodes
    (doubling its core count) the first time a freshly adapted grid exceeds
    the cells-per-process threshold; one retry is attempted at the next
    adaptation if the request is rejected.

    Per-phase wall-clock durations are recorded into
    ``job.metadata["phase_times"]`` and the grant phase (if any) into
    ``job.metadata["expanded_at_phase"]`` for the Fig. 7 harness.
    """

    def __init__(self, case: QuadflowCase, *, dynamic: bool = True, ppn: int = 8) -> None:
        self.case = case
        self.dynamic = dynamic
        self.ppn = ppn
        self._ctx: TMContext | None = None
        self._phase = 0
        self._phase_times: list[float] = []
        self._expanded = False
        self._request_pending = False

    def launch(self, ctx: TMContext) -> None:
        self._ctx = ctx
        self._phase = 0
        self._phase_times = []
        self._expanded = False
        self._request_pending = False
        ctx.job.metadata["phase_times"] = self._phase_times
        ctx.job.metadata["expanded_at_phase"] = None
        self._begin_phase()

    # ------------------------------------------------------------------
    def _begin_phase(self) -> None:
        assert self._ctx is not None
        case = self.case
        phase = case.phases[self._phase]
        cores = self._ctx.cores
        if (
            self.dynamic
            and not self._expanded
            and not self._request_pending
            and phase.cells / cores > case.threshold_cells_per_proc
        ):
            # grid adaptation produced too many cells per process: grow
            extra_nodes = max(1, cores // self.ppn)
            self._request_pending = True
            self._ctx.tm_dynget(
                ResourceRequest(nodes=extra_nodes, ppn=self.ppn), self._on_answer
            )
            return  # phase starts once the request is resolved
        self._run_phase()

    def _on_answer(self, grant: Allocation | None) -> None:
        assert self._ctx is not None
        self._request_pending = False
        if grant is not None:
            self._expanded = True
            self._ctx.job.metadata["expanded_at_phase"] = self._phase
        self._run_phase()

    def _run_phase(self) -> None:
        assert self._ctx is not None
        duration = (
            self.case.phases[self._phase].base_time
            * self.case.speed(self.case.phases[self._phase].cells, self.case.base_cores)
            / self.case.speed(self.case.phases[self._phase].cells, self._ctx.cores)
        )
        self._phase_times.append(duration)
        self._ctx.after(duration, self._end_phase)

    def _end_phase(self) -> None:
        assert self._ctx is not None
        self._phase += 1
        if self._phase >= len(self.case.phases):
            self._ctx.finish()
            return
        self._begin_phase()

    def __repr__(self) -> str:
        return f"<QuadflowApp {self.case.name} phase={self._phase} dynamic={self.dynamic}>"
