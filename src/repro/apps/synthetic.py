"""Synthetic applications used by the ESP workloads.

The dynamic ESP benchmark (paper Section IV-B) assumes a *linear reduction*
of the execution time when an evolving job's dynamic request is granted: a
job that holds ``c`` cores and receives ``+k`` more executes its remaining
work at ``(c+k)/c`` times the base speed.  :class:`EvolvingWorkApp` models
exactly that as a work integral:

* total work ``W`` equals the static execution time (SET) in base-speed
  seconds,
* progress accrues at ``speed = current_cores / base_cores``,
* at the work fractions given by the job's
  :class:`~repro.jobs.evolution.EvolutionProfile` the application calls
  ``tm_dynget``; on rejection it retries at the profile's retry fractions and
  otherwise continues unchanged.

A job granted +4 cores at elapsed fraction *f* therefore finishes at
``f·SET + (1-f)·SET·c/(c+4)`` — and a grant at t=0 would reproduce the
Table I dynamic execution time (DET) column, ``SET·c/(c+4)``.
"""

from __future__ import annotations

from typing import Mapping

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.rms.tm import TMContext
from repro.sim.engine import EventHandle

__all__ = ["FixedRuntimeApp", "EvolvingWorkApp", "MoldableWorkApp", "MalleableWorkApp"]


class FixedRuntimeApp:
    """A rigid payload: runs for exactly ``runtime`` seconds, then exits.

    This is the original ESP synthetic application — its runtime does not
    depend on the allocation because ESP fixes each job type's execution
    time by construction.
    """

    def __init__(self, runtime: float) -> None:
        if runtime <= 0:
            raise ValueError(f"runtime must be positive: {runtime}")
        self.runtime = runtime

    def launch(self, ctx: TMContext) -> None:
        ctx.after(self.runtime, ctx.finish)

    def __repr__(self) -> str:
        return f"<FixedRuntimeApp {self.runtime:.0f}s>"


class EvolvingWorkApp:
    """Work-integral application honouring the job's evolution profile.

    Restartable: ``launch`` resets all progress, so a preempted job starts
    over (standard requeue semantics).

    :param static_runtime: the SET — seconds of work at base speed.
    :param release_at_fraction: optional work fraction at which the
        application gives back ``release_cores`` via ``tm_dynfree`` (models
        the deallocation workflow of paper Fig. 4; the dynamic ESP jobs do
        not use it).
    """

    def __init__(
        self,
        static_runtime: float,
        *,
        release_at_fraction: float | None = None,
        release_cores: int = 0,
        negotiation_timeout: float | None = None,
        checkpointable: bool = False,
    ) -> None:
        if static_runtime <= 0:
            raise ValueError(f"static_runtime must be positive: {static_runtime}")
        if release_at_fraction is not None and not 0 < release_at_fraction < 1:
            raise ValueError("release_at_fraction must be in (0, 1)")
        if negotiation_timeout is not None and negotiation_timeout <= 0:
            raise ValueError("negotiation_timeout must be positive")
        self.static_runtime = static_runtime
        self.release_at_fraction = release_at_fraction
        self.release_cores = release_cores
        #: when set, requests use the negotiation protocol (extension of the
        #: paper's Section III-C outlook): the batch system holds the request
        #: up to this many seconds instead of the profile's retry fractions,
        #: publishing availability estimates into
        #: ``job.metadata["availability_estimates"]``.
        self.negotiation_timeout = negotiation_timeout
        #: survive preemption with progress intact (Maui PREEMPTPOLICY
        #: CHECKPOINT): completed work is stashed at preemption and restored
        #: on relaunch instead of restarting from zero
        self.checkpointable = checkpointable
        # runtime state, reset by launch()
        self._ctx: TMContext | None = None
        self._work_done = 0.0
        self._last_update = 0.0
        self._base_cores = 0
        self._speed = 1.0
        self._completion: EventHandle | None = None
        self._step_index = 0
        self._attempt_index = 0

    # ------------------------------------------------------------------
    @property
    def speed(self) -> float:
        """Current progress rate relative to the base allocation.

        Tracked explicitly (not read live from the allocation) so progress
        over an elapsed interval is always charged at the speed that held
        *during* the interval — a grant callback fires after the allocation
        already grew, and reading the new width retroactively would credit
        un-earned work.
        """
        return self._speed

    def _sync_speed(self) -> None:
        """Adopt the current allocation width (call only right after _advance)."""
        assert self._ctx is not None
        self._speed = self._ctx.cores / self._base_cores

    @property
    def work_done(self) -> float:
        return self._work_done

    def _advance(self) -> None:
        assert self._ctx is not None
        now = self._ctx.now
        self._work_done += (now - self._last_update) * self.speed
        self._last_update = now

    def _time_to_fraction(self, fraction: float) -> float:
        """Seconds from now until ``work_done`` reaches ``fraction * W``."""
        target = fraction * self.static_runtime
        return max(0.0, (target - self._work_done) / self.speed)

    # ------------------------------------------------------------------
    def launch(self, ctx: TMContext) -> None:
        self._ctx = ctx
        self._work_done = (
            ctx.job.metadata.get("checkpoint_work", 0.0) if self.checkpointable else 0.0
        )
        self._last_update = ctx.now
        self._base_cores = ctx.cores
        self._speed = 1.0
        self._step_index = 0
        self._attempt_index = 0
        if self.checkpointable:
            ctx.register_checkpoint_handler(self._checkpoint)
        self._reschedule_completion()
        self._schedule_next_attempt()
        if self.release_at_fraction is not None:
            ctx.after(
                self._time_to_fraction(self.release_at_fraction), self._do_release
            )

    def _checkpoint(self) -> None:
        assert self._ctx is not None
        self._advance()
        self._ctx.job.metadata["checkpoint_work"] = self._work_done

    def _reschedule_completion(self) -> None:
        assert self._ctx is not None
        if self._completion is not None:
            self._completion.cancel()
        remaining = max(0.0, self.static_runtime - self._work_done)
        self._completion = self._ctx.after(remaining / self.speed, self._complete)

    def _complete(self) -> None:
        assert self._ctx is not None
        self._advance()
        self._ctx.finish()

    # ------------------------------------------------------------------
    # evolution protocol
    # ------------------------------------------------------------------
    def _current_step(self):
        evolution = self._ctx.job.evolution if self._ctx else None
        if evolution is None or self._step_index >= len(evolution.steps):
            return None
        return evolution.steps[self._step_index]

    def _schedule_next_attempt(self) -> None:
        step = self._current_step()
        if step is None:
            return
        fraction = step.attempt_fractions[self._attempt_index]
        assert self._ctx is not None
        self._ctx.after(self._time_to_fraction(fraction), self._issue_request)

    def _issue_request(self) -> None:
        step = self._current_step()
        if step is None:
            return
        assert self._ctx is not None
        if not self._ctx.job.is_active:
            return
        self._advance()
        if self.negotiation_timeout is not None:
            self._ctx.tm_dynget(
                step.request,
                self._on_answer,
                timeout=self.negotiation_timeout,
                on_estimate=self._on_estimate,
            )
        else:
            self._ctx.tm_dynget(step.request, self._on_answer)

    def _on_estimate(self, available_at: float) -> None:
        assert self._ctx is not None
        self._ctx.job.metadata.setdefault("availability_estimates", []).append(
            available_at
        )

    def _on_answer(self, grant: Allocation | None) -> None:
        assert self._ctx is not None
        step = self._current_step()
        assert step is not None
        self._advance()
        if grant is not None:
            self._sync_speed()  # remaining work now runs on the wider set
            self._reschedule_completion()
            self._step_index += 1
            self._attempt_index = 0
            self._schedule_next_attempt()
            return
        if self.negotiation_timeout is not None:
            # the batch system already held the request until the deadline;
            # retry fractions do not apply in negotiation mode
            self._step_index += 1
            self._attempt_index = 0
            self._schedule_next_attempt()
            return
        self._attempt_index += 1
        if self._attempt_index < len(step.attempt_fractions):
            self._schedule_next_attempt()
        else:
            # all attempts exhausted: continue with the current allocation
            self._step_index += 1
            self._attempt_index = 0
            self._schedule_next_attempt()

    # ------------------------------------------------------------------
    def _do_release(self) -> None:
        """Give back ``release_cores``, highest node indices first."""
        assert self._ctx is not None
        if not self._ctx.job.is_active or self.release_cores <= 0:
            return
        self._advance()
        allocation = self._ctx.allocation
        ms = min(allocation.node_indices)
        remaining = self.release_cores
        give: dict[int, int] = {}
        for node in sorted(allocation.node_indices, reverse=True):
            if remaining == 0:
                break
            held = allocation[node]
            # never strip the mother superior's last core
            available = held - 1 if node == ms else held
            take = min(available, remaining)
            if take > 0:
                give[node] = take
                remaining -= take
        if give:
            self._ctx.tm_dynfree(give)
            self._sync_speed()
            self._reschedule_completion()  # speed dropped; completion moves out

    def __repr__(self) -> str:
        return f"<EvolvingWorkApp W={self.static_runtime:.0f}s done={self._work_done:.0f}>"


class MoldableWorkApp(EvolvingWorkApp):
    """A moldable payload: accepts any start size within [min_cores, request].

    The *scheduler* decides the size once, before the job starts (paper
    Section I's second job class).  The work integral is normalised to the
    *requested* size: started on fewer cores, the job simply runs
    proportionally longer — so walltimes should cover the worst (floor-sized)
    case.
    """

    def __init__(self, static_runtime: float) -> None:
        super().__init__(static_runtime)

    def launch(self, ctx: TMContext) -> None:
        super().launch(ctx)
        # normalise speed to the requested size rather than the granted one
        self._base_cores = ctx.job.request.total_cores
        self._sync_speed()
        self._reschedule_completion()

    def __repr__(self) -> str:
        return f"<MoldableWorkApp W={self.static_runtime:.0f}s speed={self._speed:.2f}>"


class MalleableWorkApp(EvolvingWorkApp):
    """A malleable payload: the *scheduler* may shrink it at runtime.

    Shares the linear work-integral model of :class:`EvolvingWorkApp` but
    registers a shrink handler with TM: when the batch system asks for cores
    back (to serve a dynamic request — paper Section II-B, resource source
    #3), the application releases everything above ``min_cores``, slows
    down proportionally, and keeps computing.  Its job should be submitted
    with ``flexibility=JobFlexibility.MALLEABLE`` and a walltime that covers
    the worst-case (fully shrunk) runtime.
    """

    def __init__(self, static_runtime: float, *, min_cores: int = 1) -> None:
        super().__init__(static_runtime)
        if min_cores < 1:
            raise ValueError(f"min_cores must be at least 1: {min_cores}")
        self.min_cores = min_cores
        self.shrunk_by = 0

    def launch(self, ctx: TMContext) -> None:
        super().launch(ctx)
        self.shrunk_by = 0
        ctx.register_shrink_handler(self._on_shrink_request)

    def _on_shrink_request(self, cores_wanted: int) -> int:
        assert self._ctx is not None
        if not self._ctx.job.is_active:
            return 0
        self._advance()
        allocation = self._ctx.allocation
        affordable = max(0, allocation.total_cores - self.min_cores)
        target = min(cores_wanted, affordable)
        if target == 0:
            return 0
        ms = min(allocation.node_indices)
        give: dict[int, int] = {}
        remaining = target
        for node in sorted(allocation.node_indices, reverse=True):
            if remaining == 0:
                break
            held = allocation[node]
            available = held - 1 if node == ms else held
            take = min(available, remaining)
            if take > 0:
                give[node] = take
                remaining -= take
        if not give or not self._ctx.tm_dynfree(give):
            return 0
        released = target - remaining
        self.shrunk_by += released
        self._sync_speed()
        self._reschedule_completion()
        return released

    def __repr__(self) -> str:
        return (
            f"<MalleableWorkApp W={self.static_runtime:.0f}s "
            f"min={self.min_cores} shrunk={self.shrunk_by}>"
        )
