"""Nested weather-simulation model (paper Section I, ref. [5]).

The introduction motivates dynamic allocation with "weather simulations that
require simultaneous execution of nested simulations to track multiple
weather phenomena": when a storm appears, a nested high-resolution
simulation must run *alongside* the main forecast without stealing its
resources; when the storm dissipates, those resources should return to the
pool.

:class:`WeatherApp` models exactly that lifecycle — the only application in
this repository that repeatedly grows *and* shrinks within one run:

* the main forecast runs for a fixed duration on its static allocation;
* phenomena appear at seeded random times and last random durations;
* each appearance issues ``tm_dynget`` for a nest-sized allocation (the
  forecast continues regardless of the outcome — a missed nest degrades
  forecast quality, recorded per phenomenon);
* each dissipation returns the nest's cores with ``tm_dynfree``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.rms.tm import TMContext

__all__ = ["Phenomenon", "WeatherApp"]


@dataclass
class Phenomenon:
    """One tracked weather event and the outcome of its nest request."""

    index: int
    appears_at: float
    duration: float
    cores: int
    tracked: bool = False
    #: node -> cores actually granted for the nest
    nest: dict[int, int] = field(default_factory=dict)

    @property
    def dissipates_at(self) -> float:
        return self.appears_at + self.duration


class WeatherApp:
    """Main forecast plus dynamically allocated nested simulations."""

    def __init__(
        self,
        runtime: float,
        *,
        num_phenomena: int = 3,
        nest_cores: int = 4,
        phenomenon_duration: tuple[float, float] = (300.0, 900.0),
        seed: int = 0,
    ) -> None:
        if runtime <= 0:
            raise ValueError(f"runtime must be positive: {runtime}")
        if num_phenomena < 0 or nest_cores <= 0:
            raise ValueError("invalid phenomena parameters")
        self.runtime = runtime
        self.num_phenomena = num_phenomena
        self.nest_cores = nest_cores
        self.phenomenon_duration = phenomenon_duration
        self.seed = seed
        self.phenomena: list[Phenomenon] = []
        self._ctx: TMContext | None = None
        self._pending: Phenomenon | None = None

    # ------------------------------------------------------------------
    def launch(self, ctx: TMContext) -> None:
        self._ctx = ctx
        self._pending = None
        rng = np.random.default_rng(self.seed)
        self.phenomena = []
        lo, hi = self.phenomenon_duration
        for i in range(self.num_phenomena):
            appears = float(rng.uniform(0.05, 0.7) * self.runtime)
            duration = float(rng.uniform(lo, hi))
            self.phenomena.append(
                Phenomenon(
                    index=i, appears_at=appears, duration=duration, cores=self.nest_cores
                )
            )
        ctx.job.metadata["phenomena"] = self.phenomena
        for phenomenon in self.phenomena:
            ctx.after(phenomenon.appears_at, self._on_appearance, phenomenon)
        ctx.after(self.runtime, self._finish)

    # ------------------------------------------------------------------
    def _on_appearance(self, phenomenon: Phenomenon) -> None:
        assert self._ctx is not None
        if not self._ctx.job.is_active:
            return
        if self._pending is not None:
            # one request in flight at a time (TM protocol); an overlapping
            # appearance goes untracked, like a saturated forecast system
            return
        self._pending = phenomenon
        self._ctx.tm_dynget(
            ResourceRequest(cores=phenomenon.cores),
            lambda grant: self._on_answer(phenomenon, grant),
        )

    def _on_answer(self, phenomenon: Phenomenon, grant: Allocation | None) -> None:
        assert self._ctx is not None
        self._pending = None
        if grant is None:
            return  # phenomenon tracked at coarse resolution only
        phenomenon.tracked = True
        phenomenon.nest = dict(grant.items())
        # release when the phenomenon dissipates; if that falls after the
        # forecast ends, job teardown returns the nest with everything else
        release_in = max(0.0, phenomenon.dissipates_at - self._elapsed())
        self._ctx.after(release_in, self._on_dissipation, phenomenon)

    def _elapsed(self) -> float:
        assert self._ctx is not None
        assert self._ctx.job.start_time is not None
        return self._ctx.now - self._ctx.job.start_time

    def _on_dissipation(self, phenomenon: Phenomenon) -> None:
        assert self._ctx is not None
        if not self._ctx.job.is_active or not phenomenon.nest:
            return
        self._ctx.tm_dynfree(phenomenon.nest)
        phenomenon.nest = {}

    def _finish(self) -> None:
        assert self._ctx is not None
        self._ctx.finish()

    @property
    def tracked_count(self) -> int:
        return sum(1 for p in self.phenomena if p.tracked)

    def __repr__(self) -> str:
        return (
            f"<WeatherApp {self.runtime:.0f}s "
            f"{self.tracked_count}/{len(self.phenomena)} tracked>"
        )
