"""A generic adaptive-mesh-refinement application model.

The paper motivates evolving jobs with AMR codes whose grids grow
unpredictably (Section II-A).  :class:`AMRApp` models that class directly:
a seeded random walk over refinement factors, a per-process cell threshold
that triggers ``tm_dynget``, and an optional per-node memory limit — if the
cells-per-node count exceeds the memory capacity and no grant arrives, the
job *aborts*, reproducing the "job abortion" risk the introduction describes
for under-allocated evolving applications.

This app is used by the extension examples and the failure-injection tests;
the ESP reproduction itself uses the deterministic
:class:`~repro.apps.synthetic.EvolvingWorkApp`.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.allocation import Allocation, ResourceRequest
from repro.rms.tm import TMContext

__all__ = ["AMRApp"]


class AMRApp:
    """Stochastic AMR solver with threshold-triggered dynamic requests.

    :param initial_cells: grid size of the first phase.
    :param num_adaptations: grid adaptations to perform.
    :param growth_low/growth_high: per-adaptation multiplicative growth is
        drawn uniformly from this range (growth < 1 coarsens the grid).
    :param seconds_per_cell: work per cell per phase at speed 1; phase time
        is ``cells * seconds_per_cell / cores``.
    :param threshold_cells_per_proc: request extra resources beyond this.
    :param cells_per_proc_limit: hard memory limit; exceeding it without a
        grant aborts the job (None disables).
    :param extra_cores: size of each dynamic request.
    :param seed: RNG seed — runs are reproducible.
    """

    def __init__(
        self,
        *,
        initial_cells: int = 50_000,
        num_adaptations: int = 4,
        growth_low: float = 1.0,
        growth_high: float = 2.2,
        seconds_per_cell: float = 0.01,
        threshold_cells_per_proc: int = 10_000,
        cells_per_proc_limit: int | None = None,
        extra_cores: int = 4,
        seed: int = 0,
    ) -> None:
        if initial_cells <= 0 or num_adaptations < 0:
            raise ValueError("invalid AMR parameters")
        if growth_low > growth_high or growth_low <= 0:
            raise ValueError("invalid growth range")
        self.initial_cells = initial_cells
        self.num_adaptations = num_adaptations
        self.growth_low = growth_low
        self.growth_high = growth_high
        self.seconds_per_cell = seconds_per_cell
        self.threshold_cells_per_proc = threshold_cells_per_proc
        self.cells_per_proc_limit = cells_per_proc_limit
        self.extra_cores = extra_cores
        self.seed = seed
        self._ctx: TMContext | None = None
        self._cells = 0
        self._phase = 0
        self._rng: np.random.Generator | None = None

    def launch(self, ctx: TMContext) -> None:
        self._ctx = ctx
        self._rng = np.random.default_rng(self.seed)
        self._cells = self.initial_cells
        self._phase = 0
        ctx.job.metadata["amr_cells"] = [self.initial_cells]
        self._begin_phase()

    # ------------------------------------------------------------------
    def _cells_per_proc(self) -> float:
        assert self._ctx is not None
        return self._cells / self._ctx.cores

    def _begin_phase(self) -> None:
        assert self._ctx is not None
        if (
            self._cells_per_proc() > self.threshold_cells_per_proc
            and self._ctx.job.evolution is not None
        ):
            self._ctx.tm_dynget(
                ResourceRequest(cores=self.extra_cores), self._on_answer
            )
            return
        if not self._check_memory():
            return
        self._run_phase()

    def _on_answer(self, grant: Allocation | None) -> None:
        # granted or not, the solver continues — unless memory is blown
        if not self._check_memory():
            return
        self._run_phase()

    def _check_memory(self) -> bool:
        """Abort (walltime exhaustion surrogate: immediate out-of-memory)."""
        assert self._ctx is not None
        if (
            self.cells_per_proc_limit is not None
            and self._cells_per_proc() > self.cells_per_proc_limit
        ):
            self._ctx.job.metadata["abort_reason"] = "out_of_memory"
            self._ctx._server.abort_job(self._ctx.job, "out_of_memory")
            return False
        return True

    def _run_phase(self) -> None:
        assert self._ctx is not None
        duration = self._cells * self.seconds_per_cell / self._ctx.cores
        self._ctx.after(duration, self._end_phase)

    def _end_phase(self) -> None:
        assert self._ctx is not None and self._rng is not None
        self._phase += 1
        if self._phase > self.num_adaptations:
            self._ctx.finish()
            return
        growth = float(self._rng.uniform(self.growth_low, self.growth_high))
        self._cells = max(1, int(self._cells * growth))
        self._ctx.job.metadata["amr_cells"].append(self._cells)
        self._begin_phase()

    def __repr__(self) -> str:
        return f"<AMRApp cells={self._cells} phase={self._phase}/{self.num_adaptations}>"
