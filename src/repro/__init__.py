"""repro — a batch system with fair scheduling for evolving applications.

A faithful, laptop-scale reproduction of Prabhakaran et al., *"A Batch
System with Fair Scheduling for Evolving Applications"* (ICPP 2014): a
Torque/Maui-style batch stack (server, moms, TM interface, scheduler) as a
deterministic discrete-event simulation, extended with the paper's dynamic
allocation facilities (``tm_dynget``/``tm_dynfree``), the extended scheduling
iteration (Algorithm 2) and the dynamic fairness (DFS) policies.

Quickstart
----------
>>> from repro import BatchSystem, MauiConfig
>>> from repro.workloads import make_esp_workload
>>> system = BatchSystem(num_nodes=15, cores_per_node=8, config=MauiConfig())
>>> jobs = make_esp_workload(total_cores=120, dynamic=True).submit_to(system)
>>> system.run()
>>> print(system.metrics())
"""

from repro.cluster import Allocation, Cluster, Node, ResourceRequest
from repro.jobs import EvolutionProfile, EvolutionStep, Job, JobFlexibility, JobState
from repro.maui import (
    DFSConfig,
    DFSPolicy,
    MauiConfig,
    MauiScheduler,
    PrincipalLimits,
    parse_maui_config,
)
from repro.metrics import WorkloadMetrics
from repro.rms import Server, TMContext
from repro.sim import Engine, EventKind, TraceLog
from repro.system import BatchSystem

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "BatchSystem",
    "Cluster",
    "DFSConfig",
    "DFSPolicy",
    "Engine",
    "EvolutionProfile",
    "EvolutionStep",
    "EventKind",
    "Job",
    "JobFlexibility",
    "JobState",
    "MauiConfig",
    "MauiScheduler",
    "Node",
    "PrincipalLimits",
    "ResourceRequest",
    "Server",
    "TMContext",
    "TraceLog",
    "WorkloadMetrics",
    "parse_maui_config",
    "__version__",
]
