"""The complete dynamic batch system, wired together.

:class:`BatchSystem` is the public facade most users want: it builds the
engine, cluster, server and scheduler, lets you submit jobs (immediately or
at future times), runs the simulation and hands back
:class:`~repro.metrics.collector.WorkloadMetrics`.

The wiring itself lives in :class:`repro.service.core.PolicyCore` — the
policy core extracted for the always-on scheduler service
(:mod:`repro.service`).  ``BatchSystem`` composes a core and drives it to
completion in one call; the service backends drive the *same* core
incrementally, which is why a workload pushed through the service
reproduces the direct run bit for bit.

Example
-------
>>> from repro import BatchSystem, MauiConfig
>>> from repro.rms.client import qsub
>>> system = BatchSystem(num_nodes=4, cores_per_node=8)
>>> job = qsub(system.server, cores=8, walltime=600, user="alice")
>>> system.run()
>>> job.state.value
'completed'
"""

from __future__ import annotations

import logging

from repro.cluster.machine import Cluster
from repro.jobs.job import Job
from repro.maui.config import MauiConfig
from repro.metrics.collector import WorkloadMetrics
from repro.rms.server import Application
from repro.service.core import PolicyCore

__all__ = ["BatchSystem"]

log = logging.getLogger("repro.system")


class BatchSystem:
    """Engine + cluster + server + scheduler in one object."""

    def __init__(
        self,
        num_nodes: int = 15,
        cores_per_node: int = 8,
        config: MauiConfig | None = None,
        *,
        cluster: Cluster | None = None,
        start_time: float = 0.0,
        telemetry=None,
        trace_maxlen: int | None = None,
        fault_model=None,
    ) -> None:
        self.core = PolicyCore(
            num_nodes,
            cores_per_node,
            config,
            cluster=cluster,
            start_time=start_time,
            telemetry=telemetry,
            trace_maxlen=trace_maxlen,
            fault_model=fault_model,
        )
        # facade: the historical attribute surface, aliased to the core
        self.engine = self.core.engine
        self.cluster = self.core.cluster
        self.trace = self.core.trace
        self.telemetry = self.core.telemetry
        self.server = self.core.server
        self.scheduler = self.core.scheduler
        self.fault_injector = self.core.fault_injector

    @property
    def config(self) -> MauiConfig:
        return self.scheduler.config

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    def submit(self, job: Job, app: Application | None = None) -> Job:
        """Submit a job right now."""
        return self.server.submit(job, app)

    def submit_at(self, time: float, job: Job, app: Application | None = None) -> None:
        """Schedule a future submission (the workload generators use this)."""
        self.engine.at(time, self.server.submit, job, app)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the simulation to completion (or ``until``)."""
        self.core.begin_cycle()
        processed = self.engine.run(until=until, max_events=max_events)
        self.core.end_cycle()
        log.info(
            "run finished: t=%.1f, %d events processed, %d trace events recorded",
            self.engine.now,
            processed,
            self.trace.total_recorded,
        )
        return processed

    def metrics(self) -> WorkloadMetrics:
        """Workload metrics over everything submitted so far."""
        return self.core.metrics()

    def __repr__(self) -> str:
        return f"<BatchSystem t={self.engine.now:.1f} {self.cluster!r}>"
