"""The complete dynamic batch system, wired together.

:class:`BatchSystem` is the public facade most users want: it builds the
engine, cluster, server and scheduler, lets you submit jobs (immediately or
at future times), runs the simulation and hands back
:class:`~repro.metrics.collector.WorkloadMetrics`.

Example
-------
>>> from repro import BatchSystem, MauiConfig
>>> from repro.rms.client import qsub
>>> system = BatchSystem(num_nodes=4, cores_per_node=8)
>>> job = qsub(system.server, cores=8, walltime=600, user="alice")
>>> system.run()
>>> job.state.value
'completed'
"""

from __future__ import annotations

import logging

from repro.cluster.machine import Cluster
from repro.jobs.job import Job
from repro.maui.config import MauiConfig
from repro.maui.scheduler import MauiScheduler
from repro.metrics.collector import WorkloadMetrics
from repro.rms.server import Application, Server
from repro.sim.engine import Engine
from repro.sim.events import TraceLog

__all__ = ["BatchSystem"]

log = logging.getLogger("repro.system")


class BatchSystem:
    """Engine + cluster + server + scheduler in one object."""

    def __init__(
        self,
        num_nodes: int = 15,
        cores_per_node: int = 8,
        config: MauiConfig | None = None,
        *,
        cluster: Cluster | None = None,
        start_time: float = 0.0,
        telemetry=None,
        trace_maxlen: int | None = None,
        fault_model=None,
    ) -> None:
        self.engine = Engine(start_time=start_time)
        if cluster is None:
            dyn_nodes = 0
            if config is not None and config.use_dynamic_partition:
                # default fence: one node, overridable by passing a cluster
                dyn_nodes = 1
            cluster = Cluster.homogeneous(
                num_nodes, cores_per_node, dynamic_partition_nodes=dyn_nodes
            )
        self.cluster = cluster
        self.trace = TraceLog(maxlen=trace_maxlen)
        #: optional :class:`repro.obs.Telemetry`; None keeps every hook site
        #: a single attribute check (the benchmarked disabled path)
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.ensure_sampler(self.engine)
            self.cluster.attach_telemetry(telemetry, self.engine)
            if telemetry.ledger is not None:
                # wait timelines follow the lifecycle events; decisions are
                # mirrored into the trace for JSONL export
                telemetry.ledger.attach_trace(self.trace)
            if telemetry.profiler is not None:
                # the engine wraps every dispatch; scheduler phases nest
                # inside the owning dispatch automatically
                self.engine.profiler = telemetry.profiler
        self.server = Server(
            self.engine, self.cluster, self.trace, telemetry=telemetry
        )
        if telemetry is not None and telemetry.windows is not None:
            if telemetry.windows.total_cores is None:
                telemetry.windows.set_capacity(self.cluster.total_cores)
            self.server.attach_windows(
                telemetry.windows, fold_and_discard=telemetry.fold_and_discard
            )
        if telemetry is not None and telemetry.slo is not None:
            # breaches mirror into the trace, and into the ledger (when on)
            # so `why` can explain them through the causal chain
            telemetry.slo.attach_trace(self.trace, ledger=telemetry.ledger)
        self.scheduler = MauiScheduler(self.engine, self.cluster, self.server, config)
        #: optional :class:`repro.faults.FaultInjector`; built last so the
        #: failure trace replays against the fully wired stack.  A model
        #: that injects nothing leaves the run bit-identical to no model.
        self.fault_injector = None
        if fault_model is not None:
            from repro.faults import FaultInjector

            self.fault_injector = FaultInjector(self, fault_model)

    @property
    def config(self) -> MauiConfig:
        return self.scheduler.config

    @property
    def now(self) -> float:
        return self.engine.now

    # ------------------------------------------------------------------
    def submit(self, job: Job, app: Application | None = None) -> Job:
        """Submit a job right now."""
        return self.server.submit(job, app)

    def submit_at(self, time: float, job: Job, app: Application | None = None) -> None:
        """Schedule a future submission (the workload generators use this)."""
        self.engine.at(time, self.server.submit, job, app)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the simulation to completion (or ``until``)."""
        if self.telemetry is not None:
            # arm here, not at construction: the sampler only re-arms while
            # events are pending, so it must start after the workload queued
            self.telemetry.start_sampling()
        processed = self.engine.run(until=until, max_events=max_events)
        if self.telemetry is not None:
            # close out the fairness/SLO state: a final share sample, then
            # objective evaluation over still-open (trailing) frames
            if self.telemetry.slo is not None:
                self.telemetry.slo.finalize(self.engine.now)
            elif self.telemetry.fairness is not None:
                self.telemetry.fairness.finalize(self.engine.now)
        log.info(
            "run finished: t=%.1f, %d events processed, %d trace events recorded",
            self.engine.now,
            processed,
            self.trace.total_recorded,
        )
        return processed

    def metrics(self) -> WorkloadMetrics:
        """Workload metrics over everything submitted so far."""
        return WorkloadMetrics.from_server(
            self.server, self.cluster, telemetry=self.telemetry
        )

    def __repr__(self) -> str:
        return f"<BatchSystem t={self.engine.now:.1f} {self.cluster!r}>"
