"""Terminal scatter/line plots for the waiting-time figures.

The paper's Figures 8-11 are per-job waiting-time curves; a table conveys
the numbers but not the *shape* (the mid-range bump under Dyn-HP is the
paper's whole point).  This renderer draws multiple series on a character
grid with axes — dependency-free and readable in CI logs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_xy_plot", "SERIES_MARKS"]

#: marker characters assigned to series in declaration order
SERIES_MARKS = "ox+*#@%&"


def render_xy_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 78,
    height: int = 20,
) -> str:
    """Plot named (x, y) series on one character grid.

    Cells covered by several series show the *later-declared* series' mark,
    so list the baseline first and the curve of interest last.
    """
    if width < 10 or height < 4:
        raise ValueError("plot too small to be legible")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        return height - 1 - row, col

    for (name, pts), mark in zip(series.items(), SERIES_MARKS):
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = mark

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{mark}={name}" for (name, _), mark in zip(series.items(), SERIES_MARKS)
    )
    lines.append(f"{y_label} ({legend})")
    top_label = f"{y_max:.0f}"
    bottom_label = f"{y_min:.0f}"
    margin = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * margin + " +" + "-" * width + "+")
    x_left = f"{x_min:.0f}"
    x_right = f"{x_max:.0f}"
    gap = width - len(x_left) - len(x_right)
    lines.append(" " * (margin + 2) + x_left + " " * max(1, gap) + x_right)
    lines.append(" " * (margin + 2) + x_label)
    return "\n".join(lines)
