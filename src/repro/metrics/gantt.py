"""ASCII Gantt charts of node occupancy over time.

Rendering the schedule makes dynamic-allocation behaviour visible at a
glance: expansions appear as a job's letter spreading to more node rows
mid-run.  Used by examples and handy when debugging scheduler changes.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.sim.events import EventKind, TraceLog

__all__ = ["render_gantt"]

_OCCUPY = (EventKind.JOB_START, EventKind.BACKFILL_START, EventKind.DYN_GRANT)
_VACATE = (EventKind.JOB_END, EventKind.JOB_ABORT, EventKind.PREEMPT)


def render_gantt(
    trace: TraceLog,
    cluster: Cluster,
    *,
    width: int = 72,
    until: float | None = None,
    labels: dict[str, str] | None = None,
    ledger=None,
) -> str:
    """One row per node, one column per time bucket.

    Each cell shows the label of the job holding cores on that node during
    the bucket — ``.`` for idle, ``*`` when several jobs share the node.
    ``labels`` maps job_id to a single display character; unlabelled jobs
    cycle through a-z/A-Z.

    ``ledger`` (a :class:`repro.obs.DecisionLedger`) adds a per-grant
    attribution overlay: a marker row placing every dynamic grant in time,
    then one line per grant with the delay it inflicted on planned queued
    jobs and the rigid jobs it displaced — the causal annotation the
    occupancy rows alone cannot show.
    """
    # reconstruct per-node occupancy intervals from the trace;
    # holds: job -> node -> (acquire time, cores held) so a *partial*
    # release keeps the job visible on the node until its last core leaves
    holds: dict[str, dict[int, tuple[float, int]]] = {}
    intervals: dict[int, list[tuple[float, float, str]]] = {
        n.index: [] for n in cluster.nodes
    }
    t_end = 0.0
    for event in trace:
        t_end = max(t_end, event.time)
        job_id = event.payload.get("job_id")
        by_node = event.payload.get("cores_by_node")
        if by_node is None:
            by_node = {n: 1 for n in event.payload.get("nodes", [])}
        if event.kind in _OCCUPY:
            job_holds = holds.setdefault(job_id, {})
            for node, count in by_node.items():
                start, held = job_holds.get(node, (event.time, 0))
                job_holds[node] = (start, held + count)
        elif event.kind is EventKind.DYN_RELEASE:
            job_holds = holds.get(job_id, {})
            for node, count in by_node.items():
                if node not in job_holds:
                    continue
                start, held = job_holds[node]
                if held - count <= 0:
                    del job_holds[node]
                    intervals[node].append((start, event.time, job_id))
                else:
                    job_holds[node] = (start, held - count)
        elif event.kind in _VACATE:
            for node, (start, _held) in holds.pop(job_id, {}).items():
                intervals[node].append((start, event.time, job_id))
    for job_id, nodes in holds.items():  # still running at trace end
        for node, (start, _held) in nodes.items():
            intervals[node].append((start, t_end, job_id))

    horizon = until if until is not None else t_end
    if horizon <= 0:
        return "(empty schedule)"
    bucket = horizon / width

    labels = dict(labels or {})
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    next_label = 0

    def label_of(job_id: str) -> str:
        nonlocal next_label
        if job_id not in labels:
            labels[job_id] = alphabet[next_label % len(alphabet)]
            next_label += 1
        return labels[job_id]

    lines = [f"time 0 .. {horizon:.0f}s, {bucket:.0f}s per column"]
    for node in cluster.nodes:
        row = []
        for b in range(width):
            t0, t1 = b * bucket, (b + 1) * bucket
            present = {
                job_id
                for start, end, job_id in intervals[node.index]
                if start < t1 and end > t0
            }
            if not present:
                cell = "."
            elif len(present) == 1:
                cell = label_of(next(iter(present)))
            else:
                cell = "*"  # node shared by several jobs in this bucket
            row.append(cell)
        lines.append(f"{node.name} |{''.join(row)}|")
    legend = ", ".join(f"{v}={k}" for k, v in sorted(labels.items(), key=lambda x: x[1]))
    lines.append(f"legend: {legend}, *=shared" if legend else "legend: (no jobs)")
    if ledger is not None:
        lines.extend(_grant_overlay(ledger, bucket, width, label_of))
    return "\n".join(lines)


def _grant_overlay(ledger, bucket: float, width: int, label_of) -> list[str]:
    """Marker row + per-grant attribution lines for the gantt footer."""
    grants = ledger.grants()
    if not grants:
        return ["grants: (none)"]
    row = ["."] * width
    for decision in grants:
        b = min(int(decision.time / bucket), width - 1) if bucket > 0 else 0
        row[b] = "^" if row[b] == "." else "*"
    lines = [f"grants   |{''.join(row)}| (^ = dynamic grant, * = several)"]
    for decision in grants:
        payload = decision.payload
        displaced = ",".join(
            label_of(job_id) for job_id in payload.get("displaced_rigid", [])
        )
        lines.append(
            f"  {payload['grant_id']:<10} t={decision.time:>8.0f}"
            f" {label_of(decision.job_id)}={decision.job_id:<10}"
            f" +{payload['cores']}c"
            f" inflicted={payload['total_delay']:.0f}s"
            + (f" displaced rigid [{displaced}]" if displaced else "")
        )
    return lines
