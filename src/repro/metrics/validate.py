"""Trace validation: global consistency checks over an event log.

A simulation bug usually surfaces as an *inconsistent trace* long before it
surfaces as a wrong headline number.  :func:`validate_trace` replays the
event log against the physical constraints of the machine and the job
lifecycle state machine and returns every violation found (empty list =
consistent).  The integration tests run it after every end-to-end scenario.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.sim.events import EventKind, TraceLog

__all__ = ["validate_trace"]

_START_KINDS = (EventKind.JOB_START, EventKind.BACKFILL_START)
_END_KINDS = (EventKind.JOB_END, EventKind.JOB_ABORT, EventKind.PREEMPT)


def validate_trace(trace: TraceLog, cluster: Cluster) -> list[str]:
    """All invariant violations in the trace (empty = consistent).

    Checks:

    * event times never decrease;
    * busy cores never negative and never exceed installed capacity;
    * per-job lifecycle: submit → (start → end)* with no double-start,
      no end without start, no grant/release while not running;
    * every grant's nodes exist in the cluster.
    """
    problems: list[str] = []
    last_time = float("-inf")
    busy = 0
    total = cluster.total_cores
    running: set[str] = set()
    submitted: set[str] = set()

    for event in trace:
        if event.time < last_time:
            problems.append(
                f"time went backwards: {event!r} after t={last_time:.2f}"
            )
        last_time = event.time
        job_id = event.payload.get("job_id")
        cores = event.payload.get("cores", 0)

        if event.kind is EventKind.JOB_SUBMIT:
            if job_id in submitted:
                problems.append(f"{job_id} submitted twice")
            submitted.add(job_id)
        elif event.kind in _START_KINDS:
            if job_id not in submitted:
                problems.append(f"{job_id} started without submission")
            if job_id in running:
                problems.append(f"{job_id} started while already running")
            running.add(job_id)
            busy += cores
        elif event.kind in _END_KINDS:
            if job_id in running:
                running.discard(job_id)
                busy -= cores
            elif cores:
                problems.append(f"{job_id} released {cores} cores while not running")
        elif event.kind is EventKind.DYN_GRANT:
            if job_id not in running:
                problems.append(f"{job_id} granted cores while not running")
            busy += cores
            for node in event.payload.get("nodes", []):
                if node not in {n.index for n in cluster.nodes}:
                    problems.append(f"grant to {job_id} names unknown node {node}")
        elif event.kind is EventKind.DYN_RELEASE:
            if job_id not in running:
                problems.append(f"{job_id} released cores while not running")
            busy -= cores

        if busy < 0:
            problems.append(f"negative busy cores ({busy}) at t={event.time:.2f}")
        if busy > total:
            problems.append(
                f"busy cores {busy} exceed capacity {total} at t={event.time:.2f}"
            )

    for job_id in sorted(running):
        problems.append(f"{job_id} still running at end of trace")
    return problems
