"""Plain-text renderers for tables and figure series.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent and dependency-free (terminal ASCII,
no plotting stack required).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "render_histogram_row"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        cells = []
        for i, cell in enumerate(row):
            if _is_numeric(cell):
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Sequence[tuple[float, float]],
    *,
    x_label: str = "x",
    y_label: str = "y",
    max_points: int | None = None,
) -> str:
    """A named (x, y) series as aligned columns, optionally subsampled."""
    pts = list(points)
    note = ""
    if max_points is not None and len(pts) > max_points:
        step = max(1, len(pts) // max_points)
        pts = pts[::step]
        note = f"  (every {step}th of {len(points)} points)"
    lines = [f"{name}{note}", f"{x_label:>10}  {y_label:>12}"]
    for x, y in pts:
        lines.append(f"{_fmt(x):>10}  {_fmt(y):>12}")
    return "\n".join(lines)


def render_histogram_row(label: str, value: float, scale: float, width: int = 50) -> str:
    """One ASCII bar, for quick visual shape checks in bench output."""
    filled = 0 if scale <= 0 else int(round(width * min(1.0, value / scale)))
    return f"{label:<18} |{'#' * filled}{' ' * (width - filled)}| {_fmt(value)}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e12:
            return f"{int(cell)}"
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
