"""Metrics and reporting: the quantities Table II and Figures 8-12 plot."""

from repro.metrics.collector import JobRecord, WorkloadMetrics
from repro.metrics.gantt import render_gantt
from repro.metrics.report import render_series, render_table
from repro.metrics.stats import describe, jains_fairness_index, utilization_timeline
from repro.metrics.validate import validate_trace

__all__ = [
    "JobRecord",
    "WorkloadMetrics",
    "describe",
    "jains_fairness_index",
    "render_gantt",
    "render_series",
    "render_table",
    "utilization_timeline",
    "validate_trace",
]
