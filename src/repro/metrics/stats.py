"""Statistical helpers over traces and job records."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.events import EventKind, TraceLog

__all__ = ["describe", "utilization_timeline", "busy_core_seconds", "jains_fairness_index"]

#: events that change the number of busy cores, with their sign
_CORE_DELTA_KINDS = {
    EventKind.JOB_START: +1,
    EventKind.BACKFILL_START: +1,
    EventKind.DYN_GRANT: +1,
    EventKind.DYN_RELEASE: -1,
    EventKind.JOB_END: -1,
    EventKind.JOB_ABORT: -1,
    EventKind.PREEMPT: -1,
}


def utilization_timeline(trace: TraceLog) -> tuple[np.ndarray, np.ndarray]:
    """Busy cores as a step function ``(times, busy_cores)`` from the trace.

    ``busy[i]`` holds on ``[times[i], times[i+1])``; the last value holds to
    the end of the trace.  Raises ``ValueError`` if the trace implies a
    negative busy count — that would mean the event log is inconsistent.
    """
    points: list[tuple[float, int]] = []
    for event in trace:
        sign = _CORE_DELTA_KINDS.get(event.kind)
        if sign is None:
            continue
        cores = event.payload.get("cores", 0)
        if cores:
            points.append((event.time, sign * cores))
    if not points:
        return np.array([0.0]), np.array([0])
    times: list[float] = []
    busy: list[int] = []
    current = 0
    for t, delta in points:  # trace is already time-ordered
        current += delta
        if current < 0:
            raise ValueError(f"negative busy-core count at t={t}")
        if times and times[-1] == t:
            busy[-1] = current
        else:
            times.append(t)
            busy.append(current)
    return np.asarray(times), np.asarray(busy)


def busy_core_seconds(trace: TraceLog, start: float, end: float) -> float:
    """Integral of busy cores over ``[start, end]``."""
    if end <= start:
        return 0.0
    times, busy = utilization_timeline(trace)
    total = 0.0
    for i, t in enumerate(times):
        seg_start = max(t, start)
        seg_end = end if i + 1 == len(times) else min(times[i + 1], end)
        if seg_end > seg_start:
            total += float(busy[i]) * (seg_end - seg_start)
    return total


def jains_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-user quantities.

    ``(sum x)^2 / (n * sum x^2)`` — 1.0 when everyone experiences the same
    value, 1/n when one user takes everything.  Applied to per-user mean
    waiting times it quantifies the uniformity the paper's Figs. 9-11 argue
    for visually: DFS configurations should score closer to the static
    baseline than Dyn-HP does.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 1.0
    if np.any(arr < 0):
        raise ValueError("fairness index needs non-negative values")
    denom = arr.size * float((arr ** 2).sum())
    if denom == 0:
        return 1.0
    return float(arr.sum()) ** 2 / denom


def describe(values: Sequence[float]) -> dict[str, float]:
    """Summary statistics used by the reports (empty-safe)."""
    if not len(values):
        return {"count": 0, "mean": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=float)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
    }
