"""Workload-level metrics assembled after a simulation run.

:class:`WorkloadMetrics` computes exactly the quantities the paper reports:

* **workload time** — first submission to last completion (Table II "Time");
* **satisfied dynamic jobs** — evolving jobs with ≥1 granted request;
* **utilization** — busy core-seconds over installed core-seconds across the
  workload time;
* **throughput** — completed jobs per minute, plus the relative increase
  against a baseline;
* per-job **waiting times** in submission order (Figures 8-11) and
  turnaround times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import Cluster
from repro.jobs.job import Job, JobState
from repro.metrics.stats import busy_core_seconds
from repro.rms.server import Server

__all__ = ["JobRecord", "WorkloadMetrics"]


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Immutable per-job outcome."""

    job_id: str
    seq: int
    user: str
    esp_type: str | None
    evolving: bool
    cores_requested: int
    submit_time: float
    start_time: float | None
    end_time: float | None
    state: str
    backfilled: bool
    dyn_granted: int
    dyn_rejected: int
    accrued_delay: float
    #: requested walltime [s]; -1.0 marks legacy records that predate the
    #: field (SWF export then writes -1 for field 9, "unknown")
    walltime: float = -1.0

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float | None:
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    @classmethod
    def from_job(cls, job: Job) -> "JobRecord":
        return cls(
            job_id=job.job_id,
            seq=job.seq,
            user=job.user,
            esp_type=job.esp_type,
            evolving=job.is_evolving,
            cores_requested=job.request.total_cores,
            submit_time=job.submit_time if job.submit_time is not None else 0.0,
            start_time=job.start_time,
            end_time=job.end_time,
            state=job.state.value,
            backfilled=job.backfilled,
            dyn_granted=job.dyn_granted,
            dyn_rejected=job.dyn_rejected,
            accrued_delay=job.accrued_delay,
            walltime=job.walltime,
        )


class WorkloadMetrics:
    """Post-run summary over a server's jobs and trace."""

    def __init__(
        self, records: list[JobRecord], total_cores: int, trace, *, telemetry=None
    ) -> None:
        self.records = sorted(records, key=lambda r: (r.submit_time, r.seq))
        self.total_cores = total_cores
        self._trace = trace
        self._telemetry = telemetry

    @classmethod
    def from_server(
        cls, server: Server, cluster: Cluster, *, telemetry=None
    ) -> "WorkloadMetrics":
        if getattr(server, "jobs_discarded", 0):
            raise RuntimeError(
                f"{server.jobs_discarded} job(s) were folded and discarded "
                "(fold_and_discard); retained-job metrics are unavailable — "
                "read the streaming aggregates from telemetry.windows instead"
            )
        records = [JobRecord.from_job(j) for j in server.jobs.values()]
        return cls(records, cluster.total_cores, server.trace, telemetry=telemetry)

    # ------------------------------------------------------------------
    # Table II quantities
    # ------------------------------------------------------------------
    @property
    def first_submit(self) -> float:
        return min(r.submit_time for r in self.records)

    @property
    def last_end(self) -> float:
        ends = [r.end_time for r in self.records if r.end_time is not None]
        if not ends:
            raise ValueError("no job has finished")
        return max(ends)

    @property
    def workload_time(self) -> float:
        """Total execution time of the workload in seconds."""
        return self.last_end - self.first_submit

    @property
    def workload_time_minutes(self) -> float:
        return self.workload_time / 60.0

    @property
    def satisfied_dyn_jobs(self) -> int:
        """Evolving jobs whose dynamic request succeeded at least once."""
        return sum(1 for r in self.records if r.evolving and r.dyn_granted > 0)

    @property
    def evolving_jobs(self) -> int:
        return sum(1 for r in self.records if r.evolving)

    @property
    def utilization(self) -> float:
        """Busy core-seconds over installed capacity across the workload time.

        Normally reconstructed by replaying the trace; when the trace is a
        bounded ring that has dropped events, replay would under-count, so
        the telemetry busy-core integral (maintained live by the cluster
        hooks, exact regardless of trace retention) is used instead.
        """
        if getattr(self._trace, "dropped", 0) and self._telemetry is not None:
            busy = self._telemetry.busy_core_seconds(upto=self.last_end)
        else:
            busy = busy_core_seconds(self._trace, self.first_submit, self.last_end)
        return busy / (self.total_cores * self.workload_time)

    @property
    def completed_jobs(self) -> int:
        return sum(1 for r in self.records if r.state == JobState.COMPLETED.value)

    @property
    def throughput_jobs_per_minute(self) -> float:
        return self.completed_jobs / self.workload_time_minutes

    def throughput_increase_vs(self, baseline: "WorkloadMetrics") -> float:
        """Percent throughput increase relative to a baseline run."""
        base = baseline.throughput_jobs_per_minute
        return 100.0 * (self.throughput_jobs_per_minute - base) / base

    # ------------------------------------------------------------------
    # figure series
    # ------------------------------------------------------------------
    def wait_times_by_submission(self) -> list[tuple[int, float]]:
        """``(submission index, wait seconds)`` for every started job (Fig. 8)."""
        series = []
        for idx, record in enumerate(self.records):
            if record.wait_time is not None:
                series.append((idx, record.wait_time))
        return series

    def wait_times_for_type(self, esp_type: str) -> list[float]:
        """Waits of one ESP job type in submission order (Fig. 9)."""
        return [
            r.wait_time
            for r in self.records
            if r.esp_type == esp_type and r.wait_time is not None
        ]

    def records_for_user(self, user: str) -> list[JobRecord]:
        return [r for r in self.records if r.user == user]

    def mean_wait_by_user(self) -> dict[str, float]:
        """Per-user mean waiting time (users with no started job excluded)."""
        sums: dict[str, list[float]] = {}
        for r in self.records:
            if r.wait_time is not None:
                sums.setdefault(r.user, []).append(r.wait_time)
        return {u: sum(w) / len(w) for u, w in sums.items()}

    @property
    def wait_fairness_index(self) -> float:
        """Jain's fairness index over per-user mean waits (1.0 = uniform)."""
        from repro.metrics.stats import jains_fairness_index

        return jains_fairness_index(list(self.mean_wait_by_user().values()))

    @property
    def mean_wait(self) -> float:
        waits = [r.wait_time for r in self.records if r.wait_time is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def bounded_slowdowns(self, tau: float = 10.0) -> list[float]:
        """Per-job bounded slowdown, ``max(1, (wait+run)/max(run, tau))``.

        The standard scheduler-evaluation metric (Feitelson): turnaround
        normalised by runtime, with very short jobs clamped by ``tau``
        seconds so they cannot dominate the average.
        """
        values = []
        for r in self.records:
            if r.start_time is None or r.end_time is None:
                continue
            run = r.end_time - r.start_time
            wait = r.start_time - r.submit_time
            values.append(max(1.0, (wait + run) / max(run, tau)))
        return values

    def mean_bounded_slowdown(self, tau: float = 10.0) -> float:
        values = self.bounded_slowdowns(tau)
        return sum(values) / len(values) if values else 1.0

    @property
    def mean_turnaround(self) -> float:
        vals = [r.turnaround_time for r in self.records if r.turnaround_time is not None]
        return sum(vals) / len(vals) if vals else 0.0

    def __repr__(self) -> str:
        return (
            f"<WorkloadMetrics jobs={len(self.records)} "
            f"time={self.workload_time_minutes:.1f}min util={self.utilization:.1%}>"
        )
