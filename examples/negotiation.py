#!/usr/bin/env python
"""The negotiation protocol (implementing the paper's Section III-C outlook).

The paper's dynamic ESP jobs probe the batch system at two fixed instants
(16 % and 25 % of their static execution time) and continue unexpanded if
both probes fail.  Its conclusion proposes "an efficient negotiation
mechanism where the application can specify a timeout for obtaining
resources and where the batch system can indicate the time of availability".

This example shows that mechanism working: an evolving job's request arrives
while the machine is full, the batch system answers with an availability
estimate, and the grant lands the moment the blocking job finishes — well
before the application's timeout.

Run with::

    python examples/negotiation.py
"""

from repro import BatchSystem, MauiConfig
from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.metrics.gantt import render_gantt
from repro.workloads.esp import make_esp_workload


def small_scenario() -> None:
    print("--- single-job scenario ---")
    system = BatchSystem(num_nodes=1, cores_per_node=8, config=MauiConfig())
    evo = Job(
        request=ResourceRequest(cores=4),
        walltime=2000.0,
        user="evo",
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
    )
    system.submit(evo, EvolvingWorkApp(1000.0, negotiation_timeout=600.0))
    system.submit(
        Job(request=ResourceRequest(cores=4), walltime=400.0, user="other"),
        FixedRuntimeApp(400.0),
    )
    system.run()
    estimates = evo.metadata.get("availability_estimates", [])
    print(f"request issued at t=160s; machine full")
    print(f"batch system estimated availability at t={estimates[0]:.0f}s")
    print(
        f"grant landed, job finished at t={evo.end_time:.0f}s "
        f"(static run would have taken 1000s)"
    )
    print()
    print(render_gantt(system.trace, system.cluster, width=50))


def esp_comparison() -> None:
    print("\n--- dynamic ESP: fixed retry vs negotiation ---")
    for label, timeout in (("retry@25% (paper)", None), ("negotiate 300s", 300.0)):
        system = BatchSystem(
            15, 8, MauiConfig(reservation_depth=5, reservation_delay_depth=5)
        )
        make_esp_workload(120, dynamic=True, negotiation_timeout=timeout).submit_to(system)
        system.run(max_events=5_000_000)
        m = system.metrics()
        print(
            f"{label:<20} satisfied {m.satisfied_dyn_jobs:>2}/69, "
            f"time {m.workload_time_minutes:.1f} min, util {m.utilization:.1%}"
        )


def main() -> None:
    small_scenario()
    esp_comparison()


if __name__ == "__main__":
    main()
