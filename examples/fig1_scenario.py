#!/usr/bin/env python
"""The paper's Fig. 1 scenario: dynamic allocation vs a queued job's reservation.

Six nodes.  Job A runs on nodes 0-1 for 8 hours; job B runs on nodes 2-3 for
4 hours; queued job C needs 4 nodes and can start once B finishes.  If A
dynamically grabs the idle nodes 4-5 before B ends, C is pushed back another
4 hours.

We play the scenario twice:

* **without fairness** (``DFSPolicy NONE``): A's request is granted and C is
  delayed by ~4 hours, exactly as Fig. 1 warns;
* **with fairness** (``DFSDYNDELAYPERM=0`` for C's user): the delay to C
  vetoes the grant and C starts on time.

Run with::

    python examples/fig1_scenario.py
"""

from repro import BatchSystem, MauiConfig
from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import parse_maui_config
from repro.rms.tm import TMContext
from repro.units import hours

FAIR_CONFIG = """
# protect user-c's jobs from delays caused by dynamic allocations
DFSPOLICY       DFSSINGLEANDTARGETDELAY
DFSINTERVAL     06:00:00
USERCFG[user-c] DFSDYNDELAYPERM=0
"""


class JobA:
    """Runs 8 hours; requests the two idle nodes one hour in."""

    def __init__(self) -> None:
        self.granted = None

    def launch(self, ctx: TMContext) -> None:
        ctx.after(hours(1), self._grow, ctx)
        ctx.after(hours(8), ctx.finish)

    def _grow(self, ctx: TMContext) -> None:
        ctx.tm_dynget(ResourceRequest(nodes=2, ppn=8), self._answer)

    def _answer(self, grant) -> None:
        self.granted = grant


def play(config: MauiConfig, label: str) -> None:
    system = BatchSystem(num_nodes=6, cores_per_node=8, config=config)
    app_a = JobA()
    job_a = Job(
        request=ResourceRequest(nodes=2, ppn=8),
        walltime=hours(8),
        user="user-a",
        flexibility=JobFlexibility.EVOLVING,
    )
    job_b = Job(request=ResourceRequest(nodes=2, ppn=8), walltime=hours(4), user="user-b")
    job_c = Job(request=ResourceRequest(nodes=4, ppn=8), walltime=hours(4), user="user-c")
    system.submit(job_a, app_a)
    system.submit(job_b, FixedRuntimeApp(hours(4)))
    system.submit(job_c, FixedRuntimeApp(hours(4)))
    system.run()

    print(f"--- {label} ---")
    print(f"  A's dynamic request: {'granted' if app_a.granted else 'rejected'}")
    print(f"  C waited {job_c.wait_time / 3600:.1f} h (submit -> start)")
    print()


def main() -> None:
    print(__doc__.split("Run with")[0])
    play(MauiConfig(), "no fairness (DFSPolicy NONE) — Fig. 1's problem")
    play(
        parse_maui_config(FAIR_CONFIG, MauiConfig()),
        "with DFSDynDelayPerm=0 for user-c — the fix",
    )


if __name__ == "__main__":
    main()
