#!/usr/bin/env python
"""Quickstart: a small cluster, a few rigid jobs, and one evolving job.

Demonstrates the end-to-end flow of the dynamic batch system:

1. build a :class:`repro.BatchSystem` (engine + cluster + server + scheduler);
2. submit rigid jobs with ``qsub`` and one evolving job whose application
   calls ``tm_dynget`` at runtime;
3. run the simulation and inspect the outcome.

Run with::

    python examples/quickstart.py
"""

from repro import BatchSystem, MauiConfig
from repro.apps.synthetic import EvolvingWorkApp
from repro.jobs.evolution import EvolutionProfile
from repro.rms.client import qsub, qstat_table
from repro.sim.events import EventKind


def main() -> None:
    # a 4-node × 8-core cluster with default scheduling (EASY backfill,
    # dynamic allocation enabled, no fairness restrictions)
    system = BatchSystem(num_nodes=4, cores_per_node=8, config=MauiConfig())

    # three rigid jobs from two users
    a = qsub(system.server, cores=16, walltime=600, user="alice")
    b = qsub(system.server, cores=8, walltime=300, user="bob")
    c = qsub(system.server, cores=16, walltime=400, user="bob")

    # one evolving job: +4 cores once 16% of its work is done, retry at 25%
    evo = qsub(
        system.server,
        cores=4,
        walltime=900,
        user="carol",
        evolution=EvolutionProfile.esp_default(extra_cores=4),
        app=EvolvingWorkApp(static_runtime=900),
    )

    print("Queue right after submission:")
    print(qstat_table(system.server))

    system.run()

    print("\nAfter the run:")
    print(qstat_table(system.server))

    print("\nPer-job outcomes:")
    for job in (a, b, c, evo):
        print(
            f"  {job.job_id:<8} {job.user:<6} wait={job.wait_time:6.0f}s "
            f"turnaround={job.turnaround_time:7.0f}s "
            f"grants={job.dyn_granted} state={job.state.value}"
        )

    grants = system.trace.of_kind(EventKind.DYN_GRANT)
    for g in grants:
        print(
            f"\nDynamic grant at t={g.time:.0f}s: job {g.payload['job_id']} "
            f"received {g.payload['cores']} cores on nodes {g.payload['nodes']}"
        )

    m = system.metrics()
    print(
        f"\nWorkload: {m.workload_time / 60:.1f} min, "
        f"utilization {m.utilization:.1%}, "
        f"throughput {m.throughput_jobs_per_minute:.2f} jobs/min"
    )


if __name__ == "__main__":
    main()
