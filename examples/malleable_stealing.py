#!/usr/bin/env python
"""Malleable jobs as a resource source for evolving jobs (Section II-B).

The paper lists "stealing resources from malleable jobs" among the ways to
serve dynamic requests.  Here a malleable analysis job spans the idle half
of a node; when the evolving solver next to it needs more cores, the
scheduler asks the malleable job to shrink instead of rejecting the request.
The Gantt chart makes the handover visible.

Run with::

    python examples/malleable_stealing.py
"""

from repro import BatchSystem, MauiConfig
from repro.apps.synthetic import EvolvingWorkApp, MalleableWorkApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.metrics.gantt import render_gantt


def main() -> None:
    config = MauiConfig(malleable_steal_for_dynamic=True)
    system = BatchSystem(num_nodes=1, cores_per_node=12, config=config)

    solver = Job(
        request=ResourceRequest(cores=4),
        walltime=1200.0,
        user="cfd",
        flexibility=JobFlexibility.EVOLVING,
        evolution=EvolutionProfile.single(0.16, ResourceRequest(cores=4)),
    )
    system.submit(solver, EvolvingWorkApp(1000.0))

    analysis = Job(
        request=ResourceRequest(cores=8),
        walltime=9000.0,
        user="postproc",
        flexibility=JobFlexibility.MALLEABLE,
    )
    analysis_app = MalleableWorkApp(2000.0, min_cores=2)
    system.submit(analysis, analysis_app)

    system.run()

    print(
        f"solver: grant at 16% of its run, finished at t={solver.end_time:.0f}s "
        f"(grants={solver.dyn_granted})"
    )
    print(
        f"analysis: shrank by {analysis_app.shrunk_by} cores when asked, "
        f"finished at t={analysis.end_time:.0f}s on "
        f"{analysis.allocation.total_cores} cores"
    )
    print(f"scheduler shrink operations: {system.scheduler.stats['malleable_shrinks']}")
    print()
    print(
        render_gantt(
            system.trace,
            system.cluster,
            width=60,
            labels={solver.job_id: "S", analysis.job_id: "m"},
        )
    )
    print(
        "\nReading: 'S' widens mid-run (the dynamic grant) exactly where 'm'\n"
        "narrows (the malleable shrink) — resource stealing without idling\n"
        "a single core."
    )


if __name__ == "__main__":
    main()
