#!/usr/bin/env python
"""Tuning the dynamic fairness knobs (paper Section III-D, Fig. 6).

Two parts:

1. parse the paper's Fig. 6 configuration file verbatim and show what each
   line means for each principal;
2. sweep ``DFSTargetDelayTime`` over the dynamic ESP workload to expose the
   grants-vs-fairness trade-off the paper tunes with Dyn-500/Dyn-600.

Run with::

    python examples/fairness_tuning.py
"""

from repro.experiments.configs import dynamic_target_config, ESPConfiguration
from repro.experiments.runner import run_esp_configuration
from repro.maui.config import MauiConfig, parse_maui_config
from repro.metrics.report import render_table
from repro.units import UNLIMITED, format_duration

# Fig. 6 of the paper, verbatim.
FIG6_CONFIG = r"""
DFSPOLICY          DFSSINGLEANDTARGETDELAY
DFSINTERVAL        06:00:00
DFSDECAY           0.4
USERCFG[user01]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                   DFSSINGLEDELAYTIME=0
USERCFG[user02]    DFSDYNDELAYPERM=0
USERCFG[user03]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                   DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]    DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                   DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05]  DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06]  DFSDYNDELAYPERM=0
"""


def describe_fig6() -> None:
    config = parse_maui_config(FIG6_CONFIG, MauiConfig())
    dfs = config.dfs
    print(f"Policy {dfs.policy.value}, interval {format_duration(dfs.interval)}, "
          f"decay {dfs.decay}\n")
    rows = []
    for kind, table in (("user", dfs.users), ("group", dfs.groups)):
        for name, lim in table.items():
            rows.append(
                [
                    kind,
                    name,
                    "yes" if lim.dyn_delay_perm else "NO",
                    "unlimited" if lim.target_delay_time == UNLIMITED
                    else format_duration(lim.target_delay_time),
                    "unlimited" if lim.single_delay_time == UNLIMITED
                    else format_duration(lim.single_delay_time),
                ]
            )
    print(
        render_table(
            ["Kind", "Principal", "Delayable", "Cumulative cap/interval", "Per-job cap"],
            rows,
            title="Fig. 6 configuration, parsed",
        )
    )


def sweep_target_delay() -> None:
    print("\nSweep: cumulative per-user delay cap (DFSTargetDelayTime, 1 h interval)\n")
    rows = []
    for cap in (0.0, 100.0, 300.0, 500.0, 600.0, 1200.0, 3600.0):
        if cap == 0.0:
            maui = MauiConfig(reservation_depth=5, reservation_delay_depth=5)
            label = "NONE (Dyn-HP)"
        else:
            maui = dynamic_target_config(cap)
            label = f"{cap:.0f}s"
        config = ESPConfiguration(name=label, maui=maui, dynamic_workload=True)
        result = run_esp_configuration(config)
        m = result.metrics
        rows.append(
            [
                label,
                m.satisfied_dyn_jobs,
                result.scheduler_stats["dyn_rejected_fairness"],
                f"{m.workload_time_minutes:.1f}",
                f"{100 * m.utilization:.1f}",
                f"{m.mean_wait:.0f}",
            ]
        )
    print(
        render_table(
            ["Cap", "Satisfied", "Fairness rejects", "Time[min]", "Util[%]", "Mean wait[s]"],
            rows,
        )
    )


def main() -> None:
    describe_fig6()
    sweep_target_delay()


if __name__ == "__main__":
    main()
