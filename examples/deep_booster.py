#!/usr/bin/env python
"""Cluster + booster offloading, DEEP-style (paper Section I, ref. [6]).

The paper motivates dynamic allocation with the DEEP architecture: "the
architecture consists of a cluster part and a booster part, with booster
nodes designed to run computationally intensive parallel kernels.  They can
be statically or dynamically allocated to applications running on cluster
nodes."

Here the booster is a fenced partition: rigid jobs run on the cluster
partition only, while a task-parallel application offloads emerging kernels
to booster nodes via ``tm_dynget`` — "new tasks emerging as a result of
intermediate computations can be offloaded to new resources without having
to steal resources from the main program."

Run with::

    python examples/deep_booster.py
"""

from repro import BatchSystem, MauiConfig
from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import Allocation, ResourceRequest
from repro.cluster.machine import Cluster
from repro.jobs.job import Job, JobFlexibility
from repro.metrics.gantt import render_gantt
from repro.rms.tm import TMContext


class TaskParallelApp:
    """Main program spawning kernels onto the booster as work emerges."""

    def __init__(self, runtime: float, kernel_times: list[float], kernel_nodes: int = 1):
        self.runtime = runtime
        self.kernel_times = kernel_times
        self.kernel_nodes = kernel_nodes
        self.offloaded = 0
        self.local_fallbacks = 0
        self._ctx: TMContext | None = None

    def launch(self, ctx: TMContext) -> None:
        self._ctx = ctx
        self.offloaded = 0
        self.local_fallbacks = 0
        for t in self.kernel_times:
            ctx.after(t, self._spawn_kernel)
        ctx.after(self.runtime, ctx.finish)

    def _spawn_kernel(self) -> None:
        assert self._ctx is not None
        if not self._ctx.job.is_active or self._ctx.job.state.value == "dynqueued":
            self.local_fallbacks += 1
            return
        self._ctx.tm_dynget(
            ResourceRequest(nodes=self.kernel_nodes, ppn=8), self._on_answer
        )

    def _on_answer(self, grant: Allocation | None) -> None:
        assert self._ctx is not None
        if grant is None:
            # kernel runs on the cluster nodes instead, slowing the main work
            self.local_fallbacks += 1
            return
        self.offloaded += 1
        # each kernel runs 600s on its booster node, then returns it
        self._ctx.after(600.0, self._release_kernel, dict(grant.items()))

    def _release_kernel(self, nodes: dict) -> None:
        assert self._ctx is not None
        if self._ctx.job.is_active:
            self._ctx.tm_dynfree(nodes)


def main() -> None:
    # 6 cluster nodes + 2 booster nodes, booster fenced from static jobs
    cluster = Cluster.homogeneous(8, 8, dynamic_partition_nodes=2)
    system = BatchSystem(
        config=MauiConfig(use_dynamic_partition=True), cluster=cluster
    )

    main_job = Job(
        request=ResourceRequest(nodes=2, ppn=8),
        walltime=8000.0,
        user="simulation",
        flexibility=JobFlexibility.EVOLVING,
    )
    app = TaskParallelApp(
        runtime=6000.0, kernel_times=[500.0, 1200.0, 2500.0, 4000.0]
    )
    system.submit(main_job, app)

    # rigid background jobs compete for the cluster partition only
    for i in range(4):
        system.submit_at(
            200.0 * i,
            Job(request=ResourceRequest(cores=16), walltime=2500.0, user=f"rigid{i}"),
            FixedRuntimeApp(2500.0),
        )

    system.run()

    print(
        f"main simulation: {app.offloaded} kernels offloaded to the booster, "
        f"{app.local_fallbacks} ran locally"
    )
    print(f"finished at t={main_job.end_time:.0f}s with "
          f"{main_job.dyn_granted} booster grants\n")
    print(render_gantt(system.trace, system.cluster, width=64,
                       labels={main_job.job_id: "S"}))
    print(
        "\nnode006/007 are the booster: only 'S' kernels ever appear there,\n"
        "while the rigid jobs pack the cluster partition — the DEEP pattern\n"
        "of Section I without any job stealing cluster resources."
    )


if __name__ == "__main__":
    main()
