#!/usr/bin/env python
"""Nested weather simulations (the paper's Section I motivation, ref. [5]).

A 24-hour forecast runs continuously while storms appear and dissipate.
Each storm needs a nested high-resolution simulation *alongside* the main
run: the application asks the batch system for a nest-sized allocation when
the storm appears and returns it when the storm dissipates — the full
grow-and-shrink lifecycle the paper's dynamic (de)allocation protocol
(Figs. 3 and 4) was designed for.  Meanwhile, ordinary batch jobs soak up
whatever the forecast is not using.

Run with::

    python examples/weather_nesting.py
"""

from repro import BatchSystem, MauiConfig
from repro.apps.synthetic import FixedRuntimeApp
from repro.apps.weather import WeatherApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobFlexibility
from repro.metrics.gantt import render_gantt
from repro.rms.accounting import AccountingLedger
from repro.units import hours


def main() -> None:
    system = BatchSystem(num_nodes=4, cores_per_node=8, config=MauiConfig())

    forecast = Job(
        request=ResourceRequest(cores=8),
        walltime=hours(26),
        user="weather",
        flexibility=JobFlexibility.EVOLVING,
    )
    app = WeatherApp(
        runtime=hours(24),
        num_phenomena=3,
        nest_cores=8,
        phenomenon_duration=(hours(2), hours(5)),
        seed=42,
    )
    system.submit(forecast, app)

    # background batch jobs arriving through the day
    for i in range(6):
        system.submit_at(
            hours(2 + 3 * i),
            Job(request=ResourceRequest(cores=8), walltime=hours(3), user=f"batch{i % 2}"),
            FixedRuntimeApp(hours(3)),
        )

    system.run()

    print(f"forecast finished at t={forecast.end_time / 3600:.1f} h "
          f"({app.tracked_count}/{len(app.phenomena)} storms tracked at high resolution)")
    for p in app.phenomena:
        window = f"{p.appears_at / 3600:4.1f}h - {p.dissipates_at / 3600:4.1f}h"
        status = "nested simulation ran" if p.tracked else "coarse tracking only"
        print(f"  storm {p.index}: {window}  {status}")

    print()
    print(render_gantt(system.trace, system.cluster, width=72,
                       labels={forecast.job_id: "W"}))
    print()
    print(AccountingLedger(system.trace).render())
    print("\nThe 'weather' invoice separates the base forecast from the nest"
          "\nexpansions — the storm-hours are charged only while each storm"
          "\nwas actually being tracked (Fig. 4's deallocation at work).")


if __name__ == "__main__":
    main()
