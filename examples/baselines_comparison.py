#!/usr/bin/env python
"""The paper's approach vs the two alternatives it argues against.

* **Guaranteeing** (CooRMv2-style, Section II-B): preallocate every evolving
  job's maximum need — grants always succeed, but the extra cores idle until
  the trigger point and rigid jobs queue behind inflated allocations.
* **SLURM-style** (Section V): expand by submitting a dependent helper job —
  requests wait in the static queue under static fairshare, arriving late or
  never.
* **This paper (Dyn-HP / Dyn-600)**: on-the-fly allocation with dynamic
  fairness.

Run with::

    python examples/baselines_comparison.py
"""

from repro.baselines import run_guaranteeing_esp, run_slurm_esp
from repro.experiments.runner import run_esp_configuration_cached
from repro.metrics.report import render_table


def main() -> None:
    rows = []

    static = run_esp_configuration_cached("Static")
    dyn_hp = run_esp_configuration_cached("Dyn-HP")
    dyn_600 = run_esp_configuration_cached("Dyn-600")
    slurm = run_slurm_esp()
    guaranteed = run_guaranteeing_esp()

    def row(name, m, satisfied, note=""):
        rows.append(
            [
                name,
                f"{m.workload_time_minutes:.1f}",
                satisfied,
                f"{100 * m.utilization:.1f}",
                f"{m.mean_wait:.0f}",
                note,
            ]
        )

    row("Static", static.metrics, 0)
    row("Dyn-HP (paper)", dyn_hp.metrics, dyn_hp.metrics.satisfied_dyn_jobs)
    row("Dyn-600 (paper)", dyn_600.metrics, dyn_600.metrics.satisfied_dyn_jobs)
    row(
        "SLURM-style",
        slurm,
        slurm.satisfied_dyn_jobs,
        "expansions via helper jobs in the static queue",
    )
    row(
        "Guaranteeing",
        guaranteed.metrics,
        69,
        f"{guaranteed.wasted_reserved_core_seconds / 3600:.0f} core-h reserved idle",
    )

    print(
        render_table(
            ["Approach", "Time[min]", "Satisfied", "Util[%]", "Mean wait[s]", "Notes"],
            rows,
            title="Dynamic ESP, 15x8 cores: scheduling approaches compared",
        )
    )
    print(
        "\nThe guaranteeing run charges evolving users for cores that idle until\n"
        "the 16% trigger and pushes rigid jobs' waits up; the SLURM-style run\n"
        "satisfies expansions only when the static queue happens to drain.\n"
        "(Paper Sections II-B and V.)"
    )


if __name__ == "__main__":
    main()
