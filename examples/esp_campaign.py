#!/usr/bin/env python
"""The full dynamic-ESP evaluation campaign (paper Section IV-B).

Reproduces Table II and the waiting-time comparisons of Figures 8-11 in one
go: the four configurations (Static, Dyn-HP, Dyn-500, Dyn-600) over the
230-job dynamic ESP workload on a 15-node × 8-core machine.

Run with::

    python examples/esp_campaign.py [seed]
"""

import sys

from repro.experiments.fig8 import render_fig8
from repro.experiments.fig9 import render_fig9
from repro.experiments.fig10 import render_fig10
from repro.experiments.fig11 import render_fig11
from repro.experiments.table2 import render_table2


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2014
    for renderer in (render_table2, render_fig8, render_fig9, render_fig10, render_fig11):
        print(renderer(seed=seed))
        print("\n" + "=" * 72 + "\n")
    print(
        "Reading guide: Dyn-HP maximises system metrics but inflates waits for\n"
        "a band of mid-submission jobs; Dyn-500 pulls those waits back at the\n"
        "cost of grants; Dyn-600 trades between the two (paper Section IV-B)."
    )


if __name__ == "__main__":
    main()
