#!/usr/bin/env python
"""Dynamic deallocation with ``tm_dynfree`` (paper Fig. 4) and why it pays off.

A long "campaign" job finishes its parallel phase early and releases half of
its cores; a queued job that would otherwise wait hours starts immediately
on the freed resources.  Also demonstrates the flexibility the paper claims
over SLURM: any *subset* of the allocation may be released, not only whole
previous expansion grants.

Run with::

    python examples/deallocation.py
"""

from repro import BatchSystem, MauiConfig
from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job
from repro.sim.events import EventKind
from repro.units import hours


def main() -> None:
    system = BatchSystem(num_nodes=4, cores_per_node=8, config=MauiConfig())

    # the campaign job: 24 cores for up to 8 h; its wide phase covers half of
    # 3.5 h of base-speed work, after which it returns 16 of its 24 cores
    # (the narrow tail then runs at 1/3 speed and still beats the walltime)
    campaign = Job(request=ResourceRequest(cores=24), walltime=hours(8), user="wide")
    system.submit(
        campaign,
        EvolvingWorkApp(hours(3.5), release_at_fraction=0.5, release_cores=16),
    )

    # a waiting job that needs 16 cores; without the release it would sit
    # behind the campaign job's 8-hour walltime
    waiter = Job(request=ResourceRequest(cores=16), walltime=hours(2), user="small")
    system.submit(waiter, FixedRuntimeApp(hours(2)))

    system.run()

    release = system.trace.of_kind(EventKind.DYN_RELEASE)[0]
    print(
        f"t={release.time / 3600:.1f} h: campaign job released "
        f"{release.payload['cores']} cores on nodes {release.payload['nodes']} "
        f"(still holding {release.payload['total_cores']})"
    )
    print(
        f"waiter started after {waiter.wait_time / 3600:.1f} h "
        f"(the campaign job's walltime would have held it for 8 h)"
    )
    print(
        f"campaign finished at t={campaign.end_time / 3600:.1f} h in state "
        f"{campaign.state.value}; slower after shrinking, exactly the trade "
        f"the application chose"
    )


if __name__ == "__main__":
    main()
