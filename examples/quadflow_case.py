#!/usr/bin/env python
"""Quadflow under dynamic allocation (paper Section IV-A, Fig. 7).

The adaptive CFD solver refines its grid after every adaptation phase; once
the cells-per-process count crosses a threshold, the application asks the
batch system to double its allocation via ``tm_dynget``.  This example runs
the paper's two test cases (FlatPlate and Cylinder) three ways each — static
on 16 cores, static on 32 cores, dynamic 16 → 32 — and reports the per-phase
breakdown plus the headline savings (paper: 17 % for FlatPlate, 33 % for
Cylinder).

Run with::

    python examples/quadflow_case.py
"""

from repro.apps.quadflow import CYLINDER, FLAT_PLATE
from repro.experiments.fig7 import render_fig7, run_quadflow_case


def main() -> None:
    print(render_fig7())

    print("\nWhy a bigger static allocation is not the answer:")
    for case in (FLAT_PLATE, CYLINDER):
        static16 = run_quadflow_case(case, dynamic=False, start_nodes=2)
        static32 = run_quadflow_case(case, dynamic=False, start_nodes=4)
        pre16 = sum(static16.phase_times[:-1])
        pre32 = sum(static32.phase_times[:-1])
        print(
            f"  {case.name}: time until the final adaptation is "
            f"{pre16 / 3600:.2f} h on 16 cores vs {pre32 / 3600:.2f} h on 32 — "
            f"identical, because below {case.threshold_cells_per_proc} "
            f"cells/process the extra cores are work-starved."
        )
        dynamic = run_quadflow_case(case, dynamic=True, start_nodes=2)
        idle_core_hours = 16 * pre32 / 3600
        print(
            f"    A static-32 run therefore idles ~{idle_core_hours:.0f} core-hours "
            f"that the dynamic run (expanded at phase "
            f"{dynamic.expanded_at_phase}) leaves to other jobs."
        )


if __name__ == "__main__":
    main()
