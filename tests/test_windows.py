"""Streaming windowed metrics: P² sketches, window bookkeeping, equivalence.

Three layers of guarantees: the P² quantile sketch tracks exact quantiles
closely (and *is* exact below five samples); window frames partition busy /
queue-depth integrals without loss or duplication; and folding every
completed job through :class:`WindowedMetrics` reproduces the retained-job
:class:`WorkloadMetrics` on a real Table II run to 1e-9 — while
``fold_and_discard`` keeps the server's job index from growing at all.
"""

import io
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.apps.synthetic import FixedRuntimeApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.job import Job, JobState
from repro.maui.config import MauiConfig
from repro.obs import Telemetry
from repro.obs.windows import (
    P2Quantile,
    StreamingStat,
    WindowedMetrics,
    read_windows_jsonl,
)
from repro.system import BatchSystem
from repro.workloads.random_workload import make_random_workload


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        rng = np.random.default_rng(3)
        for n in (1, 2, 3, 4):
            for p in (0.5, 0.9):
                xs = rng.uniform(0, 100, n)
                sketch = P2Quantile(p)
                for x in xs:
                    sketch.observe(float(x))
                assert sketch.value == pytest.approx(
                    float(np.quantile(xs, p)), abs=1e-9
                ), (n, p)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_tracks_gaussian(self, p):
        rng = np.random.default_rng(11)
        xs = rng.normal(100, 15, 5000)
        sketch = P2Quantile(p)
        for x in xs:
            sketch.observe(float(x))
        exact = float(np.quantile(xs, p))
        # P² error stays well under 5 % of the distribution scale
        assert abs(sketch.value - exact) <= 0.05 * 15.0

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_tracks_heavy_tail(self, p):
        rng = np.random.default_rng(12)
        xs = rng.exponential(300, 5000)
        sketch = P2Quantile(p)
        for x in xs:
            sketch.observe(float(x))
        exact = float(np.quantile(xs, p))
        assert abs(sketch.value - exact) <= 0.03 * max(exact, 1.0)
        assert sketch.count == 5000


class TestStreamingStat:
    def test_mean_min_max(self):
        stat = StreamingStat()
        for v in (3.0, 1.0, 2.0):
            stat.add(v)
        assert stat.mean == pytest.approx(2.0)
        d = stat.as_dict()
        assert (d["min"], d["max"], d["count"]) == (1.0, 3.0, 3)


def _fake_job(submit, start, end, *, state="completed", evolving=False, granted=0):
    return SimpleNamespace(
        job_id="fake",
        user="u",
        submit_time=submit,
        start_time=start,
        end_time=end,
        state=SimpleNamespace(value=state),
        is_evolving=evolving,
        dyn_granted=granted,
    )


class TestWindowBookkeeping:
    def test_busy_integral_split_across_windows(self):
        w = WindowedMetrics(10.0, total_cores=8)
        w.reset_busy(0.0, 4)
        w.on_busy_change(25.0, 0)
        frames = {f.index: f for f in w.frames}
        assert frames[0].busy_core_seconds == pytest.approx(40.0)
        assert frames[1].busy_core_seconds == pytest.approx(40.0)
        assert frames[2].busy_core_seconds == pytest.approx(20.0)
        assert w.busy_core_seconds == pytest.approx(100.0)

    def test_queue_depth_time_mean_and_max(self):
        w = WindowedMetrics(10.0)
        w.observe_queue_depth(0.0, 2)
        w.observe_queue_depth(5.0, 6)
        w.observe_queue_depth(10.0, 0)
        frame = w.frames[0]
        assert frame.depth_max == 6
        # 2 jobs for 5 s + 6 jobs for 5 s over a 10 s window
        assert frame.to_dict(None)["queue_depth"]["time_mean"] == pytest.approx(4.0)

    def test_tumbling_fold_lands_in_end_window(self):
        w = WindowedMetrics(10.0)
        w.fold_job(_fake_job(0.0, 2.0, 12.0))
        indexes = [f.index for f in w.frames if f.finished]
        assert indexes == [1]
        assert w.jobs_finished == 1

    def test_sliding_fold_lands_in_every_covering_window(self):
        w = WindowedMetrics(10.0, stride=5.0)
        w.fold_job(_fake_job(0.0, 2.0, 12.0))
        indexes = sorted(f.index for f in w.frames if f.finished)
        # t=12 is inside [5,15) and [10,20)
        assert indexes == [1, 2]

    def test_fold_without_end_time_rejected(self):
        w = WindowedMetrics(10.0)
        with pytest.raises(ValueError):
            w.fold_job(_fake_job(0.0, 1.0, None))

    def test_never_started_job_counts_finished_only(self):
        w = WindowedMetrics(10.0)
        w.fold_job(_fake_job(0.0, None, 5.0, state="aborted"))
        assert w.jobs_finished == 1
        assert w.wait.count == 0

    def test_slowdown_uses_tau_clamp(self):
        w = WindowedMetrics(100.0, slowdown_tau=10.0)
        # run of 2 s, wait of 8 s: (8+2)/max(2,10) = 1.0 after the clamp
        w.fold_job(_fake_job(0.0, 8.0, 10.0))
        assert w.mean_bounded_slowdown() == pytest.approx(1.0)

    def test_closed_frames_never_rematerialise(self):
        # a lagging busy span must not re-open (and double-count) a window
        # that job folding already advanced past
        w = WindowedMetrics(10.0, total_cores=4)
        w.reset_busy(0.0, 2)
        w.fold_job(_fake_job(0.0, 1.0, 35.0))
        w.on_busy_change(40.0, 0)
        indexes = [f.index for f in w.frames]
        assert indexes == sorted(set(indexes))
        assert w.busy_core_seconds == pytest.approx(80.0)

    def test_jsonl_round_trip(self):
        w = WindowedMetrics(10.0, total_cores=8)
        w.reset_busy(0.0, 4)
        w.fold_job(_fake_job(0.0, 2.0, 12.0))
        w.on_busy_change(15.0, 0)
        buf = io.StringIO()
        lines = w.export_jsonl(buf)
        buf.seek(0)
        dump = read_windows_jsonl(buf)
        assert dump["meta"]["schema"] == "repro-windows/1"
        assert dump["meta"]["width"] == 10.0
        assert dump["totals"]["jobs_finished"] == 1
        assert len(dump["windows"]) == lines - 2
        assert dump["windows"][0]["busy_core_seconds"] == pytest.approx(40.0)


def _close(actual, expected):
    """PR acceptance tolerance: 1e-9 relative (absolute below 1.0)."""
    return abs(actual - expected) <= 1e-9 * max(1.0, abs(expected))


class TestEquivalenceOnTable2:
    """Windowed aggregates must match retained-job metrics on Dyn-HP."""

    @pytest.fixture(scope="class")
    def run(self):
        from repro.experiments.configs import all_configurations
        from repro.experiments.runner import run_esp_configuration

        configuration = next(
            c for c in all_configurations() if c.name == "Dyn-HP"
        )
        telemetry = Telemetry(windows=600.0)
        result = run_esp_configuration(configuration, telemetry=telemetry)
        return result.metrics, telemetry.windows

    def test_means_match_to_1e9(self, run):
        metrics, windows = run
        assert _close(windows.mean_wait, metrics.mean_wait)
        assert _close(windows.mean_turnaround, metrics.mean_turnaround)
        assert _close(
            windows.mean_bounded_slowdown(), metrics.mean_bounded_slowdown()
        )

    def test_utilization_and_span_match(self, run):
        metrics, windows = run
        assert _close(windows.utilization, float(metrics.utilization))
        assert windows.workload_time == metrics.workload_time
        assert windows.first_submit == metrics.first_submit
        assert windows.last_end == metrics.last_end

    def test_job_counts_match(self, run):
        metrics, windows = run
        assert windows.jobs_completed == metrics.completed_jobs
        assert windows.evolving_jobs == metrics.evolving_jobs
        assert windows.satisfied_dyn_jobs == metrics.satisfied_dyn_jobs


def _run_random(telemetry, *, num_jobs=120, seed=5):
    system = BatchSystem(4, 8, MauiConfig(), telemetry=telemetry)
    make_random_workload(
        num_jobs, system.cluster.total_cores, seed=seed, mean_interarrival=30.0
    ).submit_to(system)
    system.run(max_events=1_000_000)
    return system


class TestFoldAndDiscard:
    def test_requires_windows(self):
        with pytest.raises(ValueError):
            Telemetry(fold_and_discard=True)

    def test_discards_jobs_but_keeps_aggregates(self):
        retained_tel = Telemetry(windows=3600.0)
        retained = _run_random(retained_tel)
        discard_tel = Telemetry(windows=3600.0, fold_and_discard=True)
        discarding = _run_random(discard_tel)

        assert discarding.server.jobs_discarded > 0
        assert len(discarding.server.jobs) < len(retained.server.jobs)
        # the streaming aggregates are unaffected by discarding
        assert (
            discard_tel.windows.totals_dict() == retained_tel.windows.totals_dict()
        )
        # and still match the retained run's collector
        metrics = retained.metrics()
        assert _close(discard_tel.windows.mean_wait, metrics.mean_wait)
        assert _close(discard_tel.windows.utilization, float(metrics.utilization))

    def test_retained_reporting_refuses_after_discard(self):
        system = _run_random(Telemetry(windows=3600.0, fold_and_discard=True))
        assert system.server.jobs_discarded > 0
        with pytest.raises(RuntimeError, match="folded and discarded"):
            system.metrics()

    def test_afterok_resolves_against_discarded_target(self):
        telemetry = Telemetry(windows=600.0, fold_and_discard=True)
        system = BatchSystem(2, 8, MauiConfig(), telemetry=telemetry)
        first = system.submit(
            Job(request=ResourceRequest(cores=4), walltime=200.0, user="u"),
            FixedRuntimeApp(100.0),
        )
        system.run()
        assert first.job_id not in system.server.jobs  # discarded
        second = system.submit(
            Job(
                request=ResourceRequest(cores=4),
                walltime=100.0,
                user="u",
                depends_on=first.job_id,
            ),
            FixedRuntimeApp(50.0),
        )
        system.run()
        assert second.state is JobState.COMPLETED

    def test_afterok_on_discarded_aborted_target_fails(self):
        telemetry = Telemetry(windows=600.0, fold_and_discard=True)
        system = BatchSystem(2, 8, MauiConfig(), telemetry=telemetry)
        # runtime exceeds walltime: killed at the limit, terminal ABORTED
        first = system.submit(
            Job(request=ResourceRequest(cores=4), walltime=50.0, user="u"),
            FixedRuntimeApp(100.0),
        )
        system.run()
        assert first.job_id not in system.server.jobs
        second = system.submit(
            Job(
                request=ResourceRequest(cores=4),
                walltime=100.0,
                user="u",
                depends_on=first.job_id,
            ),
            FixedRuntimeApp(50.0),
        )
        system.run()
        assert second.state is JobState.ABORTED
        assert second.start_time is None


class TestBoundedMemory:
    def test_long_replay_holds_o_windows_not_o_jobs(self):
        # synthetic 5k-job stream folded straight through WindowedMetrics:
        # materialised frames track the active span, not the job count
        w = WindowedMetrics(3600.0, total_cores=64)
        jobs = 5000
        for i in range(jobs):
            submit = i * 30.0
            w.fold_job(_fake_job(submit, submit + 60.0, submit + 600.0))
        span_windows = int(jobs * 30.0 / 3600.0) + 2
        assert len(w.frames) <= span_windows
        assert w.jobs_finished == jobs

    def test_server_index_stays_bounded_under_discard(self):
        system = _run_random(
            Telemetry(windows=3600.0, fold_and_discard=True), num_jobs=150
        )
        server = system.server
        # every finished job left the index; only the compact state map grows
        assert server.jobs_discarded + len(server.jobs) >= 150
        assert len(server.jobs) < 150 / 3
        assert len(server._discarded_states) == server.jobs_discarded


def _user_job(job_id, user, submit, start, end, *, account="default",
              state="completed"):
    return SimpleNamespace(
        job_id=job_id,
        user=user,
        account=account,
        submit_time=submit,
        start_time=start,
        end_time=end,
        state=SimpleNamespace(value=state),
        is_evolving=False,
        dyn_granted=0,
    )


class TestGroupDimension:
    def test_group_by_attribute_name(self):
        w = WindowedMetrics(10.0, group_by="user")
        w.fold_job(_user_job("j1", "alice", 0.0, 2.0, 4.0))
        w.fold_job(_user_job("j2", "alice", 0.0, 4.0, 8.0))
        w.fold_job(_user_job("j3", "bob", 0.0, 1.0, 2.0))
        assert sorted(w.groups) == ["alice", "bob"]
        assert w.groups["alice"].jobs == 2
        assert w.groups["alice"].wait.mean == pytest.approx(3.0)

    def test_group_by_callable_and_stretch(self):
        from repro.obs.fairness import principal_of

        w = WindowedMetrics(10.0, group_by=principal_of)
        # account set -> grouped under the account, not the user
        w.fold_job(_user_job("j1", "alice", 0.0, 6.0, 8.0, account="phys"))
        (group,) = w.groups.values()
        assert group.key == "phys"
        # stretch = (wait + run) / max(run, 1): (6 + 2) / 2 = 4
        assert group.stretch.mean == pytest.approx(4.0)

    def test_ungrouped_by_default(self):
        w = WindowedMetrics(10.0)
        assert not w.grouped
        w.fold_job(_user_job("j1", "alice", 0.0, 2.0, 4.0))
        assert w.groups == {}

    def test_incomplete_jobs_counted_but_not_completed(self):
        w = WindowedMetrics(10.0, group_by="user")
        w.fold_job(_user_job("j1", "alice", 0.0, 2.0, 4.0, state="failed"))
        assert w.groups["alice"].jobs == 1
        assert w.groups["alice"].completed == 0

    def test_group_lines_export_and_read_back(self):
        w = WindowedMetrics(10.0, total_cores=8, group_by="user")
        w.reset_busy(0.0, 0)
        for i in range(6):
            w.fold_job(_user_job(f"j{i}", f"u{i % 2}", 0.0, float(i), float(i + 1)))
        buf = io.StringIO()
        w.export_jsonl(buf)
        buf.seek(0)
        dump = read_windows_jsonl(buf)
        assert [g["key"] for g in dump["groups"]] == ["u0", "u1"]
        assert all(g["jobs"] == 3 for g in dump["groups"])
        assert dump["groups"][0]["stretch"]["mean"] == pytest.approx(
            w.groups["u0"].stretch.mean
        )


class TestWorstWaitAnchor:
    def test_tracks_per_window_worst(self):
        w = WindowedMetrics(10.0)
        w.fold_job(_user_job("j1", "alice", 0.0, 2.0, 3.0))
        w.fold_job(_user_job("j2", "bob", 1.0, 8.0, 9.0))
        w.fold_job(_user_job("j3", "carol", 11.0, 12.0, 13.0))
        frames = {f.index: f for f in w.frames}
        assert frames[0].worst_wait == pytest.approx(7.0)
        assert frames[0].worst_wait_job == "j2"
        assert frames[0].worst_wait_user == "bob"
        assert frames[0].worst_wait_submit == 1.0
        assert frames[1].worst_wait_job == "j3"

    def test_empty_frame_has_no_anchor(self):
        w = WindowedMetrics(10.0)
        w.observe_queue_depth(5.0, 3)
        (frame,) = w.frames
        assert frame.worst_wait_job is None
        assert frame.worst_wait == -math.inf


class TestP2Adversarial:
    """P² accuracy on distributions that stress the marker update rule."""

    def test_constant_stream_is_exact(self):
        sketch = P2Quantile(0.99)
        for _ in range(10_000):
            sketch.observe(42.0)
        assert sketch.value == pytest.approx(42.0)

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_two_point_distribution(self, p):
        # 90 % zeros / 10 % thousands: quantiles this side of 0.9 must
        # stay near 0, beyond it near 1000 — P² interpolates between
        # markers so allow a band, but the ordering must hold
        rng = np.random.default_rng(21)
        xs = np.where(rng.uniform(size=20_000) < 0.9, 0.0, 1000.0)
        sketch = P2Quantile(p)
        for x in xs:
            sketch.observe(float(x))
        if p < 0.9:
            assert sketch.value <= 100.0
        else:
            assert sketch.value >= 500.0

    @pytest.mark.parametrize("p", [0.9, 0.99])
    def test_pareto_tail(self, p):
        # heavy-tailed (infinite-variance) waits: relative error at the
        # tracked quantile stays within 15 %
        rng = np.random.default_rng(22)
        xs = rng.pareto(1.5, 50_000) * 100.0
        sketch = P2Quantile(p)
        for x in xs:
            sketch.observe(float(x))
        exact = float(np.quantile(xs, p))
        assert abs(sketch.value - exact) <= 0.15 * exact

    def test_sorted_ascending_stream(self):
        # monotone input is the classic P² worst case; median of 0..9999
        sketch = P2Quantile(0.5)
        for x in range(10_000):
            sketch.observe(float(x))
        assert abs(sketch.value - 4999.5) <= 0.05 * 10_000
