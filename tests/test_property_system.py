"""Property-based end-to-end tests: random workloads, random configurations.

Hypothesis drives small randomized workloads through randomly drawn
scheduler configurations; every run must drain completely, leave a
consistent trace, and conserve resources.  These are the tests most likely
to find scheduler corner cases no hand-written scenario covers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import EvolvingWorkApp, FixedRuntimeApp, MalleableWorkApp
from repro.cluster.allocation import ResourceRequest
from repro.jobs.evolution import EvolutionProfile
from repro.jobs.job import Job, JobFlexibility
from repro.maui.config import DFSConfig, DFSPolicy, MauiConfig, PrincipalLimits
from repro.metrics.validate import validate_trace
from repro.system import BatchSystem

# --- strategies -------------------------------------------------------

job_descriptions = st.lists(
    st.tuples(
        st.sampled_from(["rigid", "evolving", "malleable", "negotiating"]),
        st.integers(min_value=1, max_value=16),    # cores
        st.floats(min_value=10.0, max_value=600.0),  # runtime
        st.floats(min_value=0.0, max_value=300.0),   # submit time
        st.integers(min_value=0, max_value=3),       # user index
    ),
    min_size=1,
    max_size=14,
)

configs = st.builds(
    MauiConfig,
    reservation_depth=st.integers(min_value=0, max_value=4),
    reservation_delay_depth=st.integers(min_value=0, max_value=6),
    dynamic_enabled=st.booleans(),
    backfill_enabled=st.booleans(),
    preemption_for_dynamic=st.booleans(),
    malleable_steal_for_dynamic=st.booleans(),
    dynamic_request_order=st.sampled_from(["fifo", "fairshare", "smallest_first"]),
    dfs=st.builds(
        DFSConfig,
        policy=st.sampled_from(list(DFSPolicy)),
        interval=st.floats(min_value=60.0, max_value=3600.0),
        decay=st.floats(min_value=0.0, max_value=1.0),
        default_user=st.builds(
            PrincipalLimits,
            dyn_delay_perm=st.booleans(),
            target_delay_time=st.sampled_from([float("inf"), 50.0, 500.0]),
            single_delay_time=st.sampled_from([float("inf"), 50.0, 500.0]),
        ),
    ),
)


def build_job(kind, cores, runtime, user_idx):
    user = f"pu{user_idx}"
    if kind == "rigid":
        job = Job(
            request=ResourceRequest(cores=cores), walltime=runtime * 1.1 + 1, user=user
        )
        return job, FixedRuntimeApp(runtime)
    if kind == "malleable":
        job = Job(
            request=ResourceRequest(cores=cores),
            # worst case: shrunk to 1 core the whole run
            walltime=runtime * cores + 1,
            user=user,
            flexibility=JobFlexibility.MALLEABLE,
        )
        return job, MalleableWorkApp(runtime, min_cores=1)
    evolution = EvolutionProfile.single(
        0.2, ResourceRequest(cores=2), () if kind == "negotiating" else (0.5,)
    )
    job = Job(
        request=ResourceRequest(cores=cores),
        walltime=runtime * 1.1 + 1,
        user=user,
        flexibility=JobFlexibility.EVOLVING,
        evolution=evolution,
    )
    timeout = 120.0 if kind == "negotiating" else None
    return job, EvolvingWorkApp(runtime, negotiation_timeout=timeout)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(jobs=job_descriptions, config=configs)
def test_property_any_config_drains_cleanly(jobs, config):
    system = BatchSystem(3, 8, config)
    submitted = []
    for kind, cores, runtime, submit_at, user_idx in jobs:
        cores = min(cores, 24)
        job, app = build_job(kind, cores, runtime, user_idx)
        if submit_at <= 0:
            system.submit(job, app)
        else:
            system.submit_at(submit_at, job, app)
        submitted.append(job)
    system.run(max_events=100_000)

    # conservation and lifecycle invariants
    assert system.cluster.used_cores == 0
    assert len(system.server.queue) == 0
    assert len(system.server.dyn_queue) == 0
    for mom in system.server.moms.moms.values():
        assert not mom.jobs
    for job in submitted:
        assert job.is_finished, f"{job.job_id} stuck in {job.state}"
    assert validate_trace(system.trace, system.cluster) == []


@settings(max_examples=20, deadline=None)
@given(
    jobs=job_descriptions,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_runs_are_deterministic(jobs, seed):
    """Identical inputs produce identical traces, event for event."""
    outcomes = []
    for _ in range(2):
        system = BatchSystem(3, 8, MauiConfig(reservation_depth=2))
        for kind, cores, runtime, submit_at, user_idx in jobs:
            job, app = build_job(kind, min(cores, 24), runtime, user_idx)
            system.submit_at(max(0.001, submit_at), job, app)
        system.run(max_events=100_000)
        outcomes.append([(e.time, e.kind.value) for e in system.trace])
    assert outcomes[0] == outcomes[1]
